"""Quickstart: build a compact routing scheme and route messages with it.

Run:  python examples/quickstart.py [n] [seed]

Builds the paper's Theorem 1 scheme on a random network, measures its real
serialised size against the classical full routing table, verifies it
routes on shortest paths, and shows a few concrete routes.
"""

from __future__ import annotations

import sys

from repro import (
    Knowledge,
    Labeling,
    RoutingModel,
    build_scheme,
    certify_random_graph,
    gnp_random_graph,
    route_message,
    verify_scheme,
)


def main(n: int = 128, seed: int = 7) -> None:
    print(f"== Sampling G(n={n}, 1/2) with seed {seed} ==")
    graph = gnp_random_graph(n, seed=seed)
    certificate = certify_random_graph(graph)
    print(f"   edges: {graph.edge_count}, diameter 2: {certificate.diameter_two}, "
          f"Kolmogorov-random properties certified: {certificate.certified}")

    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    print(f"\n== Building schemes under model {model} ==")
    compact = build_scheme("thm1-two-level", graph, model)
    baseline = build_scheme("full-table", graph, model)
    compact_report = compact.space_report()
    baseline_report = baseline.space_report()
    print(f"   Theorem 1 scheme : {compact_report.total_bits:9d} bits total "
          f"({compact_report.mean_node_bits:.0f} bits/node, "
          f"T/n² = {compact_report.bits_per_n_squared():.2f})")
    print(f"   full table       : {baseline_report.total_bits:9d} bits total "
          f"({baseline_report.mean_node_bits:.0f} bits/node)")
    print(f"   space saved      : "
          f"{1 - compact_report.total_bits / baseline_report.total_bits:.1%}")

    print("\n== Verifying shortest-path routing over sampled pairs ==")
    result = verify_scheme(compact, sample_pairs=1000, seed=0)
    print(f"   pairs routed: {result.pairs_checked}, delivered: {result.delivered}, "
          f"max stretch: {result.max_stretch:.2f} (paper guarantees 1.0)")
    assert result.ok()

    print("\n== Example routes ==")
    for source, dest in [(1, n), (2, n // 2), (n, 1)]:
        trace = route_message(compact, source, dest)
        print(f"   {source:3d} -> {dest:3d}: path {' -> '.join(map(str, trace.path))}"
              f"  ({trace.hops} hop{'s' if trace.hops != 1 else ''})")

    print("\nDone: the scheme stores ~1.5 bits per node pair yet routes "
          "every message on a shortest path.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
