"""Full-information routing as a fail-over mechanism in an overlay network.

Run:  python examples/overlay_failover.py [n] [seed]

Scenario: a densely meshed overlay (e.g. a peer-to-peer control plane)
whose links fail in waves.  The paper introduces *full information*
shortest path routing schemes exactly for this: "these schemes allow
alternative, shortest, paths to be taken whenever an outgoing link is
down."  We simulate waves of failures and compare delivery of the
full-information scheme against the compact single-path Theorem 1 scheme,
then show the event-driven engine delivering a burst of traffic.
"""

from __future__ import annotations

import sys

from repro import Knowledge, Labeling, RoutingModel, build_scheme, gnp_random_graph
from repro.simulator import (
    EventDrivenSimulator,
    Network,
    sample_link_failures,
    summarize,
)


def main(n: int = 96, seed: int = 5) -> None:
    graph = gnp_random_graph(n, seed=seed)
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    full_info = build_scheme("full-information", graph, model)
    single = build_scheme("thm1-two-level", graph, model)
    print(f"Overlay with {n} peers, {graph.edge_count} links")
    print(f"  full-information tables: "
          f"{full_info.space_report().total_bits / 8 / 1024:.1f} KiB")
    print(f"  Theorem 1 tables       : "
          f"{single.space_report().total_bits / 8 / 1024:.1f} KiB\n")

    pairs = [(u, w) for u in range(1, 17) for w in range(n - 16, n + 1)]
    print(f"{'failed links':>13s} {'full-info delivery':>19s} "
          f"{'single-path delivery':>21s} {'full-info stretch':>18s}")
    waves = [0] + [graph.edge_count * share // 100 for share in (10, 25, 45)]
    for wave in waves:
        failures = sample_link_failures(graph, wave, seed=wave + 1)
        metrics_full = summarize(
            [Network(full_info, failures).route(u, w) for u, w in pairs], graph
        )
        metrics_single = summarize(
            [Network(single, failures).route(u, w) for u, w in pairs], graph
        )
        print(f"{wave:>13d} {metrics_full.delivered_fraction:>19.3f} "
              f"{metrics_single.delivered_fraction:>21.3f} "
              f"{metrics_full.max_stretch:>18.2f}")

    print("\nEvent-driven burst: 200 messages through the degraded overlay")
    failures = sample_link_failures(graph, graph.edge_count // 4, seed=99)
    sim = EventDrivenSimulator(full_info, link_latency=0.35, failed_links=failures)
    for i in range(200):
        sim.inject(1 + i % n, 1 + (i * 37) % n, at_time=i * 0.01)
    records = [r for r in sim.run() if r.source != r.destination]
    metrics = summarize(records, graph)
    print(f"  delivered {metrics.delivered}/{metrics.messages}, "
          f"mean latency {metrics.mean_latency:.2f} time units, "
          f"mean hops {metrics.mean_hops:.2f}")
    print("\nThe n³-bit scheme keeps the overlay alive through failures the "
          "n²-bit scheme cannot survive — the space buys exactly that.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
