"""The two adversaries: fixed ports (Theorem 8) and the Figure 1 graph (Theorem 9).

Run:  python examples/adversarial_networks.py [k]

Part 1 wires a random network with adversarial port assignments and shows
that any shortest-path routing function is forced to memorise a permutation
of ~n/2 elements per node — and that re-assignable ports (model IB) erase
that cost entirely.

Part 2 builds the paper's explicit three-layer graph, routes on it with
stretch 1, recovers the adversary's relabelling out of a single routing
table, and shows why any scheme with stretch < 2 must pay the same price.
"""

from __future__ import annotations

import math
import random
import sys

from repro import Knowledge, Labeling, RoutingModel, gnp_random_graph, verify_scheme
from repro.bitio import log2_factorial
from repro.core import route_message
from repro.lowerbounds import (
    ExplicitLowerBoundScheme,
    detour_stretch,
    recover_outer_assignment,
    run_theorem8_experiment,
)


def part1_port_adversary(n: int = 64) -> None:
    print(f"== Part 1: the port adversary (Theorem 8) on G({n}, 1/2) ==")
    graph = gnp_random_graph(n, seed=21)
    ia_alpha = RoutingModel(Knowledge.IA, Labeling.ALPHA)
    result = run_theorem8_experiment(graph, ia_alpha, seed=3)
    print(f"   adversarial permutations recovered from routing tables: "
          f"{result.recovered_all}")
    print(f"   forced bits: {result.total_permutation_bits} "
          f"(≈ Σ log₂ d(u)! = {result.theory_bits:.0f})")
    print(f"   per node: {result.mean_node_bits:.0f} bits "
          f"≈ (n/2) log(n/2) = {(n / 2) * math.log2(n / 2):.0f}")
    print("   under model IB the same network costs 0 extra bits — the "
          "scheme just renumbers its ports.\n")


def part2_figure1(k: int = 16) -> None:
    n = 3 * k
    print(f"== Part 2: the explicit worst case (Theorem 9, Figure 1), "
          f"n = 3k = {n} ==")
    labels = list(range(2 * k + 1, 3 * k + 1))
    random.Random(4).shuffle(labels)
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    scheme = ExplicitLowerBoundScheme.from_parameters(
        k, model, outer_assignment=labels
    )
    verification = verify_scheme(scheme, sample_pairs=500, seed=0)
    print(f"   optimal scheme verified: delivered {verification.delivered}"
          f"/{verification.pairs_checked}, max stretch "
          f"{verification.max_stretch}")

    inner = 1
    outer = labels[0]
    trace = route_message(scheme, inner, outer)
    print(f"   forced route {inner} -> {outer}: "
          f"{' -> '.join(map(str, trace.path))} (the unique 2-hop path)")
    print(f"   any other middle node costs stretch {detour_stretch(k):.1f} "
          f"— hence stretch < 2 forces the correct table entry")

    recovered = recover_outer_assignment(scheme, inner)
    print(f"   adversary's relabelling read back from node {inner}'s table: "
          f"{recovered == tuple(labels)}")
    bits = len(scheme.encode_function(inner))
    print(f"   that table costs {bits} bits ≥ log₂ k! = {log2_factorial(k):.0f}"
          f" — at each of the k = {k} inner nodes")
    print(f"   total forced: ≈ (n²/9) log n bits, even though *random* "
          f"graphs of this size need only ~1.5 n² bits.")


def main(k: int = 16) -> None:
    part1_port_adversary()
    part2_figure1(k)


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
