"""The paper's space/stretch menu, measured on one network.

Run:  python examples/space_stretch_tradeoff.py [n] [seed]

Builds every construction from Theorems 1-5 (plus the baselines) on the
same random graph and prints the trade-off table the paper's Corollary 1
describes: each step down in space is paid for in stretch.
"""

from __future__ import annotations

import sys

from repro import (
    Knowledge,
    Labeling,
    RoutingModel,
    build_scheme,
    gnp_random_graph,
    verify_scheme,
)

MENU = [
    # (scheme, model labeling, paper bound, paper stretch)
    ("full-information", Labeling.ALPHA, "O(n³)", "1 (all options)"),
    ("full-table", Labeling.ALPHA, "O(n² log n)", "1"),
    ("thm1-two-level", Labeling.ALPHA, "O(n²)", "1"),
    ("thm2-neighbor-labels", Labeling.GAMMA, "O(n log² n)", "1"),
    ("thm3-centers", Labeling.ALPHA, "O(n log n)", "1.5"),
    ("thm4-hub", Labeling.ALPHA, "O(n log log n)", "2"),
    ("thm5-probe", Labeling.ALPHA, "O(n)", "6 log n"),
]


def main(n: int = 128, seed: int = 11) -> None:
    graph = gnp_random_graph(n, seed=seed)
    print(f"Space/stretch trade-off on G(n={n}, 1/2), seed {seed}, "
          f"{graph.edge_count} edges\n")
    print(f"{'scheme':22s} {'model':8s} {'paper size':>14s} {'bits measured':>14s} "
          f"{'bits/node':>10s} {'stretch':>8s} {'paper':>9s}")
    for name, labeling, paper_size, paper_stretch in MENU:
        model = RoutingModel(Knowledge.II, labeling)
        scheme = build_scheme(name, graph, model)
        report = scheme.space_report()
        verification = verify_scheme(scheme, sample_pairs=600, seed=1)
        assert verification.ok(), f"{name} failed verification"
        print(
            f"{name:22s} {str(model.labeling):8s} {paper_size:>14s} "
            f"{report.total_bits:>14d} {report.mean_node_bits:>10.1f} "
            f"{verification.max_stretch:>8.1f} {paper_stretch:>9s}"
        )
    print(
        "\nReading downwards: every row gives up a little path quality for an"
        "\norder of magnitude of table space — Corollary 1 of the paper."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
