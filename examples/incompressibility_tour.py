"""A tour of the incompressibility method, run as actual codecs.

Run:  python examples/incompressibility_tour.py [n]

Every lower-bound proof in the paper is a compression argument: "if the
routing function were small, the graph would compress below its Kolmogorov
complexity".  This tour runs those arguments as real encoders/decoders:

1. random graphs refuse to compress (compressors + the Lemma 1 codec);
2. structured graphs compress exactly where the lemmas say they must;
3. the Theorem 6 codec encodes a graph *through its routing function* and
   round-trips it, yielding the per-node lower bound on |F(u)|.
"""

from __future__ import annotations

import sys

from repro import Knowledge, Labeling, RoutingModel, gnp_random_graph
from repro.core import TwoLevelScheme
from repro.graphs import encode_graph, path_graph, star_graph
from repro.incompressibility import (
    Lemma1Codec,
    Lemma2Codec,
    Lemma3Codec,
    Theorem6Codec,
    evaluate_codec,
)
from repro.errors import CodecError
from repro.kolmogorov import best_estimate


def main(n: int = 96) -> None:
    random_graph = gnp_random_graph(n, seed=13)
    code = encode_graph(random_graph)
    estimate = best_estimate(code)
    print(f"== 1. A random graph resists compression ==")
    print(f"   E(G) is {len(code)} bits; best of zlib/bz2/lzma: "
          f"{estimate.bits} bits (ratio {estimate.ratio:.3f})")

    report = evaluate_codec(Lemma1Codec(), random_graph)
    print(f"   Lemma 1 codec savings: {report.savings} bits "
          f"(no deviant degree to exploit)")
    for codec, name in ((Lemma2Codec(), "Lemma 2"), (Lemma3Codec(), "Lemma 3")):
        try:
            codec.encode(random_graph)
            print(f"   {name} codec unexpectedly applied!")
        except CodecError:
            print(f"   {name} codec refuses: the structure it needs does not "
                  f"exist on a random graph")

    print(f"\n== 2. Structured graphs compress exactly as the lemmas predict ==")
    star = star_graph(n)
    report = evaluate_codec(Lemma1Codec(node=1), star)
    print(f"   star graph, Lemma 1 codec: saves {report.savings} bits "
          f"(the centre's degree is maximally deviant)")
    path = path_graph(n)
    report = evaluate_codec(Lemma2Codec(), path)
    print(f"   path graph, Lemma 2 codec: round-trips with {report.savings} "
          f"bits saved (a distant pair exists)")

    print(f"\n== 3. Theorem 6: encode the graph through its routing function ==")
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    scheme = TwoLevelScheme(random_graph, model)
    codec = Theorem6Codec(scheme, node=1)
    report = evaluate_codec(codec, random_graph)
    ledger = codec.accounting(random_graph)
    print(f"   graph reconstructed exactly from (u, row(u), F(u), remainder): "
          f"{report.round_trip_ok}")
    print(f"   F(u) reveals {ledger['deleted_bits']} edges of E(G) "
          f"at {ledger['overhead_bits']} bits of overhead")
    print(f"   ⇒ |F(u)| ≥ {ledger['implied_function_bound']} bits "
          f"(measured |F(u)| = {ledger['function_bits']})")
    print(f"   summed over n nodes this is the paper's Ω(n²) for model II ∧ α.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:2]]
    main(*args)
