"""Variant-parameter tests: anchors, hubs, roots, stretch quantisation."""

from __future__ import annotations

import pytest

from repro.core import (
    CenterScheme,
    HubScheme,
    IntervalRoutingScheme,
    verify_scheme,
)
from repro.graphs import gnp_random_graph, random_tree
from repro.models import Knowledge, Labeling, RoutingModel


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(40, seed=55)


class TestAnchorsAndHubs:
    @pytest.mark.parametrize("anchor", [1, 7, 40])
    def test_center_scheme_any_anchor(self, anchor, graph, model_ii_alpha):
        scheme = CenterScheme(graph, model_ii_alpha, anchor=anchor)
        assert anchor in scheme.centers
        report = verify_scheme(scheme, sample_pairs=300, seed=anchor)
        assert report.ok()

    @pytest.mark.parametrize("hub", [1, 13, 40])
    def test_hub_scheme_any_hub(self, hub, graph, model_ii_alpha):
        scheme = HubScheme(graph, model_ii_alpha, hub=hub)
        assert scheme.hub == hub
        report = verify_scheme(scheme, sample_pairs=300, seed=hub)
        assert report.ok()

    def test_different_hubs_different_sizes(self, graph, model_ii_alpha):
        totals = {
            hub: HubScheme(graph, model_ii_alpha, hub=hub)
            .space_report()
            .total_bits
            for hub in (1, 20)
        }
        # Both stay within the Theorem 4 budget, whatever the hub.
        import math

        budget = 40 * 2 * math.log2(math.log2(40)) + 6 * 40 + 40
        assert all(total <= budget for total in totals.values())

    @pytest.mark.parametrize("root", [1, 5, 20])
    def test_interval_any_root(self, root, model_ii_beta):
        tree = random_tree(20, seed=2)
        scheme = IntervalRoutingScheme(tree, model_ii_beta, root=root)
        assert scheme.address_of(root) == 1
        assert verify_scheme(scheme).ok()


class TestStretchQuantisation:
    def test_diameter_two_stretch_values_are_quantised(self, graph, model_ii_alpha):
        """On diameter-2 graphs stretch can only take values in
        {1, 1.5, 2, 2.5, ...}: hops are integers, distances are 1 or 2.
        The paper (footnote 5): s = 1.5 'is the only one possible' in (1,2)."""
        scheme = CenterScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        observed = set()
        from repro.core import route_message
        from repro.graphs import distance_matrix

        dist = distance_matrix(graph)
        for u in (1, 10, 25):
            for w in graph.nodes:
                if w == u:
                    continue
                trace = route_message(scheme, u, w)
                observed.add(trace.hops / int(dist[u - 1, w - 1]))
        assert observed <= {1.0, 1.5}

    def test_hub_stretch_values(self, graph, model_ii_alpha):
        from repro.core import route_message
        from repro.graphs import distance_matrix

        scheme = HubScheme(graph, model_ii_alpha)
        dist = distance_matrix(graph)
        observed = set()
        for u in (2, 30):
            for w in graph.nodes:
                if w == u:
                    continue
                trace = route_message(scheme, u, w)
                observed.add(trace.hops / int(dist[u - 1, w - 1]))
        assert observed <= {1.0, 1.5, 2.0}
