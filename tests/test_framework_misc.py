"""Misc coverage: codec framework, message records, estimator dataclasses,
Table 1 contents, and the codec evaluate path for broken codecs."""

from __future__ import annotations

import pytest

from repro.bitio import BitArray
from repro.errors import CodecError
from repro.graphs import LabeledGraph, edge_code_length, gnp_random_graph
from repro.incompressibility import GraphCodec, evaluate_codec
from repro.kolmogorov import ComplexityEstimate
from repro.models import Knowledge, Labeling
from repro.simulator.message import DeliveryRecord, Message


class _LossyCodec(GraphCodec):
    """A codec that forgets an edge: must be caught by evaluate_codec."""

    name = "lossy"

    def encode(self, graph):
        from repro.graphs import encode_graph

        return encode_graph(graph)

    def decode(self, bits, n):
        from repro.graphs import decode_graph

        graph = decode_graph(bits, n)
        edges = list(graph.edges())
        if edges:
            edges = edges[1:]
        return LabeledGraph(n, edges)


class TestCodecFramework:
    def test_lossy_codec_detected(self):
        graph = gnp_random_graph(10, seed=1)
        with pytest.raises(CodecError, match="round-trip"):
            evaluate_codec(_LossyCodec(), graph)

    def test_report_savings_arithmetic(self):
        from repro.incompressibility import Lemma1Codec

        graph = gnp_random_graph(12, seed=1)
        report = evaluate_codec(Lemma1Codec(), graph)
        assert report.baseline_bits == edge_code_length(12)
        assert report.savings == report.baseline_bits - report.encoded_bits

    def test_savings_helper_matches_report(self):
        from repro.incompressibility import Lemma1Codec

        graph = gnp_random_graph(12, seed=1)
        codec = Lemma1Codec()
        assert codec.savings(graph) == evaluate_codec(codec, graph).savings


class TestMessageRecords:
    def test_message_hops(self):
        message = Message(
            msg_id=1, source=1, destination=3, address=3, path=[1, 2, 3]
        )
        assert message.hops == 2

    def test_empty_path_hops(self):
        message = Message(msg_id=1, source=1, destination=3, address=3)
        assert message.hops == 0

    def test_delivery_record_immutable(self):
        record = DeliveryRecord(
            msg_id=1,
            source=1,
            destination=2,
            delivered=True,
            hops=1,
            path=(1, 2),
        )
        with pytest.raises(AttributeError):
            record.delivered = False

    def test_drop_reason_default(self):
        record = DeliveryRecord(
            msg_id=1, source=1, destination=2, delivered=True, hops=1,
            path=(1, 2),
        )
        assert record.drop_reason is None
        assert record.latency == 0.0


class TestComplexityEstimate:
    def test_fields(self):
        estimate = ComplexityEstimate(
            compressor="zlib", original_bits=1000, bits=400
        )
        assert estimate.deficiency == 600
        assert estimate.ratio == pytest.approx(0.4)

    def test_incompressible_clamps(self):
        estimate = ComplexityEstimate(
            compressor="zlib", original_bits=100, bits=130
        )
        assert estimate.deficiency == 0
        assert estimate.ratio == pytest.approx(1.3)


class TestPaperTable1Contents:
    def test_paper_rows_present(self):
        from repro.analysis import PAPER_TABLE1

        # The eleven filled cells of the paper's Table 1.
        sections = {key[0] for key in PAPER_TABLE1}
        assert sections == {"worst-lower", "avg-upper", "avg-lower"}
        assert (
            PAPER_TABLE1[("avg-upper", Knowledge.II, Labeling.GAMMA)]
            == "O(n log² n)"
        )
        assert (
            PAPER_TABLE1[("avg-lower", Knowledge.IA, Labeling.ALPHA)]
            == "Ω(n² log n)"
        )

    def test_render_full_grid_structure(self):
        from repro.analysis import format_table1

        text = format_table1([])
        for heading in (
            "worst case — lower bounds",
            "average case — upper bounds",
            "average case — lower bounds",
        ):
            assert heading in text
        for row in ("port assignment fixed (IA)", "port assignment free (IB)",
                    "neighbours known (II)"):
            assert text.count(row) == 3
