"""Tests for the chain-relabelling scheme (the introduction's example)."""

from __future__ import annotations

import pytest

from repro.core import (
    ChainComparisonScheme,
    FullTableScheme,
    chain_order,
    route_message,
    verify_scheme,
)
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph
from repro.models import Knowledge, Labeling, RoutingModel


def scrambled_chain(n: int, seed: int = 3) -> LabeledGraph:
    """A path whose labels are NOT in chain order."""
    import random

    mapping = list(range(1, n + 1))
    random.Random(seed).shuffle(mapping)
    return path_graph(n).relabel(dict(zip(range(1, n + 1), mapping)))


class TestChainOrder:
    def test_canonical_path(self):
        assert chain_order(path_graph(5)) == [1, 2, 3, 4, 5]

    def test_scrambled_path_recovered(self):
        graph = scrambled_chain(8)
        order = chain_order(graph)
        assert len(order) == 8
        for a, b in zip(order, order[1:]):
            assert graph.has_edge(a, b)

    def test_starts_at_least_end(self):
        graph = scrambled_chain(8)
        ends = [u for u in graph.nodes if graph.degree(u) == 1]
        assert chain_order(graph)[0] == min(ends)

    def test_single_node(self):
        assert chain_order(LabeledGraph(1)) == [1]

    def test_rejects_cycle(self):
        with pytest.raises(SchemeBuildError):
            chain_order(cycle_graph(5))

    def test_rejects_star(self):
        with pytest.raises(SchemeBuildError):
            chain_order(star_graph(5))

    def test_rejects_disconnected(self):
        with pytest.raises(SchemeBuildError):
            chain_order(LabeledGraph(4, [(1, 2), (3, 4)]))


class TestScheme:
    def test_requires_relabeling(self, model_ii_alpha):
        with pytest.raises(Exception):
            ChainComparisonScheme(path_graph(6), model_ii_alpha)

    def test_routes_exactly_on_scrambled_chain(self, model_ii_beta):
        graph = scrambled_chain(12)
        scheme = ChainComparisonScheme(graph, model_ii_beta)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_positions_are_monotone_along_chain(self, model_ii_beta):
        graph = scrambled_chain(10)
        scheme = ChainComparisonScheme(graph, model_ii_beta)
        order = chain_order(graph)
        assert [scheme.position_of(u) for u in order] == list(range(1, 11))

    def test_address_round_trip(self, model_ii_beta):
        graph = scrambled_chain(10)
        scheme = ChainComparisonScheme(graph, model_ii_beta)
        for u in graph.nodes:
            assert scheme.node_of_address(scheme.address_of(u)) == u

    def test_route_walks_the_chain(self, model_ii_beta):
        scheme = ChainComparisonScheme(path_graph(7), model_ii_beta)
        trace = route_message(scheme, 1, 7)
        assert trace.path == (1, 2, 3, 4, 5, 6, 7)

    def test_end_node_errors_when_direction_missing(self, model_ii_beta):
        scheme = ChainComparisonScheme(path_graph(4), model_ii_beta)
        function = scheme.function(1)  # position 1: no left neighbour
        with pytest.raises(RoutingError):
            function.next_hop(0)


class TestSpaceAdvantage:
    def test_o_log_n_bits_per_node(self, model_ii_beta):
        """The intro's point: relabelling makes chain tables tiny."""
        graph = scrambled_chain(64)
        scheme = ChainComparisonScheme(graph, model_ii_beta)
        worst = max(len(scheme.encode_function(u)) for u in graph.nodes)
        assert worst <= 2 * 7 + 2  # gamma(position) + marker

    def test_beats_full_table_by_orders(self, model_ii_beta, model_ia_alpha):
        graph = scrambled_chain(64)
        chain_bits = ChainComparisonScheme(
            graph, model_ii_beta
        ).space_report().total_bits
        table_bits = FullTableScheme(
            graph, model_ia_alpha
        ).space_report().total_bits
        # Full table: (n-1) entries/node even at 1 bit each; comparison
        # routing: O(log n)/node — the gap grows like n / log n.
        assert chain_bits < table_bits / 4

    def test_encode_decode_round_trip(self, model_ii_beta):
        graph = scrambled_chain(16)
        scheme = ChainComparisonScheme(graph, model_ii_beta)
        for u in graph.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in graph.nodes:
                if w != u:
                    address = scheme.address_of(w)
                    assert (
                        decoded.next_hop(address).next_node
                        == scheme.function(u).next_hop(address).next_node
                    )

    def test_registered_in_builder(self, model_ii_beta):
        from repro.core import build_scheme

        scheme = build_scheme("chain-comparison", path_graph(6), model_ii_beta)
        assert scheme.scheme_name == "chain-comparison"
