"""The crash-point property: every write-prefix recovers consistently.

The store's crash-safety claim, stated as a hypothesis property: take a
history of puts and swaps, truncate the journal after ANY byte prefix
(a crash can stop a write wherever it likes), recover — and the result
must be an internally consistent catalog that is a *prefix* of the
applied history: every surviving generation's blob is bit-exact, the
active pointer names a stored generation, and nothing that was never
written appears.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import build_scheme
from repro.core.persistence import pack_scheme
from repro.observability.registry import MetricsRegistry
from repro.store import (
    Catalog,
    CatalogEntry,
    MemoryFilesystem,
    RecoveryManager,
    SchemeStore,
    scan_journal,
)

_BLOB_CACHE = {}


def small_blob(seed: int) -> bytes:
    """A real packed scheme blob (tiny graph, cached per seed)."""
    if seed not in _BLOB_CACHE:
        from repro.graphs import gnp_random_graph
        from repro.models import Knowledge, Labeling, RoutingModel

        graph = gnp_random_graph(8, seed=seed)
        model = RoutingModel(Knowledge.II, Labeling.ALPHA)
        _BLOB_CACHE[seed] = pack_scheme(build_scheme("full-table", graph, model))
    return _BLOB_CACHE[seed]


# A history step: (name, blob-seed) put, or a swap to a random earlier
# generation (reduced modulo the generations that exist at apply time).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(["a", "b"]),
                  st.integers(min_value=0, max_value=2)),
        st.tuples(st.just("swap"), st.sampled_from(["a", "b"]),
                  st.integers(min_value=1, max_value=4)),
    ),
    min_size=1,
    max_size=6,
)


def build_history(fs: MemoryFilesystem, history) -> Catalog:
    """Apply the history through a real store; returns the final catalog."""
    store = SchemeStore.open(
        fs, registry=MetricsRegistry(), snapshot_every=1000
    )
    for step in history:
        if step[0] == "put":
            _, name, seed = step
            store.put(name, small_blob(seed), manifest={"seed": seed})
        else:
            _, name, generation = step
            generations = store.catalog.generations(name)
            if not generations:
                continue
            target = generations[(generation - 1) % len(generations)]
            store.swap(name, target)
    return store.catalog


@settings(max_examples=25)
@given(history=steps, data=st.data())
def test_every_write_prefix_recovers_to_a_consistent_catalog(history, data):
    fs = MemoryFilesystem()
    final = build_history(fs, history)
    journal = fs.read("journal.log") if fs.exists("journal.log") else b""
    cut = data.draw(st.integers(min_value=0, max_value=len(journal)),
                    label="crash point (journal byte prefix)")

    crashed = MemoryFilesystem()
    crashed.replace("journal.log", journal[:cut])
    catalog, report = RecoveryManager(
        crashed, registry=MetricsRegistry()
    ).recover()

    # 1. Internal consistency: every active pointer names a stored entry.
    assert catalog.is_consistent()

    # 2. Prefix property: everything recovered was actually written, with
    #    bit-exact blobs, and generations form a dense prefix 1..k of the
    #    final history (puts are ordered, so a truncation keeps a prefix).
    for name in catalog.names():
        recovered = catalog.generations(name)
        assert recovered == list(range(1, len(recovered) + 1))
        assert set(recovered) <= set(final.generations(name))
        for generation in recovered:
            assert (
                catalog.get(name, generation).blob
                == final.get(name, generation).blob
            )

    # 3. Nothing but a torn tail was lost: a clean truncation point (a
    #    record boundary) recovers every record before it.
    boundary_records = len(scan_journal(journal[:cut]).records)
    assert catalog.total_entries + report.swaps_ignored <= boundary_records
    # 4. No spurious damage reports: truncation only ever makes a torn
    #    tail, never a CRC-quarantined record.
    assert report.quarantined == []
    assert report.snapshots_rejected == []


@settings(max_examples=10)
@given(history=steps)
def test_full_journal_recovers_the_exact_final_catalog(history):
    fs = MemoryFilesystem()
    final = build_history(fs, history)
    catalog, report = RecoveryManager(
        fs, registry=MetricsRegistry()
    ).recover()
    assert report.clean
    assert catalog.active == final.active
    assert catalog.names() == final.names()
    for name in final.names():
        assert catalog.generations(name) == final.generations(name)
        for generation in final.generations(name):
            assert (
                catalog.get(name, generation).blob
                == final.get(name, generation).blob
            )
