"""Tests for the traffic-pattern generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import gnp_random_graph, path_graph
from repro.simulator import (
    all_to_one,
    hotspot_pairs,
    one_to_all,
    permutation_traffic,
    uniform_pairs,
)


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(20, seed=4)


class TestUniform:
    def test_count_and_validity(self, graph):
        pairs = uniform_pairs(graph, 100, seed=1)
        assert len(pairs) == 100
        for source, destination in pairs:
            assert 1 <= source <= 20
            assert 1 <= destination <= 20
            assert source != destination

    def test_deterministic(self, graph):
        assert uniform_pairs(graph, 50, seed=2) == uniform_pairs(graph, 50, seed=2)

    def test_seed_changes_output(self, graph):
        assert uniform_pairs(graph, 50, seed=2) != uniform_pairs(graph, 50, seed=3)

    def test_rejects_single_node(self):
        from repro.graphs import LabeledGraph

        with pytest.raises(GraphError):
            uniform_pairs(LabeledGraph(1), 5)

    def test_covers_node_range(self, graph):
        pairs = uniform_pairs(graph, 500, seed=0)
        sources = {s for s, _ in pairs}
        assert len(sources) > 15  # nearly all nodes appear


class TestHotspot:
    def test_few_destinations(self, graph):
        pairs = hotspot_pairs(graph, 200, hotspots=3, seed=5)
        destinations = {t for _, t in pairs}
        assert len(destinations) <= 3
        assert all(s != t for s, t in pairs)

    def test_rejects_bad_hotspot_count(self, graph):
        with pytest.raises(GraphError):
            hotspot_pairs(graph, 10, hotspots=0)
        with pytest.raises(GraphError):
            hotspot_pairs(graph, 10, hotspots=20)


class TestGatherScatter:
    def test_all_to_one(self, graph):
        pairs = all_to_one(graph, destination=7)
        assert len(pairs) == 19
        assert all(t == 7 and s != 7 for s, t in pairs)

    def test_one_to_all(self, graph):
        pairs = one_to_all(graph, source=3)
        assert len(pairs) == 19
        assert all(s == 3 and t != 3 for s, t in pairs)

    def test_range_checks(self, graph):
        with pytest.raises(GraphError):
            all_to_one(graph, destination=0)
        with pytest.raises(GraphError):
            one_to_all(graph, source=21)


class TestPermutation:
    def test_is_derangement(self, graph):
        pairs = permutation_traffic(graph, seed=6)
        assert len(pairs) == 20
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        assert sorted(sources) == list(graph.nodes)
        assert sorted(targets) == list(graph.nodes)
        assert all(s != t for s, t in pairs)

    def test_deterministic(self, graph):
        assert permutation_traffic(graph, seed=1) == permutation_traffic(
            graph, seed=1
        )

    def test_two_nodes(self):
        pairs = permutation_traffic(path_graph(2), seed=0)
        assert sorted(pairs) == [(1, 2), (2, 1)]


class TestEndToEnd:
    def test_workloads_route_cleanly(self, graph, model_ii_alpha):
        from repro.core import build_scheme
        from repro.simulator import Network, summarize

        network = Network(build_scheme("full-table", graph, model_ii_alpha))
        for pairs in (
            uniform_pairs(graph, 50, seed=1),
            hotspot_pairs(graph, 50, seed=1),
            all_to_one(graph),
            permutation_traffic(graph, seed=1),
        ):
            records = [network.route(s, t) for s, t in pairs]
            metrics = summarize(records, graph)
            assert metrics.delivered_fraction == 1.0
