"""Property-based checks of the incremental churn-repair invariants.

The repair layer's central claim: after any valid mutation sequence, a
node outside the dirty closure *provably* encodes to the same bits, so
its pristine table can be adopted unchanged — and the repaired scheme as
a whole routes the mutated topology exactly like a from-scratch build.
"""

from __future__ import annotations

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import build_scheme, plan_repair, route_message
from repro.core.repair import dirty_nodes
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import (
    EventDrivenSimulator,
    RetryPolicy,
    TopologyMutationKind,
    random_churn,
)

IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)

ALL_KINDS = (
    TopologyMutationKind.EDGE_ADD,
    TopologyMutationKind.EDGE_REMOVE,
    TopologyMutationKind.NODE_LEAVE,
    TopologyMutationKind.NODE_JOIN,
)


@settings(max_examples=25)
@given(
    graph_seed=st.integers(min_value=0, max_value=2**16),
    churn_seed=st.integers(min_value=0, max_value=2**16),
    events=st.integers(min_value=1, max_value=5),
)
def test_clean_tables_are_bit_identical_after_repair(
    graph_seed, churn_seed, events
):
    graph = gnp_random_graph(14, seed=graph_seed)
    assume(graph.is_connected())  # full-table requires connectivity
    scheme = build_scheme("full-table", graph, IA_ALPHA)
    schedule = random_churn(graph, events, horizon=10.0, seed=churn_seed)
    final = schedule.final_graph(graph)
    plan = plan_repair(scheme, final)
    assert plan.dirty | plan.clean == frozenset(final.nodes)
    assert not plan.dirty & plan.clean
    # An independently built scheme is the ground truth encoding.
    fresh = build_scheme("full-table", final, IA_ALPHA)
    for node in plan.clean:
        adopted = plan.new_scheme.ctx.pristine_bits(plan.new_scheme, node)
        assert adopted == fresh.encode_function(node), (
            f"node {node} was declared clean but its adopted table "
            f"differs from a from-scratch encode"
        )
    # Dirty tables were re-encoded; together the plan covers the full
    # rebuild's bill exactly.
    assert plan.bits_total == sum(
        len(fresh.encode_function(u)) for u in final.nodes
    )


@settings(max_examples=25)
@given(
    graph_seed=st.integers(min_value=0, max_value=2**16),
    churn_seed=st.integers(min_value=0, max_value=2**16),
    events=st.integers(min_value=1, max_value=4),
)
def test_repaired_scheme_routes_like_a_fresh_build(
    graph_seed, churn_seed, events
):
    graph = gnp_random_graph(12, seed=graph_seed)
    assume(graph.is_connected())  # full-table requires connectivity
    scheme = build_scheme("full-table", graph, IA_ALPHA)
    schedule = random_churn(
        graph, events, horizon=10.0, seed=churn_seed, kinds=ALL_KINDS
    )
    final = schedule.final_graph(graph)
    plan = plan_repair(scheme, final)
    # Routing over the repaired scheme is exact-shortest-path on the
    # mutated topology for every live ordered pair (a left node is
    # isolated until it rejoins, so it is neither source nor sink).
    live = [u for u in final.nodes if final.degree(u) > 0]
    dist = plan.new_scheme.ctx.distances()
    rng = random.Random(1)
    for _ in range(60):
        source, destination = rng.sample(live, 2)
        trace = route_message(plan.new_scheme, source, destination)
        assert trace.delivered, trace
        assert trace.hops == dist[source - 1, destination - 1], trace


@settings(max_examples=15, deadline=None)
@given(
    churn_seed=st.integers(min_value=0, max_value=2**16),
    events=st.integers(min_value=1, max_value=4),
)
def test_engine_converges_and_post_churn_probes_are_never_stale(
    churn_seed, events
):
    graph = gnp_random_graph(12, seed=5)
    scheme = build_scheme("full-table", graph, IA_ALPHA)
    schedule = random_churn(graph, events, horizon=10.0, seed=churn_seed)
    sim = EventDrivenSimulator(
        scheme,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=1.0),
        retry_seed=churn_seed,
        churn_schedule=schedule,
        churn_repair_delay=2.0,
    )
    # Probes go in after the last repair can possibly finish.
    probe_at = schedule.horizon + 5.0
    final = schedule.final_graph(graph)
    live = [u for u in final.nodes if final.degree(u) > 0]
    for offset, source in enumerate(live):
        destination = live[(offset + 1) % len(live)]
        if source != destination:
            sim.inject(source, destination, probe_at + 0.1 * offset)
    records = sim.run()
    assert sim.churn_summary()["converged"]
    probes = [r for r in records if r.injected_at >= probe_at]
    assert probes
    for record in probes:
        assert record.delivered and not record.stale, record


@settings(max_examples=30)
@given(
    graph_seed=st.integers(min_value=0, max_value=2**16),
    churn_seed=st.integers(min_value=0, max_value=2**16),
)
def test_dirty_closure_is_monotone_under_composition(graph_seed, churn_seed):
    """The closure of a two-mutation schedule contains every node whose
    adjacency any single mutation touched."""
    graph = gnp_random_graph(12, seed=graph_seed)
    assume(graph.is_connected())  # keep_connected churn needs a base
    schedule = random_churn(graph, 2, horizon=10.0, seed=churn_seed)
    final = schedule.final_graph(graph)
    dirty = dirty_nodes(graph, final)
    for mutation in schedule:
        if mutation.kind in (
            TopologyMutationKind.EDGE_ADD, TopologyMutationKind.EDGE_REMOVE
        ):
            touched = set(mutation.subject)
            for node in touched:
                old_nb = graph.neighbor_set(node)
                new_nb = final.neighbor_set(node)
                if old_nb != new_nb:
                    assert node in dirty
