"""Tests for the scheme-comparison helper and the new graph families."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DEFAULT_MENU,
    compare_schemes,
    format_comparison,
)
from repro.errors import GraphError
from repro.graphs import (
    diameter,
    distance_matrix,
    gnp_random_graph,
    grid_graph,
    torus_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel


class TestGridAndTorus:
    def test_grid_structure(self):
        graph = grid_graph(3, 4)
        assert graph.n == 12
        assert graph.edge_count == 3 * 3 + 2 * 4  # horizontal + vertical
        assert graph.has_edge(1, 2)
        assert graph.has_edge(1, 5)
        assert not graph.has_edge(4, 5)  # row wrap must not exist

    def test_grid_diameter(self):
        assert diameter(grid_graph(3, 5)) == 2 + 4

    def test_grid_rejects_degenerate(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_torus_is_regular(self):
        graph = torus_graph(4, 5)
        assert all(graph.degree(u) == 4 for u in graph.nodes)
        assert graph.edge_count == 2 * 20

    def test_torus_wraps(self):
        graph = torus_graph(3, 4)
        assert graph.has_edge(1, 4)  # row wrap
        assert graph.has_edge(1, 9)  # column wrap

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_torus_distances_symmetric(self):
        graph = torus_graph(4, 4)
        dist = distance_matrix(graph)
        assert (dist == dist.T).all()
        assert dist.max() == 4  # 2 + 2 wrap-around radius


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        graph = gnp_random_graph(40, seed=43)
        return compare_schemes(graph, sample_pairs=150, seed=1)

    def test_every_menu_entry_reported(self, rows):
        assert len(rows) == len(DEFAULT_MENU)
        assert {row.scheme for row in rows} == {name for name, _ in DEFAULT_MENU}

    def test_dense_graph_builds_everything(self, rows):
        assert all(row.built for row in rows)

    def test_stretch_respects_models(self, rows):
        by_name = {row.scheme: row for row in rows}
        assert by_name["full-table"].max_stretch == 1.0
        assert by_name["thm3-centers"].max_stretch <= 1.5
        assert by_name["thm4-hub"].max_stretch <= 2.0

    def test_size_hierarchy(self, rows):
        by_name = {row.scheme: row for row in rows}
        assert (
            by_name["full-information"].total_bits
            > by_name["full-table"].total_bits
            > by_name["thm1-two-level"].total_bits
            > by_name["thm4-hub"].total_bits
            > by_name["thm5-probe"].total_bits
        )

    def test_refusals_reported_on_sparse_graph(self):
        from repro.graphs import path_graph

        rows = compare_schemes(path_graph(16), sample_pairs=50)
        by_name = {row.scheme: row for row in rows}
        assert not by_name["thm1-two-level"].built
        assert "diameter" in by_name["thm4-hub"].refusal or not by_name[
            "thm4-hub"
        ].built
        assert by_name["full-table"].built
        assert by_name["interval"].built

    def test_format_mentions_refusals(self):
        from repro.graphs import path_graph

        text = format_comparison(compare_schemes(path_graph(12), sample_pairs=40))
        assert "refused" in text
        assert "full-table" in text

    def test_format_is_aligned_table(self, rows):
        text = format_comparison(rows)
        lines = text.splitlines()
        assert len(lines) == 1 + len(rows)
        assert "total bits" in lines[0]


class TestCompareCli:
    def test_compare_command(self, capsys):
        from repro.cli import main

        assert main(["compare", "40", "--seed", "43", "--pairs", "60"]) == 0
        out = capsys.readouterr().out
        assert "thm1-two-level" in out
        assert "tree-cover" in out
