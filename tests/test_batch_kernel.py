"""Scalar/batch equivalence for the vectorised routing kernel.

The batch boundary's contract is *bit identity*: for any fixed seed the
``BatchKernel`` must emit exactly the ``DeliveryRecord`` stream the
scalar per-message walk emits — across every scheme, with chaos,
corruption and churn enabled, with tracing on or off.  These tests pin
that contract with a hypothesis property over all 11 schemes, check the
kernel against ``EventDrivenSimulator`` itself, pin the sweep driver's
worker-count independence, and regression-test that the untraced kernel
pays nothing for the (disabled) tracer hooks.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from functools import lru_cache

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import available_schemes, build_scheme
from repro.graphs import gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import NULL_TRACER, RecordingTracer, SamplingTracer
from repro.simulator import (
    BatchKernel,
    EventDrivenSimulator,
    RetryPolicy,
    SweepTask,
    run_sweep,
)
from repro.simulator.chaos import renewal_faults, table_corruption
from repro.simulator.churn import random_churn
from repro.simulator.failures import sample_link_failures, sample_node_failures

II_GAMMA = RoutingModel(Knowledge.II, Labeling.GAMMA)
II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)

ALL_SCHEMES = available_schemes()

# Churn repairs reinstall tables against live addresses, so the churn
# property restricts itself to plain-label schemes (address == node id).
CHURN_SCHEMES = ("full-table", "full-information")


@lru_cache(maxsize=None)
def _scheme(name):
    """One cached (scheme, graph) per name; built on a graph it accepts.

    chain-comparison requires an actual chain and thm1-two-level a dense
    Lemma-3-like graph; G(28, 1/2) satisfies every other construction.
    """
    if name == "chain-comparison":
        graph = path_graph(12)
    else:
        graph = gnp_random_graph(28, seed=43)
    return build_scheme(name, graph, II_GAMMA), graph


def _injections(graph, messages, seed, horizon=30.0):
    clock = random.Random(seed)
    nodes = sorted(graph.nodes)
    return [
        (*clock.sample(nodes, 2), clock.uniform(0.0, horizon))
        for _ in range(messages)
    ]


def _run(scheme, injections, batch, **kwargs):
    kernel = BatchKernel(scheme, batch=batch, **kwargs)
    for source, destination, at_time in injections:
        kernel.inject(source, destination, at_time)
    return kernel.run()


# -- the tentpole property ----------------------------------------------------


@st.composite
def fault_cases(draw):
    scheme_name = draw(st.sampled_from(ALL_SCHEMES))
    seed = draw(st.integers(0, 3))
    variant = draw(st.sampled_from(("static", "chaos", "corruption")))
    messages = draw(st.integers(1, 20))
    retries = draw(st.integers(0, 2))
    return scheme_name, seed, variant, messages, retries


@given(fault_cases())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_matches_scalar_under_faults(case):
    """Bit-identical records, all 11 schemes, faults and retries on."""
    scheme_name, seed, variant, messages, retries = case
    scheme, graph = _scheme(scheme_name)
    kwargs = {
        "retry_policy": (
            RetryPolicy(max_attempts=retries + 1, base_delay=0.5)
            if retries
            else None
        ),
        "retry_seed": seed,
    }
    if variant == "static":
        # keep_connected=False: a chain has no expendable links, and the
        # equivalence must hold on partitioned graphs anyway.
        kwargs["failed_links"] = sample_link_failures(
            graph, 3, seed=seed, keep_connected=False
        )
        kwargs["failed_nodes"] = sample_node_failures(
            graph, 1, seed=seed, keep_connected=False
        )
    elif variant == "chaos":
        kwargs["fault_schedule"] = renewal_faults(
            graph,
            horizon=40.0,
            seed=seed,
            link_count=graph.edge_count // 3,
            node_count=2,
        )
    else:
        kwargs["fault_schedule"] = table_corruption(
            graph, max(graph.n // 4, 1), horizon=40.0, seed=seed
        )
        kwargs["repair_delay"] = 6.0
    injections = _injections(graph, messages, seed)
    batched = _run(scheme, injections, True, **kwargs)
    scalar = _run(scheme, injections, False, **kwargs)
    assert batched == scalar
    assert len(batched) == messages


@pytest.mark.parametrize("scheme_name", CHURN_SCHEMES)
def test_batch_matches_scalar_under_churn(scheme_name):
    graph = gnp_random_graph(18, seed=11)
    scheme = build_scheme(scheme_name, graph, II_ALPHA)
    injections = _injections(graph, 80, seed=5, horizon=35.0)
    kwargs = {
        "retry_policy": RetryPolicy(max_attempts=3, base_delay=0.5),
        "retry_seed": 5,
        "churn_repair_delay": 4.0,
    }
    results = {}
    for batch in (True, False):
        kernel = BatchKernel(
            scheme,
            batch=batch,
            churn_schedule=random_churn(graph, 6, horizon=30.0, seed=7),
            **kwargs,
        )
        for source, destination, at_time in injections:
            kernel.inject(source, destination, at_time)
        results[batch] = (kernel.run(), kernel.churn_summary())
    assert results[True] == results[False]


# -- kernel vs. the event-driven engine ---------------------------------------


def test_kernel_matches_event_driven_engine():
    """Both kernel lanes reproduce the engine's records exactly."""
    graph = gnp_random_graph(20, seed=3)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    failed_links = tuple(sample_link_failures(graph, 4, seed=9))
    failed_nodes = tuple(sample_node_failures(graph, 2, seed=9))
    injections = _injections(graph, 60, seed=9)
    engine = EventDrivenSimulator(
        scheme, failed_links=failed_links, failed_nodes=failed_nodes
    )
    for source, destination, at_time in injections:
        engine.inject(source, destination, at_time)
    reference = sorted(engine.run(), key=lambda r: r.msg_id)
    for batch in (True, False):
        records = _run(
            scheme,
            injections,
            batch,
            failed_links=failed_links,
            failed_nodes=failed_nodes,
        )
        assert sorted(records, key=lambda r: r.msg_id) == reference


def test_tracing_is_preserved_behind_the_boundary():
    """Full tracing: identical records AND identical span streams."""
    graph = gnp_random_graph(16, seed=21)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    injections = _injections(graph, 40, seed=13)
    schedule = renewal_faults(
        graph, horizon=40.0, seed=13, link_count=6, node_count=1
    )
    streams = {}
    for batch in (True, False):
        tracer = RecordingTracer()
        records = _run(
            scheme,
            injections,
            batch,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
            retry_seed=13,
            tracer=tracer,
        )
        streams[batch] = (records, tracer.events)
    assert streams[True] == streams[False]
    assert len(streams[True][1]) > 0


def test_sampled_tracing_promotion_matches_scalar():
    """Sampled tracing (with anomaly promotion) stays bit-identical."""
    graph = gnp_random_graph(16, seed=21)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    injections = _injections(graph, 60, seed=17)
    schedule = renewal_faults(
        graph, horizon=40.0, seed=17, link_count=6, node_count=1
    )
    streams = {}
    for batch in (True, False):
        tracer = SamplingTracer(RecordingTracer(), rate=0.1, seed=3)
        records = _run(
            scheme,
            injections,
            batch,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
            retry_seed=17,
            tracer=tracer,
        )
        streams[batch] = (records, tracer._sink.events)
    assert streams[True] == streams[False]


# -- sweep driver determinism -------------------------------------------------


def _sweep_tasks(batch=True):
    return [
        SweepTask(
            scheme="full-table",
            n=14,
            graph_seed=2,
            seed=seed,
            messages=24,
            variant=variant,
            retries=1,
            batch=batch,
            failures=3,
            node_failures=1,
        )
        for seed in (0, 1)
        for variant in ("plain", "chaos", "corruption", "churn")
    ]


def test_sweep_digests_independent_of_worker_count():
    one = run_sweep(_sweep_tasks(), workers=1)
    many = run_sweep(_sweep_tasks(), workers=3)
    assert [r.record_digest for r in one] == [r.record_digest for r in many]
    assert [r.task for r in one] == [r.task for r in many]


def test_sweep_digests_independent_of_batch_flag():
    batched = run_sweep(_sweep_tasks(batch=True), workers=1)
    scalar = run_sweep(_sweep_tasks(batch=False), workers=1)
    for fast, slow in zip(batched, scalar):
        assert fast.record_digest == slow.record_digest
        assert replace(fast.task, batch=False) == slow.task


# -- disabled-tracing overhead ------------------------------------------------


def test_disabled_tracing_kernel_overhead():
    """A NULL_TRACER kernel run must cost the same as tracer=None.

    Mirrors the BENCH_observability acceptance budget (≤5%), widened to
    the bench's own smoke budget of 1.25x because short CI timings run
    noisy; the structural claim is that a disabled tracer collapses to
    `None` at construction so the kernel's fast lane pays zero per-hop.
    """
    graph = gnp_random_graph(48, seed=83)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    injections = _injections(graph, 600, seed=29, horizon=0.0)
    timings = {"untraced": [], "disabled": []}
    baseline = None
    for _ in range(5):
        start = time.perf_counter()
        records = _run(scheme, injections, True)
        timings["untraced"].append(time.perf_counter() - start)
        baseline = records
        start = time.perf_counter()
        records = _run(scheme, injections, True, tracer=NULL_TRACER)
        timings["disabled"].append(time.perf_counter() - start)
        assert records == baseline
    ratio = min(timings["disabled"]) / min(timings["untraced"])
    assert ratio <= 1.25, (
        f"disabled tracing cost {ratio:.3f}x the untraced kernel"
    )
