"""Tests for multi-interval routing (the related-work-[1] scheme)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullTableScheme,
    MultiIntervalScheme,
    cyclic_intervals,
    verify_scheme,
)
from repro.core.multi_interval import _interval_contains
from repro.errors import RoutingError
from repro.graphs import (
    PortAssignment,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel


class TestCyclicIntervals:
    def test_empty(self):
        assert cyclic_intervals([], 8) == []

    def test_single_label(self):
        assert cyclic_intervals([5], 8) == [(5, 5)]

    def test_contiguous_run(self):
        assert cyclic_intervals([2, 3, 4], 8) == [(2, 4)]

    def test_wrapping_run(self):
        assert cyclic_intervals([7, 8, 1, 2], 8) == [(7, 2)]

    def test_everything_is_one_interval(self):
        assert cyclic_intervals(list(range(1, 9)), 8) == [(1, 8)]

    def test_fragmented_set(self):
        assert cyclic_intervals([1, 3, 5, 7], 8) == [
            (1, 1), (3, 3), (5, 5), (7, 7)
        ]

    @given(
        st.integers(min_value=2, max_value=40),
        st.data(),
    )
    @settings(max_examples=60)
    def test_intervals_cover_exactly(self, n, data):
        labels = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n), unique=True, max_size=n
            )
        )
        intervals = cyclic_intervals(labels, n)
        member = set(labels)
        for label in range(1, n + 1):
            covered = any(
                _interval_contains(interval, label) for interval in intervals
            )
            assert covered == (label in member)

    @given(st.integers(min_value=3, max_value=30), st.data())
    @settings(max_examples=40)
    def test_intervals_are_maximal(self, n, data):
        labels = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                unique=True, min_size=1, max_size=n - 1,
            )
        )
        intervals = cyclic_intervals(labels, n)
        member = set(labels)
        for lo, hi in intervals:
            before = lo - 1 if lo > 1 else n
            after = hi + 1 if hi < n else 1
            assert before not in member
            assert after not in member


class TestScheme:
    def test_cycle_is_classical_interval_routing(self, model_ia_alpha):
        scheme = MultiIntervalScheme(cycle_graph(16), model_ia_alpha)
        assert scheme.max_intervals_per_port() == 1
        assert verify_scheme(scheme).ok()

    def test_path_is_classical(self, model_ia_alpha):
        scheme = MultiIntervalScheme(path_graph(10), model_ia_alpha)
        assert scheme.max_intervals_per_port() == 1

    def test_grid_labels_fragment_mildly(self, model_ia_alpha):
        scheme = MultiIntervalScheme(grid_graph(4, 5), model_ia_alpha)
        assert verify_scheme(scheme).ok()
        assert scheme.max_intervals_per_port() >= 2

    def test_random_graph_fragments_heavily(self, model_ia_alpha):
        """[1]'s observation: random graphs defeat interval compaction."""
        graph = gnp_random_graph(32, seed=4)
        scheme = MultiIntervalScheme(graph, model_ia_alpha)
        assert verify_scheme(scheme).ok()
        assert scheme.max_intervals_per_port() >= 5
        total_intervals = sum(scheme.interval_count(u) for u in graph.nodes)
        assert total_intervals > graph.n * 10

    def test_agrees_with_full_table(self, model_ia_alpha):
        graph = gnp_random_graph(24, seed=9)
        interval_scheme = MultiIntervalScheme(graph, model_ia_alpha)
        table_scheme = FullTableScheme(graph, model_ia_alpha)
        for u in (1, 12, 24):
            for w in graph.nodes:
                if w != u:
                    assert (
                        interval_scheme.function(u).port_for(w)
                        == table_scheme.function(u).port_for(w)
                    )

    def test_respects_adversarial_ports(self, model_ia_alpha):
        graph = gnp_random_graph(20, seed=2)
        ports = PortAssignment.shuffled(graph, random.Random(1))
        scheme = MultiIntervalScheme(graph, model_ia_alpha, ports=ports)
        assert scheme.port_assignment is ports
        assert verify_scheme(scheme).ok()

    def test_missing_destination_raises(self, model_ia_alpha):
        scheme = MultiIntervalScheme(path_graph(4), model_ia_alpha)
        with pytest.raises(RoutingError):
            scheme.function(2).port_for(2)

    def test_encode_decode_round_trip(self, model_ia_alpha):
        graph = gnp_random_graph(24, seed=9)
        scheme = MultiIntervalScheme(graph, model_ia_alpha)
        for u in graph.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in graph.nodes:
                if w != u:
                    assert decoded.port_for(w) == scheme.function(u).port_for(w)

    def test_structured_graphs_compress_vs_full_table(self, model_ia_alpha):
        graph = cycle_graph(64)
        interval_bits = MultiIntervalScheme(
            graph, model_ia_alpha
        ).space_report().total_bits
        table_bits = FullTableScheme(
            graph, model_ia_alpha
        ).space_report().total_bits
        # Cycle ports are 1-bit entries already, yet O(1) intervals per
        # port still roughly halve the table (n-1 entries → 2 intervals).
        assert interval_bits < 0.6 * table_bits

    def test_registered(self, model_ia_alpha):
        from repro.core import build_scheme

        scheme = build_scheme("multi-interval", cycle_graph(8), model_ia_alpha)
        assert scheme.scheme_name == "multi-interval"
