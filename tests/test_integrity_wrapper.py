"""IntegrityWrapper: charged framing around any routing scheme."""

from __future__ import annotations

import pytest

from repro.core import DetourWrapper, build_scheme
from repro.core.persistence import pack_scheme, unpack_blob
from repro.errors import IntegrityError
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.simulator import Network, uniform_pairs

FRAMED = (FramingPolicy.PARITY, FramingPolicy.CRC8, FramingPolicy.CRC16)


@pytest.fixture(scope="module")
def base_scheme(random_graph_32, model_ii_alpha):
    return build_scheme("full-table", random_graph_32, model_ii_alpha)


@pytest.mark.parametrize("policy", FRAMED)
def test_space_report_charges_exact_overhead(base_scheme, policy):
    wrapped = IntegrityWrapper(base_scheme, policy)
    report = wrapped.space_report()
    n = base_scheme.graph.n
    assert report.integrity_bits == n * policy.overhead_bits
    base_report = base_scheme.space_report()
    # The framing is purely additive: routing/label/aux are untouched.
    assert report.routing_bits == base_report.routing_bits
    assert report.label_bits == base_report.label_bits
    assert report.aux_bits == base_report.aux_bits
    assert report.total_bits == (
        base_report.total_bits + n * policy.overhead_bits
    )
    for entry in report.per_node:
        assert entry.integrity_bits == policy.overhead_bits
        assert entry.total == (
            entry.routing_bits + entry.label_bits + entry.aux_bits
            + entry.integrity_bits
        )
    assert "integrity" in report.summary()


@pytest.mark.parametrize("policy", FRAMED)
def test_encode_decode_round_trip(base_scheme, policy):
    wrapped = IntegrityWrapper(base_scheme, policy)
    for u in list(base_scheme.graph.nodes)[:8]:
        framed = wrapped.encode_function(u)
        assert len(framed) == (
            len(base_scheme.encode_function(u)) + policy.overhead_bits
        )
        decoded = wrapped.decode_function(u, framed)
        inner = base_scheme.function(u)
        for v in list(base_scheme.graph.nodes)[:8]:
            if v == u:
                continue
            address = base_scheme.address_of(v)
            assert (
                decoded.next_hop(address).next_node
                == inner.next_hop(address).next_node
            )


def test_decode_rejects_damaged_frame(base_scheme):
    wrapped = IntegrityWrapper(base_scheme, FramingPolicy.CRC8)
    framed = wrapped.encode_function(1)
    flipped = list(framed)
    flipped[0] ^= 1
    from repro.bitio import BitArray

    with pytest.raises(IntegrityError):
        wrapped.decode_function(1, BitArray(flipped))


def test_none_policy_is_bit_identical(base_scheme):
    # The acceptance criterion: with framing disabled the wrapped scheme's
    # spaces and routing are bit-for-bit the pre-PR scheme.
    wrapped = IntegrityWrapper(base_scheme, FramingPolicy.NONE)
    for u in base_scheme.graph.nodes:
        assert wrapped.encode_function(u) == base_scheme.encode_function(u)
    assert wrapped.integrity_bits(1) == 0
    report = wrapped.space_report()
    base_report = base_scheme.space_report()
    assert report.integrity_bits == 0
    assert report.total_bits == base_report.total_bits
    network = Network(wrapped)
    baseline = Network(base_scheme)
    for s, d in uniform_pairs(base_scheme.graph, 40, seed=5):
        assert network.route(s, d).path == baseline.route(s, d).path


def test_routing_through_framed_scheme(base_scheme):
    wrapped = IntegrityWrapper(base_scheme, FramingPolicy.CRC16)
    network = Network(wrapped)
    baseline = Network(base_scheme)
    for s, d in uniform_pairs(base_scheme.graph, 40, seed=5):
        framed_record = network.route(s, d)
        assert framed_record.delivered
        assert framed_record.path == baseline.route(s, d).path
    assert wrapped.stretch_bound() == base_scheme.stretch_bound()


def test_detour_composes_outside_framing(base_scheme):
    wrapped = DetourWrapper(IntegrityWrapper(base_scheme, FramingPolicy.CRC8))
    assert wrapped.scheme_name == "detour(integrity-crc8(full-table))"
    # The detour layer passes the integrity charge through unchanged.
    assert (
        wrapped.space_report().integrity_bits
        == base_scheme.graph.n * FramingPolicy.CRC8.overhead_bits
    )
    record = Network(wrapped).route(2, 9)
    assert record.delivered


def test_pack_unpack_round_trip_of_framed_scheme(
    base_scheme, random_graph_32, model_ii_alpha
):
    wrapped = IntegrityWrapper(base_scheme, FramingPolicy.CRC8)
    blob = pack_scheme(wrapped)
    parsed = unpack_blob(blob)
    assert parsed.scheme_name == "integrity-crc8(full-table)"
    assert parsed.n == random_graph_32.n
    for u in random_graph_32.nodes:
        assert parsed.functions[u] == wrapped.encode_function(u)


def test_scheme_name_and_delegation(base_scheme):
    wrapped = IntegrityWrapper(base_scheme, FramingPolicy.PARITY)
    assert wrapped.scheme_name == "integrity-parity(full-table)"
    assert wrapped.inner is base_scheme
    assert wrapped.policy is FramingPolicy.PARITY
    assert wrapped.hop_limit() == base_scheme.hop_limit()
    for v in list(base_scheme.graph.nodes)[:5]:
        assert wrapped.address_of(v) == base_scheme.address_of(v)
        assert wrapped.node_of_address(wrapped.address_of(v)) == (
            base_scheme.node_of_address(base_scheme.address_of(v))
        )
