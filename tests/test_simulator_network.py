"""Tests for the hop-by-hop network simulator with failures."""

from __future__ import annotations

import pytest

from repro.core import build_scheme
from repro.graphs import cycle_graph, gnp_random_graph, path_graph
from repro.simulator import Network
from repro.models import Knowledge, Labeling, RoutingModel


class TestBasicRouting:
    def test_delivery_matches_verifier(self, random_graph_32, model_ii_alpha):
        scheme = build_scheme("thm1-two-level", random_graph_32, model_ii_alpha)
        network = Network(scheme)
        for u in (1, 10):
            for w in random_graph_32.nodes:
                if w != u:
                    record = network.route(u, w)
                    assert record.delivered
                    assert record.path[0] == u and record.path[-1] == w

    def test_records_have_unique_ids(self, model_ia_alpha):
        network = Network(build_scheme("full-table", path_graph(4), model_ia_alpha))
        ids = {network.route(1, 4).msg_id for _ in range(5)}
        assert len(ids) == 5

    def test_stateful_probe_scheme_routes(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=32)
        network = Network(build_scheme("thm5-probe", graph, model_ii_alpha))
        record = network.route(1, graph.non_neighbors(1)[0])
        assert record.delivered


class TestFailures:
    def test_single_path_drops_on_failed_link(self, model_ia_alpha):
        graph = path_graph(4)
        network = Network(build_scheme("full-table", graph, model_ia_alpha))
        network.fail_link(2, 3)
        record = network.route(1, 4)
        assert not record.delivered
        assert "down" in record.drop_reason

    def test_restore_link(self, model_ia_alpha):
        graph = path_graph(4)
        network = Network(build_scheme("full-table", graph, model_ia_alpha))
        network.fail_link(2, 3)
        network.restore_link(2, 3)
        assert network.route(1, 4).delivered

    def test_full_information_routes_around(self, model_ii_alpha):
        """The paper's motivation for full-information schemes."""
        graph = cycle_graph(4)  # two shortest paths between opposite corners
        scheme = build_scheme("full-information", graph, model_ii_alpha)
        network = Network(scheme)
        assert network.route(1, 3).path == (1, 2, 3)
        network.fail_link(1, 2)
        record = network.route(1, 3)
        assert record.delivered
        assert record.path == (1, 4, 3)

    def test_full_information_beats_single_path_under_failures(
        self, model_ii_alpha
    ):
        from repro.simulator import sample_link_failures

        graph = gnp_random_graph(32, seed=18)
        failures = sample_link_failures(graph, 40, seed=5)
        pairs = [(u, w) for u in range(1, 9) for w in range(9, 25)]
        full_info = Network(
            build_scheme("full-information", graph, model_ii_alpha), failures
        )
        single = Network(
            build_scheme("thm1-two-level", graph, model_ii_alpha), failures
        )
        delivered_full = sum(full_info.route(u, w).delivered for u, w in pairs)
        delivered_single = sum(single.route(u, w).delivered for u, w in pairs)
        assert delivered_full >= delivered_single

    def test_failed_links_listed(self, model_ia_alpha):
        network = Network(build_scheme("full-table", path_graph(3), model_ia_alpha))
        network.fail_link(1, 2)
        assert network.failed_links == {frozenset((1, 2))}


class TestGammaAddressing:
    def test_complex_addresses_flow_through(self, model_ii_gamma):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm2-neighbor-labels", graph, model_ii_gamma)
        network = Network(scheme)
        for w in (5, 20):
            record = network.route(1, w)
            assert record.delivered
            assert record.hops <= 2
