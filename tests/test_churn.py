"""Live topology churn: mutations, schedules, repair planning, convergence."""

from __future__ import annotations

import json

import pytest

from repro.core import build_scheme, plan_repair, verify_scheme
from repro.core.repair import dirty_nodes
from repro.errors import GraphError, RoutingError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    get_context,
    gnp_random_graph,
    star_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import MetricsRegistry, RecordingTracer, set_registry
from repro.simulator import (
    ChurnSchedule,
    DropReason,
    EventDrivenSimulator,
    RetryPolicy,
    TopologyMutation,
    TopologyMutationKind,
    random_churn,
    summarize,
    uniform_pairs,
)

IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestTopologyMutation:
    def test_constructors_and_describe(self):
        add = TopologyMutation.edge_add(1.0, 2, 3)
        assert add.kind is TopologyMutationKind.EDGE_ADD
        assert add.describe() == "add edge 2-3"
        remove = TopologyMutation.edge_remove(2.0, 3, 4)
        assert remove.describe() == "remove edge 3-4"
        leave = TopologyMutation.node_leave(3.0, 5)
        assert leave.describe() == "node 5 leaves"
        join = TopologyMutation.node_join(4.0, 5, (1, 2))
        assert join.describe() == "node 5 joins via 1,2"

    def test_validation_rejects_malformed_mutations(self):
        with pytest.raises(GraphError):
            TopologyMutation.edge_add(-1.0, 1, 2)
        with pytest.raises(GraphError):
            TopologyMutation.edge_add(0.0, 4, 4)  # self loop
        with pytest.raises(GraphError):
            TopologyMutation(0.0, TopologyMutationKind.NODE_LEAVE, (1, 2))
        with pytest.raises(GraphError):
            TopologyMutation(0.0, TopologyMutationKind.NODE_JOIN, (5,))
        with pytest.raises(GraphError):
            TopologyMutation.node_join(0.0, 5, (5,))  # attach to itself
        with pytest.raises(GraphError):
            TopologyMutation.node_join(0.0, 5, (1, 1))  # duplicate

    def test_apply_mutates_the_graph(self):
        graph = cycle_graph(5)
        added = TopologyMutation.edge_add(0.0, 1, 3).apply(graph)
        assert added.has_edge(1, 3) and not graph.has_edge(1, 3)
        removed = TopologyMutation.edge_remove(0.0, 1, 2).apply(graph)
        assert not removed.has_edge(1, 2)
        isolated = TopologyMutation.node_leave(0.0, 4).apply(graph)
        assert isolated.degree(4) == 0 and isolated.n == graph.n
        rejoined = TopologyMutation.node_join(0.0, 4, (1, 2)).apply(isolated)
        assert rejoined.neighbor_set(4) == frozenset({1, 2})

    def test_apply_rejects_inapplicable_mutations(self):
        graph = cycle_graph(5)
        with pytest.raises(GraphError):
            TopologyMutation.edge_add(0.0, 1, 2).apply(graph)  # exists
        with pytest.raises(GraphError):
            TopologyMutation.edge_remove(0.0, 1, 3).apply(graph)  # absent
        with pytest.raises(GraphError):
            TopologyMutation.node_join(0.0, 4, (1,)).apply(graph)  # attached
        isolated = TopologyMutation.node_leave(0.0, 4).apply(graph)
        with pytest.raises(GraphError):
            TopologyMutation.node_leave(0.0, 4).apply(isolated)  # isolated


class TestChurnSchedule:
    def test_orders_merges_and_shifts(self):
        early = TopologyMutation.edge_add(1.0, 1, 3)
        late = TopologyMutation.edge_remove(9.0, 1, 2)
        schedule = ChurnSchedule([late, early])
        assert [m.time for m in schedule] == [1.0, 9.0]
        assert len(schedule) == 2 and bool(schedule)
        assert schedule.horizon == 9.0
        merged = schedule + ChurnSchedule([TopologyMutation.edge_add(4.0, 2, 4)])
        assert [m.time for m in merged] == [1.0, 4.0, 9.0]
        shifted = schedule.shifted(10.0)
        assert [m.time for m in shifted] == [11.0, 19.0]
        assert not ChurnSchedule() and ChurnSchedule().horizon == 0.0

    def test_validate_is_path_dependent(self):
        graph = cycle_graph(5)
        twice = ChurnSchedule([
            TopologyMutation.edge_remove(1.0, 1, 2),
            TopologyMutation.edge_remove(2.0, 1, 2),
        ])
        with pytest.raises(GraphError, match="t=2.00"):
            twice.validate(graph)
        once = ChurnSchedule([TopologyMutation.edge_remove(1.0, 1, 2)])
        once.validate(graph)  # no raise

    def test_graph_at_applies_mutations_inclusively(self):
        graph = cycle_graph(5)
        schedule = ChurnSchedule([
            TopologyMutation.edge_add(2.0, 1, 3),
            TopologyMutation.edge_add(5.0, 2, 5),
        ])
        assert not schedule.graph_at(graph, 1.9).has_edge(1, 3)
        at_boundary = schedule.graph_at(graph, 2.0)
        assert at_boundary.has_edge(1, 3) and not at_boundary.has_edge(2, 5)
        final = schedule.final_graph(graph)
        assert final.has_edge(1, 3) and final.has_edge(2, 5)


class TestRandomChurn:
    def test_deterministic_and_valid(self):
        graph = gnp_random_graph(20, seed=7)
        one = random_churn(graph, 8, horizon=50.0, seed=3)
        two = random_churn(graph, 8, horizon=50.0, seed=3)
        assert one.mutations == two.mutations
        assert len(one) > 0
        one.validate(graph)
        assert all(0.0 <= m.time < 50.0 for m in one)

    def test_keep_connected_preserves_live_connectivity(self):
        graph = gnp_random_graph(16, seed=9)
        kinds = (
            TopologyMutationKind.EDGE_ADD,
            TopologyMutationKind.EDGE_REMOVE,
            TopologyMutationKind.NODE_LEAVE,
            TopologyMutationKind.NODE_JOIN,
        )
        schedule = random_churn(graph, 12, horizon=30.0, seed=5, kinds=kinds)
        current = graph
        for mutation in schedule:
            current = mutation.apply(current)
            live = [u for u in current.nodes if current.degree(u) > 0]
            dist = get_context(current).distances()
            for v in live[1:]:
                assert dist[live[0] - 1, v - 1] < current.n  # reachable

    def test_best_effort_when_no_move_exists(self):
        # A complete graph cannot gain an edge: every slot is skipped.
        schedule = random_churn(
            complete_graph(5), 4, seed=1,
            kinds=(TopologyMutationKind.EDGE_ADD,),
        )
        assert len(schedule) == 0

    def test_input_validation(self):
        graph = cycle_graph(5)
        with pytest.raises(GraphError):
            random_churn(graph, -1)
        with pytest.raises(GraphError):
            random_churn(graph, 2, horizon=0.0)
        with pytest.raises(GraphError):
            random_churn(graph, 2, kinds=())
        with pytest.raises(GraphError):
            random_churn(graph, 2, max_attachments=0)


class TestRepairPlanning:
    def test_dirty_closure_on_a_star_chord(self):
        # Adding a chord between two leaves changes exactly their rows;
        # the closure adds the centre (their common neighbour).
        old = star_graph(8)
        new = old.with_edge(3, 5)
        assert dirty_nodes(old, new) == frozenset({1, 3, 5})

    def test_dirty_nodes_rejects_node_count_change(self):
        with pytest.raises(GraphError):
            dirty_nodes(star_graph(5), star_graph(6))

    def test_plan_reuses_clean_tables_bit_identically(self, registry):
        old_graph = star_graph(8)
        scheme = build_scheme("full-table", old_graph, IA_ALPHA)
        new_graph = old_graph.with_edge(3, 5)
        plan = plan_repair(scheme, new_graph)
        assert plan.dirty == frozenset({1, 3, 5})
        assert plan.clean == frozenset({2, 4, 6, 7, 8})
        # The carried-forward encodings equal a from-scratch build's.
        fresh = build_scheme("full-table", new_graph, IA_ALPHA)
        for node in plan.clean:
            adopted = plan.new_scheme.ctx.pristine_bits(
                plan.new_scheme, node
            )
            assert adopted == fresh.encode_function(node)
        # Accounting: dirty + clean bits cover the whole new scheme.
        total = sum(
            len(fresh.encode_function(u)) for u in new_graph.nodes
        )
        assert plan.bits_total == total
        assert plan.bits_rewritten == sum(b for _, b in plan.table_bits)
        assert [u for u, _ in plan.table_bits] == sorted(plan.dirty)
        assert "3/8 tables dirty" in plan.describe()
        assert registry.counter(
            "repro_churn_tables_reused_total"
        ).value == 5

    def test_full_flag_forces_rebuild_everything(self, registry):
        old_graph = star_graph(8)
        scheme = build_scheme("full-table", old_graph, IA_ALPHA)
        plan = plan_repair(scheme, old_graph.with_edge(3, 5), full=True)
        assert plan.dirty == frozenset(old_graph.nodes)
        assert not plan.clean and plan.bits_reused == 0

    def test_extra_dirty_nodes_are_forced_into_the_plan(self):
        old_graph = star_graph(8)
        scheme = build_scheme("full-table", old_graph, IA_ALPHA)
        plan = plan_repair(
            scheme, old_graph.with_edge(3, 5), extra_dirty=(7,)
        )
        assert 7 in plan.dirty and 7 not in plan.clean

    def test_global_scheme_falls_back_to_full_rebuild(self):
        graph = cycle_graph(8)
        interval = build_scheme(
            "interval", graph, RoutingModel(Knowledge.II, Labeling.BETA)
        )
        assert not interval.supports_incremental_repair()
        # Removing one cycle edge leaves a connected path.
        plan = plan_repair(interval, graph.without_edge(1, 2))
        assert plan.dirty == frozenset(graph.nodes)
        assert not plan.clean

    def test_repaired_scheme_routes_the_new_topology(self):
        graph = gnp_random_graph(16, seed=11)
        scheme = build_scheme("full-table", graph, IA_ALPHA)
        schedule = random_churn(graph, 5, horizon=10.0, seed=2)
        plan = plan_repair(scheme, schedule.final_graph(graph))
        assert verify_scheme(plan.new_scheme, sample_pairs=60, seed=1).ok()


class TestSelectiveInvalidation:
    def test_node_scoped_drop_spares_whole_graph_derivations(self, registry):
        graph = star_graph(6)
        ctx = get_context(graph)
        ctx.invalidate()  # clean slate (contexts are process-shared)
        ctx.distances()
        ctx.bfs_tree(2)
        ctx.bfs_tree(3)
        dropped = ctx.invalidate(nodes=[2])
        assert dropped == 1
        assert ctx.has_cached_distances
        assert ("bfs_tree", 2) not in ctx._cache
        assert ("bfs_tree", 3) in ctx._cache
        # Selective drops label the invalidation counter by kind.
        assert registry.counter(
            "repro_graph_ctx_invalidations_total", kind="bfs_tree"
        ).value == 1

    def test_kind_scoped_and_full_flush(self, registry):
        graph = star_graph(7)
        ctx = get_context(graph)
        ctx.invalidate()
        ctx.distances()
        ctx.bfs_tree(4)
        assert ctx.invalidate(kinds=["distances"]) == 1
        assert not ctx.has_cached_distances
        before = registry.counter(
            "repro_graph_ctx_invalidations_total"
        ).value
        assert ctx.invalidate() == 1  # the bfs tree
        assert registry.counter(
            "repro_graph_ctx_invalidations_total"
        ).value == before + 1


def _edge_churn_engine(graph, schedule, messages=40, **kwargs):
    scheme = build_scheme("full-table", graph, IA_ALPHA)
    sim = EventDrivenSimulator(
        scheme,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=1.0),
        retry_seed=3,
        churn_schedule=schedule,
        **kwargs,
    )
    for index, (source, destination) in enumerate(
        uniform_pairs(graph, messages, seed=4)
    ):
        sim.inject(source, destination, 0.5 * index)
    return sim


class TestEngineChurn:
    def test_converges_and_delivers_under_edge_churn(self, registry):
        graph = gnp_random_graph(16, seed=21)
        schedule = random_churn(graph, 4, horizon=15.0, seed=6)
        tracer = RecordingTracer()
        sim = _edge_churn_engine(
            graph, schedule, churn_repair_delay=3.0, tracer=tracer
        )
        records = sim.run()
        metrics = summarize(records, sim.network.live_graph)
        assert metrics.delivered_fraction == 1.0
        summary = sim.churn_summary()
        assert summary["converged"]
        assert summary["mutations"] == len(schedule)
        assert 1 <= summary["repairs"] <= summary["mutations"]
        assert summary["bits_rewritten"] + summary["bits_reused"] == (
            summary["bits_full"]
        )
        assert summary["tables_reused"] > 0  # incremental by default
        names = [event.event for event in tracer.events]
        assert names.count("mutate") == len(schedule)
        assert "repair" in names and "converged" in names
        counted = sum(
            registry.counter(
                "repro_topology_mutations_total", kind=kind.name
            ).value
            for kind in TopologyMutationKind
        )
        assert counted == len(schedule)
        assert registry.counter(
            "repro_churn_repairs_total"
        ).value == summary["repairs"]

    def test_stale_deliveries_are_counted_during_the_repair_window(self):
        graph = gnp_random_graph(16, seed=21)
        schedule = random_churn(graph, 4, horizon=15.0, seed=6)
        sim = _edge_churn_engine(graph, schedule, churn_repair_delay=3.0)
        metrics = summarize(sim.run(), sim.network.live_graph)
        assert metrics.stale_deliveries > 0
        assert metrics.to_dict()["stale_deliveries"] == (
            metrics.stale_deliveries
        )

    def test_staggered_installs_delay_convergence(self):
        graph = gnp_random_graph(16, seed=21)
        schedule = ChurnSchedule(
            random_churn(graph, 1, horizon=5.0, seed=6).mutations
        )
        assert len(schedule) == 1
        instant = _edge_churn_engine(
            graph, schedule, churn_repair_delay=2.0
        )
        instant.run()
        fast = instant.churn_summary()["convergence_times"]
        slow_sim = _edge_churn_engine(
            graph, schedule, churn_repair_delay=2.0, churn_repair_rate=200.0
        )
        slow_sim.run()
        slow = slow_sim.churn_summary()["convergence_times"]
        assert slow_sim.churn_summary()["converged"]
        assert len(fast) == len(slow) == 1
        assert slow[0] > fast[0]

    def test_node_leave_and_rejoin_round_trip(self):
        graph = gnp_random_graph(16, seed=13)
        node = max(graph.nodes, key=graph.degree)
        neighbors = sorted(graph.neighbor_set(node))[:2]
        schedule = ChurnSchedule([
            TopologyMutation.node_leave(2.0, node),
            TopologyMutation.node_join(10.0, node, neighbors),
        ])
        scheme = build_scheme("full-table", graph, IA_ALPHA)
        sim = EventDrivenSimulator(
            scheme,
            churn_schedule=schedule,
            churn_repair_delay=2.0,
        )
        # To the left node while it is gone, and again after it rejoined.
        other = next(u for u in graph.nodes if u != node)
        sim.inject(other, node, 5.0)
        sim.inject(other, node, 30.0)
        records = sorted(sim.run(), key=lambda r: r.injected_at)
        # While the node is gone it is unreachable: either the stale
        # table still points at it (endpoint down) or the repaired table
        # has no entry for the isolated label (no route).
        assert not records[0].delivered
        assert records[0].drop_reason in (
            DropReason.ENDPOINT_DOWN, DropReason.NO_ROUTE
        )
        assert records[1].delivered
        summary = sim.churn_summary()
        assert summary["converged"] and summary["mutations"] == 2

    def test_burst_of_mutations_coalesces_into_fewer_repairs(self):
        graph = gnp_random_graph(16, seed=17)
        base = random_churn(graph, 5, horizon=2.0, seed=8)
        assert len(base) >= 3
        sim = _edge_churn_engine(graph, base, churn_repair_delay=5.0)
        sim.run()
        summary = sim.churn_summary()
        assert summary["converged"]
        # All mutations land inside one repair-delay window.
        assert summary["repairs"] == 1

    def test_constructor_validation(self):
        graph = gnp_random_graph(8, seed=1)
        scheme = build_scheme("full-table", graph, IA_ALPHA)
        schedule = random_churn(graph, 1, seed=1)
        with pytest.raises(RoutingError):
            EventDrivenSimulator(
                scheme, churn_schedule=schedule, churn_repair_delay=0.0
            )
        with pytest.raises(RoutingError):
            EventDrivenSimulator(
                scheme, churn_schedule=schedule, churn_repair_rate=-1.0
            )

    def test_relabeling_schemes_are_rejected_under_churn(self):
        graph = gnp_random_graph(8, seed=1)
        scheme = build_scheme("full-table", graph, IA_ALPHA)
        schedule = random_churn(graph, 1, seed=1)

        class _Relabeled:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def address_of(self, node):
                return ("lbl", node)

        with pytest.raises(RoutingError):
            EventDrivenSimulator(
                _Relabeled(scheme), churn_schedule=schedule
            )


class TestChurnCli:
    def test_simulate_churn_json_reports_convergence(self, capsys):
        from repro.cli import main

        code = main([
            "simulate-churn", "full-table", "16",
            "--events", "3", "--messages", "30", "--seed", "5",
            "--retries", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        churn = payload["churn"]
        assert churn["scheduled"] >= churn["mutations"] >= 1
        assert churn["converged"] is True
        assert churn["incremental"] is True
        assert churn["bits_rewritten"] <= churn["bits_full"]
        assert payload["messages"] == 30

    def test_simulate_churn_text_mentions_repair_mode(self, capsys):
        from repro.cli import main

        code = main([
            "simulate-churn", "full-table", "16",
            "--events", "2", "--messages", "20", "--seed", "5",
            "--full-rebuild",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "full-rebuild repair" in out
        assert "converged: yes" in out
