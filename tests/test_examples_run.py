"""Smoke tests: every example script must run to completion.

Examples are documentation; a broken example is a broken promise.  Each is
run in-process (cheaper than a subprocess) with small parameters.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contents(self):
        names = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "space_stretch_tradeoff",
            "overlay_failover",
            "adversarial_networks",
            "incompressibility_tour",
            "mesh_interconnect",
        } <= names

    def test_quickstart(self, capsys):
        _load("quickstart").main(n=48, seed=3)
        out = capsys.readouterr().out
        assert "space saved" in out

    def test_space_stretch_tradeoff(self, capsys):
        _load("space_stretch_tradeoff").main(n=48, seed=3)
        out = capsys.readouterr().out
        assert "thm5-probe" in out

    def test_overlay_failover(self, capsys):
        _load("overlay_failover").main(n=40, seed=3)
        out = capsys.readouterr().out
        assert "Event-driven burst" in out

    def test_adversarial_networks(self, capsys):
        _load("adversarial_networks").main(k=8)
        out = capsys.readouterr().out
        assert "recovered" in out or "read back" in out

    def test_incompressibility_tour(self, capsys):
        _load("incompressibility_tour").main(n=40)
        out = capsys.readouterr().out
        assert "refuses" in out

    def test_mesh_interconnect(self, capsys):
        _load("mesh_interconnect").main(rows=4, cols=5)
        out = capsys.readouterr().out
        assert "torus" in out
