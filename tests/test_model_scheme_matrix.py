"""The full scheme × model compatibility matrix.

The paper's Table 1 is indexed by the nine models; this test pins down, for
every registered scheme and every model, whether construction succeeds —
so a change that silently relaxes or tightens a model restriction fails
loudly here.
"""

from __future__ import annotations

import pytest

from repro.core import build_scheme
from repro.errors import ModelError, SchemeBuildError
from repro.graphs import gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel, all_models

# One dense certified graph all diameter-2 builders accept.
GRAPH = gnp_random_graph(32, seed=101)
CHAIN = path_graph(12)

# scheme → set of (knowledge, labeling) pairs that must build.
EXPECTED = {
    "full-table": {
        (k, l) for k in Knowledge for l in Labeling
    },
    "full-information": {
        (k, l) for k in Knowledge for l in Labeling
    },
    "multi-interval": {
        (k, l) for k in Knowledge for l in Labeling
    },
    "thm1-two-level": {
        (k, l)
        for k in (Knowledge.IB, Knowledge.II)
        for l in Labeling
    },
    "thm5-probe": {
        (Knowledge.II, l) for l in Labeling
    },
    "thm3-centers": {
        (Knowledge.II, l) for l in Labeling
    },
    "thm4-hub": {
        (Knowledge.II, l) for l in Labeling
    },
    "thm2-neighbor-labels": {
        (Knowledge.II, Labeling.GAMMA),
    },
    "interval": {
        (k, l)
        for k in Knowledge
        for l in (Labeling.BETA, Labeling.GAMMA)
    },
    "tree-cover": {
        (k, Labeling.GAMMA) for k in Knowledge
    },
}


@pytest.mark.parametrize("scheme_name", sorted(EXPECTED))
def test_scheme_model_matrix(scheme_name):
    expected = EXPECTED[scheme_name]
    for model in all_models():
        key = (model.knowledge, model.labeling)
        graph = CHAIN if scheme_name == "chain-comparison" else GRAPH
        if key in expected:
            scheme = build_scheme(scheme_name, graph, model)
            assert scheme.model is model
        else:
            with pytest.raises((SchemeBuildError, ModelError)):
                build_scheme(scheme_name, graph, model)


def test_chain_scheme_matrix():
    expected = {
        (k, l)
        for k in Knowledge
        for l in (Labeling.BETA, Labeling.GAMMA)
    }
    for model in all_models():
        key = (model.knowledge, model.labeling)
        if key in expected:
            build_scheme("chain-comparison", CHAIN, model)
        else:
            with pytest.raises((SchemeBuildError, ModelError)):
                build_scheme("chain-comparison", CHAIN, model)


def test_matrix_covers_all_registered_schemes():
    from repro.core import available_schemes

    assert set(EXPECTED) | {"chain-comparison"} == set(available_schemes())
