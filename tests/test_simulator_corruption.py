"""Table-corruption fault axis: mutations, schedules, detection, healing."""

from __future__ import annotations

import pytest

from repro.bitio import BitArray
from repro.core import build_scheme
from repro.errors import GraphError, RoutingError
from repro.graphs import cycle_graph, gnp_random_graph, path_graph
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    MetricsRegistry,
    RecordingTracer,
    format_trace_report,
    set_registry,
    summarize_trace,
)
from repro.simulator import (
    DropReason,
    EventDrivenSimulator,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    MutationKind,
    Network,
    RetryPolicy,
    TableMutation,
    table_corruption,
)

IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestTableMutation:
    def test_bit_flip_applies_offsets_modulo_length(self):
        bits = BitArray([0] * 8)
        mutated = TableMutation(
            MutationKind.BIT_FLIP, offsets=(2, 10)
        ).apply(bits)
        # 10 % 8 == 2: both offsets collapse onto one flipped position.
        assert mutated == BitArray([0, 0, 1, 0, 0, 0, 0, 0])

    def test_burst_flips_contiguous_span_clipped_at_end(self):
        bits = BitArray([0] * 10)
        mutated = TableMutation(
            MutationKind.BURST, offsets=(7,), span=5
        ).apply(bits)
        assert list(mutated) == [0] * 7 + [1, 1, 1]

    def test_truncate_drops_trailing_bits_and_floors_at_zero(self):
        bits = BitArray([1] * 6)
        assert len(TableMutation(
            MutationKind.TRUNCATE, span=4
        ).apply(bits)) == 2
        assert len(TableMutation(
            MutationKind.TRUNCATE, span=99
        ).apply(bits)) == 0

    def test_empty_table_passes_through(self):
        empty = BitArray()
        assert TableMutation(MutationKind.BIT_FLIP).apply(empty) == empty

    def test_validation(self):
        with pytest.raises(GraphError):
            TableMutation(MutationKind.BIT_FLIP, offsets=())
        with pytest.raises(GraphError):
            TableMutation(MutationKind.BIT_FLIP, offsets=(-1,))
        with pytest.raises(GraphError):
            TableMutation(MutationKind.BURST, span=0)

    def test_describe_names_the_damage(self):
        assert "flip 2 bits" in TableMutation(
            MutationKind.BIT_FLIP, offsets=(1, 5)
        ).describe()
        assert "burst-flip 8 bits" in TableMutation(
            MutationKind.BURST, span=8
        ).describe()
        assert "truncate 4 trailing bits" in TableMutation(
            MutationKind.TRUNCATE, span=4
        ).describe()


class TestCorruptionFaultEvents:
    def test_table_corrupt_requires_a_mutation(self):
        with pytest.raises(GraphError, match="needs a TableMutation"):
            FaultEvent(1.0, FaultKind.TABLE_CORRUPT, (3,))

    def test_only_table_corrupt_may_carry_a_mutation(self):
        mutation = TableMutation(MutationKind.BIT_FLIP)
        with pytest.raises(GraphError, match="cannot carry a mutation"):
            FaultEvent(1.0, FaultKind.NODE_DOWN, (3,), mutation)
        with pytest.raises(GraphError, match="cannot carry a mutation"):
            FaultEvent(1.0, FaultKind.TABLE_REPAIR, (3,), mutation)

    def test_constructors_and_node_property(self):
        mutation = TableMutation(MutationKind.TRUNCATE, span=2)
        corrupt = FaultEvent.table_corrupt(2.0, 7, mutation)
        repair = FaultEvent.table_repair(5.0, 7)
        assert corrupt.node == 7 and repair.node == 7
        assert corrupt.link is None
        assert corrupt.mutation is mutation and repair.mutation is None

    def test_shifted_schedule_preserves_mutations(self):
        mutation = TableMutation(MutationKind.BIT_FLIP, offsets=(9,))
        schedule = FaultSchedule(
            [FaultEvent.table_corrupt(1.0, 4, mutation)]
        ).shifted(2.5)
        event = schedule.events[0]
        assert event.time == 3.5
        assert event.mutation is mutation

    def test_corrupted_at_replays_table_events_only(self):
        mutation = TableMutation(MutationKind.BIT_FLIP)
        schedule = FaultSchedule(
            [
                FaultEvent.table_corrupt(1.0, 4, mutation),
                FaultEvent.table_repair(5.0, 4),
                FaultEvent.node_down(0.5, 9),
            ]
        )
        assert schedule.corrupted_at(0.5) == set()
        assert schedule.corrupted_at(3.0) == {4}
        assert schedule.corrupted_at(5.0) == set()
        links, nodes = schedule.state_at(3.0)
        assert nodes == {9} and not links

    def test_validate_rejects_out_of_range_table_events(self):
        graph = path_graph(4)
        schedule = FaultSchedule(
            [FaultEvent.table_repair(1.0, 9)]
        )
        with pytest.raises(GraphError, match="node 9"):
            schedule.validate(graph)


class TestTableCorruptionGenerator:
    def test_deterministic_and_distinct_nodes(self):
        graph = gnp_random_graph(16, seed=3)
        first = table_corruption(graph, 6, horizon=40.0, seed=9)
        second = table_corruption(graph, 6, horizon=40.0, seed=9)
        assert first.events == second.events
        nodes = [event.node for event in first]
        assert len(set(nodes)) == 6
        assert all(0.0 <= event.time < 40.0 for event in first)
        assert all(
            event.kind is FaultKind.TABLE_CORRUPT for event in first
        )
        first.validate(graph)

    def test_blind_repair_delay_pairs_every_corruption(self):
        graph = gnp_random_graph(12, seed=3)
        schedule = table_corruption(
            graph, 5, horizon=30.0, seed=2, repair_delay=4.0
        )
        corrupts = [
            e for e in schedule if e.kind is FaultKind.TABLE_CORRUPT
        ]
        repairs = {
            e.node: e.time
            for e in schedule
            if e.kind is FaultKind.TABLE_REPAIR
        }
        assert len(corrupts) == 5 and len(repairs) == 5
        for event in corrupts:
            assert repairs[event.node] == pytest.approx(event.time + 4.0)

    def test_mutation_kinds_are_honoured(self):
        graph = gnp_random_graph(12, seed=3)
        schedule = table_corruption(
            graph, 8, seed=1,
            kinds=(MutationKind.TRUNCATE,), truncate_bits=3,
        )
        for event in schedule:
            assert event.mutation.kind is MutationKind.TRUNCATE
            assert event.mutation.span == 3

    def test_generator_validation(self):
        graph = path_graph(4)
        with pytest.raises(GraphError):
            table_corruption(graph, 5)
        with pytest.raises(GraphError):
            table_corruption(graph, 1, horizon=0.0)
        with pytest.raises(GraphError):
            table_corruption(graph, 1, kinds=())
        with pytest.raises(GraphError):
            table_corruption(graph, 1, flips=0)
        with pytest.raises(GraphError):
            table_corruption(graph, 1, repair_delay=-1.0)


def _framed_path_scheme(n=5):
    graph = path_graph(n)
    return IntegrityWrapper(
        build_scheme("full-table", graph, IA_ALPHA), FramingPolicy.CRC8
    )


_FLIP = TableMutation(MutationKind.BIT_FLIP, offsets=(0,))


class TestNetworkCorruption:
    def test_corrupt_detect_quarantine_lifecycle(self, registry):
        network = Network(_framed_path_scheme())
        network.corrupt_table(3, _FLIP)
        assert network.corrupted_nodes == {3}
        assert network.quarantined_nodes == set()
        assert network.corruption_summary()["injected"] == 1

        # First traversal through node 3 hits the bad checksum: the walk
        # drops with TABLE_CORRUPT and the node is quarantined.
        record = network.route(1, 5)
        assert not record.delivered
        assert record.drop_reason is DropReason.TABLE_CORRUPT
        assert network.quarantined_nodes == {3}
        summary = network.corruption_summary()
        assert summary["detected"] == 1 and summary["healed"] == 0

    def test_quarantined_node_still_receives_as_destination(self):
        network = Network(_framed_path_scheme())
        network.corrupt_table(3, _FLIP)
        assert not network.route(1, 5).delivered  # trigger quarantine
        assert network.route(2, 3).delivered
        # ... but cannot forward, and is refused as a next hop.
        record = network.route(2, 4)
        assert not record.delivered
        assert record.drop_reason is DropReason.TABLE_CORRUPT

    def test_heal_restores_delivery(self):
        network = Network(_framed_path_scheme())
        network.corrupt_table(3, _FLIP)
        assert not network.route(1, 5).delivered
        assert network.heal_table(3)
        assert network.corrupted_nodes == set()
        assert network.quarantined_nodes == set()
        assert network.corruption_summary()["healed"] == 1
        assert network.route(1, 5).delivered
        # Healing an intact table is a no-op.
        assert not network.heal_table(3)

    def test_full_information_routes_around_quarantine(self):
        # On a 4-cycle, 1 -> 3 has two equal shortest paths (via 2 or 4);
        # full-information stores both edges, so quarantining 2 leaves a
        # usable alternative.
        graph = cycle_graph(4)
        scheme = IntegrityWrapper(
            build_scheme("full-information", graph, IA_ALPHA),
            FramingPolicy.CRC8,
        )
        network = Network(scheme)
        network.corrupt_table(2, _FLIP)
        assert not network.route(2, 4).delivered  # decode at 2 detects
        assert network.quarantined_nodes == {2}
        record = network.route(1, 3)
        assert record.delivered
        assert record.path == (1, 4, 3)

    def test_unframed_corruption_installs_silently(self):
        graph = path_graph(5)
        network = Network(build_scheme("full-table", graph, IA_ALPHA))
        # Without framing, a single flipped bit still decodes to *some*
        # function: the mutation installs undetected.
        network.corrupt_table(3, _FLIP)
        network.route(1, 5)
        summary = network.corruption_summary()
        assert summary["undetected"] == 1
        assert summary["detected"] == 0
        assert network.quarantined_nodes == set()

    def test_apply_fault_dispatches_table_events(self):
        network = Network(_framed_path_scheme())
        network.apply_fault(FaultEvent.table_corrupt(1.0, 2, _FLIP))
        assert network.corrupted_nodes == {2}
        network.apply_fault(FaultEvent.table_repair(2.0, 2))
        assert network.corrupted_nodes == set()


class TestEngineSelfHealing:
    def test_repair_delay_must_be_positive(self):
        scheme = _framed_path_scheme()
        with pytest.raises(RoutingError):
            EventDrivenSimulator(scheme, repair_delay=0.0)
        with pytest.raises(RoutingError):
            EventDrivenSimulator(scheme, repair_delay=-3.0)

    def _run(self, registry, tracer=None):
        scheme = _framed_path_scheme()
        schedule = FaultSchedule(
            [FaultEvent.table_corrupt(0.25, 3, _FLIP)]
        )
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(
                max_attempts=6, base_delay=1.0, jitter=0.0
            ),
            repair_delay=2.0,
            tracer=tracer,
        )
        sim.inject(1, 5, at_time=0.5)
        sim.inject(5, 1, at_time=0.75)
        return sim, sim.run()

    def test_detection_triggers_heal_and_retries_recover(self, registry):
        sim, records = self._run(registry)
        assert len(records) == 2
        assert all(record.delivered for record in records)
        assert all(record.retries >= 1 for record in records)
        summary = sim.network.corruption_summary()
        assert summary["injected"] == 1
        assert summary["detected"] == 1
        assert summary["healed"] == 1
        histogram = registry.histogram(
            "repro_corruption_detection_latency"
        )
        assert histogram.count == 1
        # Corrupted at 0.25, first decode attempt when the 0.5 message
        # reaches node 3 — latency is positive and under the horizon.
        assert 0.0 < histogram.mean < 10.0

    def test_lifecycle_spans_and_trace_report(self, registry):
        tracer = RecordingTracer()
        self._run(registry, tracer=tracer)
        kinds = [event.event for event in tracer.events]
        assert kinds.count("corrupt") == 1
        assert kinds.count("quarantine") == 1
        assert kinds.count("heal") == 1
        assert kinds.index("corrupt") < kinds.index("quarantine")
        assert kinds.index("quarantine") < kinds.index("heal")
        summary = summarize_trace(tracer.events)
        assert summary.corruptions == 1
        assert summary.quarantines == 1
        assert summary.heals == 1
        assert summary.span_violations == 0
        assert summary.delivered == 2
        report = format_trace_report(summary)
        assert "table corruption: 1 corrupted, 1 quarantined, 1 healed" in (
            report
        )

    def test_without_repair_delay_quarantine_persists(self, registry):
        scheme = _framed_path_scheme()
        schedule = FaultSchedule(
            [FaultEvent.table_corrupt(0.25, 3, _FLIP)]
        )
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=1.0, jitter=0.0
            ),
        )
        sim.inject(1, 5, at_time=0.5)
        records = sim.run()
        assert len(records) == 1
        assert not records[0].delivered
        assert records[0].drop_reason is DropReason.TABLE_CORRUPT
        summary = sim.network.corruption_summary()
        assert summary["healed"] == 0
        assert 3 in sim.network.quarantined_nodes
