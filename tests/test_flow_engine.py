"""Unit tests for the cross-module dataflow engine (`repro.analysis.flow`).

Each layer is exercised against tiny synthetic projects built from
in-memory source: symbol tables and import resolution, call-graph
construction, intraprocedural provenance, and the interprocedural
summaries (seed sinks, effects, exception escapes, bit purity).
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.flow import (
    EffectSummary,
    FlowAnalysis,
    ProjectIndex,
    analyse_project,
    build_module_info,
    build_project,
)
from repro.analysis.flow.dataflow import (
    AMBIENT,
    CONST,
    OPAQUE,
    PARAM,
    Env,
    ambient_source,
    evaluate,
    walk_function,
)


def make_project(modules) -> ProjectIndex:
    """Index a {module_name: source} mapping into a ProjectIndex."""
    return build_project(
        (
            name,
            name.replace(".", "/") + ".py",
            ast.parse(textwrap.dedent(source)),
        )
        for name, source in modules.items()
    )


def module_info(name, source):
    return build_module_info(
        name, name.replace(".", "/") + ".py",
        ast.parse(textwrap.dedent(source)),
    )


# -- symbols ------------------------------------------------------------------


def test_module_info_collects_functions_classes_imports_constants():
    info = module_info(
        "pkg.mod",
        """
        import numpy as np
        from repro.bitio import BitWriter

        LIMIT = 8
        mutable = []

        def helper(x, y=1):
            return x + y

        class Box:
            def get(self):
                return LIMIT
        """,
    )
    assert info.imports["np"] == "numpy"
    assert info.imports["BitWriter"] == "repro.bitio.BitWriter"
    assert info.functions["helper"].qualname == "pkg.mod.helper"
    assert "Box" in info.classes
    assert "get" in info.classes["Box"].methods
    assert "LIMIT" in info.constants
    assert "mutable" not in info.constants  # not a literal
    assert {"LIMIT", "mutable"} <= info.globals


def test_function_info_params_exclude_self_and_bind_args():
    info = module_info(
        "m",
        """
        class C:
            def f(self, a, b, *, c=0):
                return a
        """,
    )
    f = info.classes["C"].methods["f"]
    assert f.params == ("a", "b")
    assert f.kwonly == ("c",)
    assert f.has_self

    call = ast.parse("obj.f(1, b=2, c=3)", mode="eval").body
    bound = f.bind_args(call)
    assert set(bound) == {"a", "b", "c"}
    assert isinstance(bound["a"], ast.Constant) and bound["a"].value == 1

    # Class.method(obj, ...) style: the explicit receiver is skipped.
    explicit = ast.parse("C.f(obj, 1, 2)", mode="eval").body
    bound = f.bind_args(explicit, skip_first=True)
    assert bound["a"].value == 1 and bound["b"].value == 2


def test_project_resolve_follows_reexport_chain():
    project = make_project(
        {
            "pkg": "from pkg.impl import thing\n",
            "pkg.impl": "def thing():\n    return 1\n",
            "user": "from pkg import thing\nresult = thing()\n",
        }
    )
    assert project.resolve("user", "thing") == "pkg.impl.thing"
    assert project.resolve_export("pkg", "thing") == "pkg.impl.thing"


def test_resolve_method_walks_project_visible_bases():
    project = make_project(
        {
            "m": """
            class Base:
                def size(self):
                    return 0

            class Derived(Base):
                def extra(self):
                    return 1
            """,
        }
    )
    found = project.resolve_method("m.Derived", "size")
    assert found is not None and found.qualname == "m.Base.size"
    assert project.resolve_method("m.Derived", "missing") is None
    assert "Base" in project.class_ancestry("m.Derived")


# -- call graph ---------------------------------------------------------------


def test_callgraph_resolves_cross_module_and_self_calls():
    project = make_project(
        {
            "lib": """
            def leaf():
                return 1

            class Widget:
                def __init__(self):
                    self.n = 0

                def spin(self):
                    return self.step()

                def step(self):
                    return leaf()
            """,
            "app": """
            from lib import Widget, leaf

            def main():
                w = Widget()
                return w.spin() + leaf()
            """,
        }
    )
    analysis = FlowAnalysis(project)
    graph = analysis.graph

    main_callees = set(graph.callees("app.main"))
    # Constructor call resolves to __init__; unique-method fallback or
    # self-dispatch resolves w.spin().
    assert "lib.Widget.__init__" in main_callees
    assert "lib.leaf" in main_callees
    assert "lib.Widget.spin" in main_callees

    spin_callees = set(graph.callees("lib.Widget.spin"))
    assert "lib.Widget.step" in spin_callees

    callers = {site.caller for site in graph.callers_of("lib.leaf")}
    assert callers == {"app.main", "lib.Widget.step"}


def test_callgraph_to_dict_is_json_shaped():
    project = make_project({"m": "def f():\n    return g()\ndef g():\n    return 0\n"})
    payload = FlowAnalysis(project).graph.to_dict()
    assert payload["version"] == 1
    assert "m.f" in payload["functions"]
    assert any(e["caller"] == "m.f" and e["callee"] == "m.g"
               for e in payload["edges"])
    assert payload["resolved_calls"] >= 1
    assert isinstance(payload["unresolved_calls"], int)


def test_module_level_code_gets_pseudo_function():
    project = make_project({"m": "def f():\n    return 0\nx = f()\n"})
    graph = FlowAnalysis(project).graph
    assert "m.f" in set(graph.callees("m.<module>"))


# -- dataflow -----------------------------------------------------------------


def _no_calls(call, env):
    raise AssertionError("unexpected call expression")


def test_evaluate_constant_param_and_opaque_atoms():
    env = Env()
    params = frozenset({"seed"})
    consts = frozenset({"LIMIT"})
    expr = lambda s: ast.parse(s, mode="eval").body
    assert evaluate(expr("42"), env, params, consts, _no_calls) == frozenset(
        {(CONST, "")}
    )
    assert evaluate(expr("seed"), env, params, consts, _no_calls) == frozenset(
        {(PARAM, "seed")}
    )
    assert evaluate(expr("LIMIT"), env, params, consts, _no_calls) == frozenset(
        {(CONST, "")}
    )
    assert evaluate(expr("mystery"), env, params, consts, _no_calls) == frozenset(
        {(OPAQUE, "mystery")}
    )
    # Attribute access projects onto the base value.
    assert evaluate(expr("seed.value"), env, params, consts, _no_calls) == frozenset(
        {(PARAM, "seed")}
    )
    # Binary expressions union their operands.
    assert evaluate(
        expr("seed + 1"), env, params, consts, _no_calls
    ) == frozenset({(PARAM, "seed"), (CONST, "")})


def test_walk_function_merges_branches_and_tracks_assignments():
    body = ast.parse(
        textwrap.dedent(
            """
            x = seed
            if flag:
                x = 1
            y = x
            """
        )
    ).body
    env = walk_function(
        body, Env(), frozenset({"seed", "flag"}), frozenset(), _no_calls
    )
    # After the If, x may be the param or the constant: union of branches.
    assert env.bindings["y"] == frozenset({(PARAM, "seed"), (CONST, "")})


def test_walk_function_loop_body_reaches_fixpoint():
    body = ast.parse(
        textwrap.dedent(
            """
            acc = 0
            for i in items:
                acc = acc + seed
            """
        )
    ).body
    env = walk_function(
        body, Env(), frozenset({"items", "seed"}), frozenset(), _no_calls
    )
    assert (PARAM, "seed") in env.bindings["acc"]
    assert (CONST, "") in env.bindings["acc"]


def test_ambient_source_recognises_entropy_and_clock_calls():
    identity = lambda s: s
    assert ambient_source("time.time", identity) == "time.time"
    assert ambient_source("os.urandom", identity) == "os.urandom"
    assert ambient_source("random.random", identity) == "random.random"
    assert ambient_source("secrets.token_bytes", identity) is not None
    assert ambient_source("np.random.random", identity) is not None
    assert ambient_source("math.sqrt", identity) is None
    # Alias normalisation: _t.time -> time.time via the import map.
    remap = lambda s: s.replace("_t.", "time.", 1)
    assert ambient_source("_t.time", remap) == "time.time"


# -- interprocedural summaries ------------------------------------------------


def test_return_provenance_flows_through_helpers():
    project = make_project(
        {
            "m": """
            def ident(x):
                return x

            def caller(seed):
                return ident(seed)
            """,
        }
    )
    analysis = analyse_project(project)
    assert (PARAM, "seed") in analysis.return_prov["m.caller"]


def test_seed_sink_obligation_propagates_to_callers():
    project = make_project(
        {
            "m": """
            import random

            def make_rng(seed):
                return random.Random(seed)

            def outer(seed):
                return make_rng(seed)
            """,
        }
    )
    analysis = analyse_project(project)
    assert "seed" in analysis.seed_sinks.get("m.make_rng", set())
    # The obligation escalates: outer's seed param feeds an RNG too.
    assert "seed" in analysis.seed_sinks.get("m.outer", set())
    assert analysis.seed_escalations == []


def test_rng_site_records_constructor_and_seed_provenance():
    project = make_project(
        {
            "m": """
            import random

            def fresh(seed):
                return random.Random(seed)
            """,
        }
    )
    analysis = analyse_project(project)
    sites = list(analysis.rng_sites.values())
    assert len(sites) == 1
    assert sites[0].constructor == "random.Random"
    assert (PARAM, "seed") in sites[0].seed_prov


def test_exception_escapes_respect_try_except_filtering():
    project = make_project(
        {
            "repro.fake": """
            class ReproError(Exception):
                pass

            class CodecError(ReproError):
                pass

            class BitstreamError(ReproError):
                pass

            def raises():
                raise BitstreamError("boom")

            def shielded():
                try:
                    return raises()
                except BitstreamError:
                    return None

            def leaky():
                return raises()

            def translated():
                try:
                    return raises()
                except BitstreamError as exc:
                    raise CodecError(str(exc)) from exc
            """,
        }
    )
    analysis = analyse_project(project)
    assert "BitstreamError" in analysis.escapes["repro.fake.raises"]
    assert "BitstreamError" not in analysis.escapes["repro.fake.shielded"]
    assert "BitstreamError" in analysis.escapes["repro.fake.leaky"]
    escapes = analysis.escapes["repro.fake.translated"]
    assert "CodecError" in escapes and "BitstreamError" not in escapes


def test_bit_purity_judges_annotations_and_returns():
    project = make_project(
        {
            "m": """
            def int_bits(n: int) -> int:
                return n + 1

            def float_cost(n: int) -> float:
                return n / 2

            def chained_bits(n):
                return int_bits(n)
            """,
        }
    )
    analysis = analyse_project(project)
    assert analysis.bit_purity("m.int_bits") is True
    assert analysis.bit_purity("m.float_cost") is False
    assert analysis.bit_purity("m.chained_bits") is True


def test_effect_summary_outstanding_until_invalidate():
    project = make_project(
        {
            "repro.other.store": """
            class Store:
                def __init__(self, ctx):
                    self._adj_rows = []
                    self._ctx = ctx

                def dirty(self):
                    self._adj_rows.append(1)

                def clean(self):
                    self._adj_rows.append(1)
                    self._ctx.invalidate()
            """,
        }
    )
    analysis = analyse_project(project)
    dirty = analysis.effects["repro.other.store.Store.dirty"]
    clean = analysis.effects["repro.other.store.Store.clean"]
    assert dirty.outstanding  # mutation with no invalidate
    assert not clean.outstanding  # bare invalidate() flushes everything
    # __init__ stores are construction, not mutation: no summary recorded
    # beyond the all-empty default.
    init = analysis.effects.get(
        "repro.other.store.Store.__init__", EffectSummary()
    )
    assert not init.outstanding
