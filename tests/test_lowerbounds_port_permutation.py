"""Tests for the Theorem 8 port-assignment adversary."""

from __future__ import annotations

import math
import random

import pytest

from repro.bitio import log2_factorial
from repro.core import FullTableScheme
from repro.graphs import PortAssignment, gnp_random_graph
from repro.lowerbounds import (
    decode_port_permutation,
    encode_port_permutation,
    recover_port_permutation,
    run_theorem8_experiment,
)
from repro.models import Knowledge, Labeling, RoutingModel


class TestPermutationCodec:
    def test_round_trip(self, random_graph_32):
        ports = PortAssignment.shuffled(random_graph_32, random.Random(3))
        for u in (1, 16, 32):
            bits = encode_port_permutation(ports, u)
            decoded = decode_port_permutation(bits, random_graph_32.degree(u))
            assert decoded == ports.permutation_at(u)

    def test_identity_encodes_to_rank_zero(self, random_graph_32):
        ports = PortAssignment.identity(random_graph_32)
        bits = encode_port_permutation(ports, 1)
        assert bits.to_int() == 0

    def test_size_is_log_factorial(self, random_graph_32):
        ports = PortAssignment.shuffled(random_graph_32, random.Random(3))
        for u in (2, 20):
            d = random_graph_32.degree(u)
            assert len(encode_port_permutation(ports, u)) == math.ceil(
                log2_factorial(d)
            ) or len(encode_port_permutation(ports, u)) <= log2_factorial(d) + 1


class TestRecovery:
    def test_tables_contain_the_permutation(self, model_ia_alpha):
        """The executable heart of Theorem 8."""
        graph = gnp_random_graph(24, seed=7)
        ports = PortAssignment.shuffled(graph, random.Random(11))
        scheme = FullTableScheme(graph, model_ia_alpha, ports=ports)
        for u in graph.nodes:
            assert recover_port_permutation(scheme, u) == ports.permutation_at(u)


class TestExperiment:
    def test_experiment_totals(self, model_ia_alpha):
        graph = gnp_random_graph(32, seed=9)
        result = run_theorem8_experiment(graph, model_ia_alpha, seed=2)
        assert result.recovered_all
        assert result.n == 32
        assert result.total_permutation_bits >= result.theory_bits
        assert result.total_permutation_bits <= result.theory_bits + 32

    def test_scale_is_n_squared_log_n(self, model_ia_alpha):
        """Ω(n² log n): the bits grow like Σ log d(u)! ≈ (n²/2) log(n/2)."""
        totals = {}
        for n in (32, 64):
            graph = gnp_random_graph(n, seed=n)
            totals[n] = run_theorem8_experiment(
                graph, model_ia_alpha
            ).total_permutation_bits
        # Doubling n should scale by ≈ 4 · log(n)/log(n/2) > 4.
        assert totals[64] > 4.0 * totals[32]

    def test_deterministic_in_seed(self, model_ia_alpha):
        graph = gnp_random_graph(24, seed=5)
        a = run_theorem8_experiment(graph, model_ia_alpha, seed=3)
        b = run_theorem8_experiment(graph, model_ia_alpha, seed=3)
        assert a == b

    def test_ib_escapes_the_bound(self, model_ib_alpha):
        """Under IB the scheme re-assigns ports: the permutation cost vanishes."""
        graph = gnp_random_graph(24, seed=5)
        ports = PortAssignment.shuffled(graph, random.Random(1))
        scheme = FullTableScheme(graph, model_ib_alpha, ports=ports)
        identity = scheme.port_assignment
        assert identity.is_identity()
        assert all(
            encode_port_permutation(identity, u).to_int() == 0
            for u in graph.nodes
        )
