"""Tests for the trace-report summariser, on a golden JSONL fixture and on
live traced chaos runs (the drop-attribution acceptance round trip)."""

from __future__ import annotations

import math
import pathlib

import pytest

from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.core import build_scheme
from repro.observability import (
    RecordingTracer,
    format_trace_report,
    load_events,
    read_trace,
    summarize_trace,
)
from repro.simulator import (
    EventDrivenSimulator,
    RetryPolicy,
    drop_breakdown,
    flapping_links,
    renewal_faults,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_trace.jsonl"


class TestPercentile:
    def test_unsorted_input(self):
        from repro.observability.report import _percentile

        samples = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert _percentile(samples, 50) == 5.0
        assert _percentile(samples, 100) == 9.0
        assert _percentile(samples, 0) == 1.0
        # The helper must not have mutated the caller's list either.
        assert samples == [9.0, 1.0, 5.0, 3.0, 7.0]

    def test_empty_is_nan(self):
        from repro.observability.report import _percentile

        assert math.isnan(_percentile([], 50))


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def summary(self):
        return summarize_trace(read_trace(GOLDEN))

    def test_event_and_message_counts(self, summary):
        assert summary.events == 10
        assert summary.messages == 2
        assert summary.injections == 2
        assert summary.delivered == 1
        assert summary.dropped == 1
        assert summary.retries == 1
        assert summary.faults == 2
        assert summary.hops == 3

    def test_hot_nodes(self, summary):
        assert summary.hot_nodes[0] == (2, 2)
        assert (1, 1) in summary.hot_nodes

    def test_hop_latency_percentiles(self, summary):
        p = summary.hop_latency_percentiles
        assert p["p50"] == pytest.approx(1.0)
        assert p["max"] == pytest.approx(2.0)

    def test_drop_attribution(self, summary):
        # The one drop happened on link 2-4 while its fault window
        # (down at t=0.5, up at t=9.0) was open.
        assert summary.drops_by_reason == {"LINK_DOWN": 1}
        assert summary.drops_attributed == 1
        assert summary.drops_unattributed == 0
        assert summary.drops_by_fault_subject == [("link 2-4", 1)]

    def test_no_span_violations(self, summary):
        assert summary.span_violations == 0

    def test_text_report_mentions_everything(self, summary):
        text = format_trace_report(summary)
        assert "2 messages" in text
        assert "hot nodes" in text
        assert "LINK_DOWN: 1" in text
        assert "link 2-4 (1 drops)" in text
        assert "WARNING" not in text

    def test_json_view_is_round_trippable(self, summary):
        import json

        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["drops_attributed"] == 1
        assert payload["hot_nodes"][0] == [2, 2]


class TestDropAfterFaultWindowCloses:
    def test_unattributed_when_window_closed(self):
        rows = [
            '{"event":"fault","seq":0,"time":0.0,"reason":"link down",'
            '"subject":["link","1","2"]}',
            '{"event":"fault","seq":1,"time":1.0,"reason":"link up",'
            '"subject":["link","1","2"]}',
            '{"event":"inject","seq":2,"time":2.0,"msg_id":0,"source":1,'
            '"destination":2}',
            '{"event":"drop","seq":3,"time":3.0,"msg_id":0,"node":1,'
            '"reason":"HOP_LIMIT"}',
        ]
        summary = summarize_trace(load_events(rows))
        assert summary.drops_attributed == 0
        assert summary.drops_unattributed == 1

    def test_malformed_span_is_counted(self):
        rows = [
            # a hop with no preceding inject for that message
            '{"event":"hop","seq":0,"time":0.0,"msg_id":7,"node":1,'
            '"next_node":2,"hop":0}',
        ]
        summary = summarize_trace(load_events(rows))
        assert summary.span_violations == 1


class TestLiveRoundTrip:
    """Acceptance: every drop in drop_breakdown is attributable to a traced
    drop span carrying a fault subject or DropReason annotation."""

    @pytest.mark.parametrize("schedule_kind", ["flapping", "renewal"])
    def test_all_drops_annotated_and_fault_drops_attributed(
        self, schedule_kind
    ):
        graph = gnp_random_graph(24, seed=1)
        scheme = build_scheme(
            "interval", graph, RoutingModel(Knowledge.II, Labeling.BETA)
        )
        if schedule_kind == "flapping":
            schedule = flapping_links(
                graph, 40, period=8.0, duty=0.6, horizon=60.0, seed=2
            )
        else:
            schedule = renewal_faults(
                graph, horizon=60.0, seed=2, link_count=30,
                link_mtbf=10.0, link_mttr=6.0, node_count=3,
            )
        tracer = RecordingTracer()
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=2),
            tracer=tracer,
        )
        import random

        clock = random.Random(4)
        for _ in range(120):
            s, t = clock.sample(sorted(graph.nodes), 2)
            sim.inject(s, t, clock.uniform(0.0, 45.0))
        records = sim.run()
        breakdown = drop_breakdown(records)
        summary = summarize_trace(tracer.events)
        # one annotated drop span per undelivered record
        assert summary.dropped == sum(breakdown.values())
        assert summary.drops_by_reason == {
            reason.name: count for reason, count in breakdown.items()
        }
        # fault-caused drops land inside traced fault windows
        fault_caused = sum(
            count
            for reason, count in summary.drops_by_reason.items()
            if reason in ("LINK_DOWN", "NODE_DOWN", "ENDPOINT_DOWN")
        )
        assert summary.drops_attributed <= fault_caused
        if fault_caused:
            assert summary.drops_attributed > 0
        assert summary.span_violations == 0
