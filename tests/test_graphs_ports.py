"""Tests for port assignments (the IA/IB substrate)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PortAssignmentError
from repro.graphs import LabeledGraph, PortAssignment, gnp_random_graph, path_graph


class TestValidation:
    def test_rejects_missing_neighbor(self):
        graph = LabeledGraph(3, [(1, 2), (1, 3)])
        with pytest.raises(PortAssignmentError):
            PortAssignment(graph, {1: {2: 1}, 2: {1: 1}, 3: {1: 1}})

    def test_rejects_non_bijection(self):
        graph = LabeledGraph(3, [(1, 2), (1, 3)])
        with pytest.raises(PortAssignmentError):
            PortAssignment(
                graph, {1: {2: 1, 3: 1}, 2: {1: 1}, 3: {1: 1}}
            )

    def test_rejects_port_out_of_range(self):
        graph = LabeledGraph(2, [(1, 2)])
        with pytest.raises(PortAssignmentError):
            PortAssignment(graph, {1: {2: 2}, 2: {1: 1}})

    def test_rejects_stranger(self):
        graph = LabeledGraph(3, [(1, 2)])
        with pytest.raises(PortAssignmentError):
            PortAssignment(graph, {1: {2: 1, 3: 2}, 2: {1: 1}, 3: {}})


class TestIdentity:
    def test_identity_port_order(self):
        graph = LabeledGraph(4, [(2, 1), (2, 3), (2, 4)])
        ports = PortAssignment.identity(graph)
        assert ports.port(2, 1) == 1
        assert ports.port(2, 3) == 2
        assert ports.port(2, 4) == 3

    def test_identity_is_identity(self):
        graph = gnp_random_graph(12, seed=5)
        assert PortAssignment.identity(graph).is_identity()

    def test_identity_permutations_trivial(self):
        graph = path_graph(5)
        ports = PortAssignment.identity(graph)
        for u in graph.nodes:
            assert ports.permutation_at(u) == tuple(range(graph.degree(u)))


class TestShuffled:
    def test_shuffled_is_valid_and_deterministic(self):
        graph = gnp_random_graph(10, seed=3)
        a = PortAssignment.shuffled(graph, random.Random(7))
        b = PortAssignment.shuffled(graph, random.Random(7))
        for u in graph.nodes:
            assert a.permutation_at(u) == b.permutation_at(u)

    def test_shuffled_usually_not_identity(self):
        graph = gnp_random_graph(16, seed=3)
        ports = PortAssignment.shuffled(graph, random.Random(0))
        assert not ports.is_identity()

    @given(st.integers(min_value=0, max_value=1000))
    def test_port_neighbor_inverse(self, seed):
        graph = gnp_random_graph(9, seed=11)
        ports = PortAssignment.shuffled(graph, random.Random(seed))
        for u in graph.nodes:
            for nb in graph.neighbors(u):
                assert ports.neighbor(u, ports.port(u, nb)) == nb


class TestLookups:
    def test_port_rejects_non_neighbor(self):
        graph = LabeledGraph(3, [(1, 2)])
        ports = PortAssignment.identity(graph)
        with pytest.raises(PortAssignmentError):
            ports.port(1, 3)

    def test_neighbor_rejects_bad_port(self):
        graph = LabeledGraph(3, [(1, 2)])
        ports = PortAssignment.identity(graph)
        with pytest.raises(PortAssignmentError):
            ports.neighbor(1, 2)

    def test_graph_property(self):
        graph = path_graph(3)
        assert PortAssignment.identity(graph).graph is graph
