"""Tests for control-plane table dissemination."""

from __future__ import annotations

import types

import pytest

from repro.core import build_scheme
from repro.errors import GraphError, RoutingError
from repro.graphs import LabeledGraph, gnp_random_graph, path_graph, star_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import simulate_dissemination


class TestMechanics:
    def test_root_installs_at_zero(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        result = simulate_dissemination(scheme)
        assert result.install_times[1] == 0.0
        assert result.root == 1

    def test_every_node_installed(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        result = simulate_dissemination(scheme)
        assert set(result.install_times) == set(graph.nodes)
        assert result.makespan == max(result.install_times.values())

    def test_path_graph_hand_computation(self, model_ia_alpha):
        """On a path the last node waits behind every earlier payload."""
        graph = path_graph(3)
        scheme = build_scheme("full-table", graph, model_ia_alpha)
        rate, latency = 100.0, 1.0
        result = simulate_dissemination(
            scheme, link_rate_bits=rate, link_latency=latency
        )
        size2 = len(scheme.encode_function(2)) + 64
        size3 = len(scheme.encode_function(3)) + 64
        # Node 2's payload goes first on link (1,2); node 3's queues behind
        # it, then crosses link (2,3).
        t2 = latency + size2 / rate
        t3 = (t2 + latency + size3 / rate) + latency + size3 / rate
        assert result.install_times[2] == pytest.approx(t2)
        assert result.install_times[3] == pytest.approx(t3)

    def test_payload_matches_space_report(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        result = simulate_dissemination(scheme)
        assert result.total_payload_bits == scheme.space_report().routing_bits

    def test_star_bit_hops_equal_payload(self, model_ia_alpha):
        """Depth-1 tree: every payload travels exactly one hop."""
        scheme = build_scheme("full-table", star_graph(8), model_ia_alpha)
        result = simulate_dissemination(scheme)
        own = len(scheme.encode_function(1))
        assert result.total_bit_hops == result.total_payload_bits - own

    def test_disconnected_dissemination_rejected(self, model_ii_alpha):
        """The context's BFS tree covers only the reachable component; the
        dissemination entry point must turn that into a GraphError."""
        from repro.graphs import get_context

        graph = LabeledGraph(4, [(1, 2)])
        assert len(get_context(graph).bfs_tree(1)) == 2

        stub = types.SimpleNamespace(graph=graph, ctx=get_context(graph))
        with pytest.raises(GraphError):
            simulate_dissemination(stub, root=1)

    def test_bad_rate_rejected(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        with pytest.raises(RoutingError):
            simulate_dissemination(scheme, link_rate_bits=0)

    def test_deterministic(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        assert simulate_dissemination(scheme) == simulate_dissemination(scheme)


class TestOperationalStory:
    def test_compact_tables_boot_faster(self, model_ii_alpha):
        """Smaller schemes mean less control traffic and a shorter boot."""
        graph = gnp_random_graph(48, seed=7)
        results = {
            name: simulate_dissemination(
                build_scheme(name, graph, model_ii_alpha)
            )
            for name in ("full-table", "thm1-two-level", "thm4-hub")
        }
        assert (
            results["thm4-hub"].total_bit_hops
            < results["thm1-two-level"].total_bit_hops
            < results["full-table"].total_bit_hops
        )
        assert (
            results["thm4-hub"].makespan
            <= results["thm1-two-level"].makespan
            <= results["full-table"].makespan
        )

    def test_root_choice_changes_traffic(self, model_ii_alpha):
        graph = gnp_random_graph(32, seed=9)
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        a = simulate_dissemination(scheme, root=1)
        b = simulate_dissemination(scheme, root=17)
        assert a.total_payload_bits == b.total_payload_bits
        # traffic (bit-hops) depends on the tree, totals may differ
        assert a.total_bit_hops > 0 and b.total_bit_hops > 0
