"""Tests for randomness certification and deficiency estimates."""

from __future__ import annotations

import pytest

from repro.graphs import (
    certify_random_graph,
    complete_graph,
    gnp_random_graph,
    path_graph,
    randomness_deficiency,
    star_graph,
)
from repro.graphs.encoding import edge_code_length


class TestCertification:
    def test_random_graphs_certify(self):
        for seed in range(4):
            cert = certify_random_graph(gnp_random_graph(64, seed=seed))
            assert cert.certified, cert

    def test_certificate_fields_consistent(self):
        cert = certify_random_graph(gnp_random_graph(48, seed=11))
        assert cert.n == 48
        assert cert.max_cover_prefix <= cert.lemma3_scale * 1.0 + 1
        assert cert.max_degree_deviation <= cert.lemma1_scale

    def test_star_fails_certification(self):
        cert = certify_random_graph(star_graph(128))
        assert not cert.certified
        assert not cert.degrees_in_band

    def test_path_fails_diameter(self):
        cert = certify_random_graph(path_graph(32))
        assert not cert.diameter_two
        assert not cert.certified

    def test_complete_graph_fails(self):
        cert = certify_random_graph(complete_graph(16))
        assert not cert.certified


class TestDeficiency:
    def test_random_graph_incompressible(self):
        """A G(n,1/2) edge string should resist real compressors."""
        graph = gnp_random_graph(64, seed=5)
        deficiency = randomness_deficiency(graph)
        assert deficiency <= 0.05 * edge_code_length(64)

    def test_structured_graph_compresses(self):
        graph = star_graph(64)
        deficiency = randomness_deficiency(graph)
        assert deficiency > 0.5 * edge_code_length(64)

    def test_complete_graph_compresses_fully(self):
        deficiency = randomness_deficiency(complete_graph(64))
        assert deficiency > 0.8 * edge_code_length(64)

    def test_deficiency_nonnegative(self):
        assert randomness_deficiency(gnp_random_graph(24, seed=1)) >= 0
