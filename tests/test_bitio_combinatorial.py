"""Tests for the enumerative (combinatorial) codes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitio import (
    BitReader,
    BitWriter,
    decode_permutation,
    decode_subset,
    encode_permutation,
    encode_subset,
    log2_binomial,
    log2_factorial,
    permutation_code_width,
    rank_permutation,
    rank_subset,
    read_subset,
    subset_code_width,
    unrank_permutation,
    unrank_subset,
    write_subset,
)
from repro.errors import BitstreamError


@st.composite
def subsets(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    k = draw(st.integers(min_value=0, max_value=n))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return n, tuple(sorted(positions))


class TestSubsets:
    def test_rank_of_first_subset_is_zero(self):
        assert rank_subset((0, 1, 2), 6) == 0

    def test_rank_of_last_subset(self):
        assert rank_subset((3, 4, 5), 6) == math.comb(6, 3) - 1

    def test_rank_rejects_unsorted(self):
        with pytest.raises(BitstreamError):
            rank_subset((2, 1), 5)

    def test_rank_rejects_out_of_range(self):
        with pytest.raises(BitstreamError):
            rank_subset((0, 5), 5)

    def test_unrank_rejects_bad_rank(self):
        with pytest.raises(BitstreamError):
            unrank_subset(math.comb(5, 2), 5, 2)

    def test_lexicographic_order(self):
        ranked = sorted(
            ((rank_subset(s, 4), s) for s in [(0, 1), (0, 2), (0, 3), (1, 2),
                                              (1, 3), (2, 3)])
        )
        assert [s for _, s in ranked] == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        ]

    @given(subsets())
    def test_rank_unrank_round_trip(self, case):
        n, positions = case
        rank = rank_subset(positions, n)
        assert unrank_subset(rank, n, len(positions)) == positions

    @given(subsets())
    def test_bitcode_round_trip(self, case):
        n, positions = case
        bits = encode_subset(positions, n)
        assert decode_subset(bits, n, len(positions)) == positions

    @given(subsets())
    def test_code_width_is_information_optimal(self, case):
        n, positions = case
        k = len(positions)
        width = subset_code_width(n, k)
        assert width >= math.ceil(log2_binomial(n, k)) - 1e-9
        assert width <= math.ceil(log2_binomial(n, k)) + 1

    @given(subsets())
    def test_writer_reader_helpers(self, case):
        n, positions = case
        writer = BitWriter()
        write_subset(writer, positions, n)
        assert read_subset(BitReader(writer.getvalue()), n, len(positions)) == positions

    def test_decode_rejects_wrong_width(self):
        bits = encode_subset((0, 1), 5)  # C(5,2)=10 → 4 bits
        with pytest.raises(BitstreamError):
            decode_subset(bits, 20, 2)  # C(20,2)=190 → 8 bits expected


class TestPermutations:
    def test_identity_rank_zero(self):
        assert rank_permutation((0, 1, 2, 3)) == 0

    def test_reverse_is_last(self):
        assert rank_permutation((3, 2, 1, 0)) == math.factorial(4) - 1

    def test_rejects_non_permutation(self):
        with pytest.raises(BitstreamError):
            rank_permutation((0, 0, 1))

    @given(st.permutations(list(range(8))))
    def test_rank_unrank_round_trip(self, perm):
        perm = tuple(perm)
        assert unrank_permutation(rank_permutation(perm), len(perm)) == perm

    @given(st.integers(min_value=1, max_value=9), st.randoms())
    def test_bitcode_round_trip(self, n, rng):
        perm = list(range(n))
        rng.shuffle(perm)
        perm = tuple(perm)
        bits = encode_permutation(perm)
        assert len(bits) == permutation_code_width(n)
        assert decode_permutation(bits, n) == perm

    def test_code_width_matches_log_factorial(self):
        for n in (1, 2, 5, 10, 20):
            width = permutation_code_width(n)
            assert width == math.ceil(math.log2(math.factorial(n))) or width == max(
                math.factorial(n) - 1, 0
            ).bit_length()

    def test_width_grows_like_n_log_n(self):
        """``log₂ n!`` is the Theorem 8/9 lower-bound scale."""
        assert permutation_code_width(64) >= 64 * math.log2(64) - 1.443 * 64 - 2


class TestLogHelpers:
    @given(st.integers(min_value=0, max_value=300))
    def test_log2_factorial_matches_exact(self, n):
        assert log2_factorial(n) == pytest.approx(
            math.log2(math.factorial(n)) if n else 0.0, rel=1e-9
        )

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    )
    def test_log2_binomial_matches_exact(self, n, k):
        if k > n:
            assert log2_binomial(n, k) == float("-inf")
        else:
            assert log2_binomial(n, k) == pytest.approx(
                math.log2(math.comb(n, k)) if math.comb(n, k) else 0.0,
                rel=1e-9, abs=1e-9,
            )

    def test_log2_factorial_rejects_negative(self):
        with pytest.raises(ValueError):
            log2_factorial(-1)
