"""Tests for structural properties (Lemmas 1–3, Claim 1)."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs import (
    LabeledGraph,
    claim1_remainders,
    complete_graph,
    cover_prefix_length,
    covering_sequence,
    cycle_graph,
    degree_statistics,
    diameter,
    distance_matrix,
    eccentricity,
    gnp_random_graph,
    is_diameter_two,
    lemma3_bound,
    path_graph,
    star_graph,
)


class TestDistances:
    def test_path_distances(self):
        dist = distance_matrix(path_graph(5))
        assert dist[0, 4] == 4
        assert dist[1, 3] == 2
        assert dist[2, 2] == 0

    def test_disconnected_marked(self):
        dist = distance_matrix(LabeledGraph(3, [(1, 2)]))
        assert dist[0, 2] == -1

    def test_max_distance_cutoff(self):
        dist = distance_matrix(path_graph(6), max_distance=2)
        assert dist[0, 2] == 2
        assert dist[0, 3] == -1

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.nxadapter import to_networkx

        graph = gnp_random_graph(24, p=0.2, seed=12)
        dist = distance_matrix(graph)
        nx_lengths = dict(networkx.all_pairs_shortest_path_length(to_networkx(graph)))
        for u in graph.nodes:
            for v in graph.nodes:
                expected = nx_lengths[u].get(v, -1)
                assert dist[u - 1, v - 1] == expected


class TestDiameter:
    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_star(self):
        assert diameter(star_graph(6)) == 2

    def test_disconnected_raises(self):
        with pytest.raises(GraphError):
            diameter(LabeledGraph(3, [(1, 2)]))

    def test_random_graph_diameter_two(self):
        """Lemma 2 on sampled graphs (holds with overwhelming probability)."""
        for seed in range(5):
            graph = gnp_random_graph(48, seed=seed)
            assert diameter(graph) == 2

    def test_is_diameter_two_agrees(self):
        for graph in (star_graph(6), cycle_graph(5), gnp_random_graph(30, seed=1)):
            assert is_diameter_two(graph) == (diameter(graph) == 2)

    def test_complete_is_not_diameter_two(self):
        assert not is_diameter_two(complete_graph(5))


class TestEccentricity:
    def test_path_ends(self):
        graph = path_graph(5)
        assert eccentricity(graph, 1) == 4
        assert eccentricity(graph, 3) == 2

    def test_disconnected_raises(self):
        with pytest.raises(GraphError):
            eccentricity(LabeledGraph(3, [(1, 2)]), 1)


class TestDegreeStatistics:
    def test_lemma1_band_on_random_graph(self):
        graph = gnp_random_graph(100, seed=6)
        stats = degree_statistics(graph)
        assert stats.within_band
        assert stats.max_deviation <= 3 * math.sqrt(
            (3 * math.log2(100) + math.log2(100)) * 100
        )

    def test_mean_degree_near_half(self):
        graph = gnp_random_graph(80, seed=2)
        stats = degree_statistics(graph)
        assert abs(stats.mean_degree - 79 / 2) < 6

    def test_star_is_out_of_band(self):
        stats = degree_statistics(star_graph(200))
        assert not stats.within_band

    def test_explicit_deficiency(self):
        graph = gnp_random_graph(40, seed=1)
        stats = degree_statistics(graph, deficiency=10.0)
        assert stats.lemma1_bound == pytest.approx(
            math.sqrt((10.0 + math.log2(40)) * 40)
        )


class TestCoveringSequence:
    def test_least_sequence_is_sorted_prefix(self):
        graph = gnp_random_graph(40, seed=3)
        sequence, _ = covering_sequence(graph, 1, "least")
        assert tuple(sequence) == graph.neighbors(1)[: len(sequence)]

    def test_cover_is_complete(self):
        graph = gnp_random_graph(40, seed=3)
        for u in (1, 17, 40):
            sequence, newly = covering_sequence(graph, u)
            covered = set().union(*[set(block) for block in newly]) if newly else set()
            assert covered == set(graph.non_neighbors(u))

    def test_greedy_no_longer_than_least(self):
        graph = gnp_random_graph(50, seed=4)
        for u in (2, 25):
            least, _ = covering_sequence(graph, u, "least")
            greedy, _ = covering_sequence(graph, u, "greedy")
            assert len(greedy) <= len(least)

    def test_greedy_blocks_nonempty(self):
        graph = gnp_random_graph(50, seed=4)
        _, newly = covering_sequence(graph, 5, "greedy")
        assert all(newly)

    def test_uncoverable_raises(self):
        with pytest.raises(GraphError):
            covering_sequence(path_graph(6), 1)

    def test_unknown_strategy(self):
        with pytest.raises(GraphError):
            covering_sequence(gnp_random_graph(10, seed=1), 1, "magic")

    def test_complete_graph_trivial_cover(self):
        sequence, newly = covering_sequence(complete_graph(5), 1)
        assert sequence == []
        assert newly == []

    def test_lemma3_prefix_logarithmic(self):
        """Lemma 3: cover prefix stays within O(log n) on random graphs."""
        for n in (32, 64, 128):
            graph = gnp_random_graph(n, seed=n)
            worst = max(cover_prefix_length(graph, u) for u in graph.nodes)
            assert worst <= 3 * lemma3_bound(n)


class TestClaim1:
    def test_remainders_decreasing_to_zero(self):
        graph = gnp_random_graph(40, seed=9)
        remainders = claim1_remainders(graph, 3)
        assert remainders[0] == len(graph.non_neighbors(3))
        assert remainders[-1] == 0
        assert all(a >= b for a, b in zip(remainders, remainders[1:]))

    def test_geometric_decay_while_large(self):
        """Claim 1: each step removes ≥ 1/3 of the remainder while it is big."""
        n = 128
        graph = gnp_random_graph(n, seed=5)
        threshold = n / math.log2(math.log2(n))
        for u in (1, 50, 100):
            remainders = claim1_remainders(graph, u)
            for before, after in zip(remainders, remainders[1:]):
                if before > threshold:
                    assert after <= before - before / 3.0 + 1e-9
