"""Tests for the nine models and space accounting."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.models import (
    Knowledge,
    Labeling,
    NodeSpace,
    RoutingModel,
    SpaceReport,
    all_models,
    minimal_label_bits,
)


class TestKnowledge:
    def test_three_levels(self):
        assert len(list(Knowledge)) == 3

    def test_neighbors_known_only_ii(self):
        assert Knowledge.II.neighbors_known
        assert not Knowledge.IA.neighbors_known
        assert not Knowledge.IB.neighbors_known

    def test_ports_reassignable_only_ib(self):
        assert Knowledge.IB.ports_reassignable
        assert not Knowledge.IA.ports_reassignable
        assert not Knowledge.II.ports_reassignable

    def test_str(self):
        assert str(Knowledge.IA) == "IA"


class TestLabeling:
    def test_three_levels(self):
        assert len(list(Labeling)) == 3

    def test_relabeling(self):
        assert not Labeling.ALPHA.relabeling_allowed
        assert Labeling.BETA.relabeling_allowed
        assert Labeling.GAMMA.relabeling_allowed

    def test_charging_only_gamma(self):
        assert Labeling.GAMMA.labels_charged
        assert not Labeling.ALPHA.labels_charged
        assert not Labeling.BETA.labels_charged

    def test_symbols(self):
        assert str(Labeling.ALPHA) == "α"
        assert str(Labeling.GAMMA) == "γ"


class TestRoutingModel:
    def test_nine_models(self):
        models = list(all_models())
        assert len(models) == 9
        assert len(set(models)) == 9

    def test_capability_passthrough(self):
        model = RoutingModel(Knowledge.II, Labeling.GAMMA)
        assert model.neighbors_known
        assert not model.ports_reassignable
        assert model.relabeling_allowed
        assert model.labels_charged

    def test_require_passes(self):
        model = RoutingModel(Knowledge.IB, Labeling.ALPHA)
        model.require(ports_reassignable=True, relabeling=False)

    def test_require_raises_with_explanation(self):
        model = RoutingModel(Knowledge.IA, Labeling.ALPHA)
        with pytest.raises(ModelError, match="neighbours known"):
            model.require(neighbors_known=True)

    def test_require_none_means_dont_care(self):
        RoutingModel(Knowledge.IA, Labeling.BETA).require()

    def test_str_uses_paper_notation(self):
        assert str(RoutingModel(Knowledge.II, Labeling.ALPHA)) == "II ∧ α"

    def test_hashable(self):
        a = RoutingModel(Knowledge.II, Labeling.ALPHA)
        b = RoutingModel(Knowledge.II, Labeling.ALPHA)
        assert a == b and hash(a) == hash(b)


class TestMinimalLabelBits:
    def test_matches_ceil_log(self):
        assert minimal_label_bits(1) == 1
        assert minimal_label_bits(7) == 3
        assert minimal_label_bits(8) == 4
        assert minimal_label_bits(255) == 8
        assert minimal_label_bits(256) == 9


class TestSpaceReport:
    def _report(self):
        model = RoutingModel(Knowledge.II, Labeling.GAMMA)
        report = SpaceReport(model=model, scheme_name="test", n=3)
        report.add(NodeSpace(node=1, routing_bits=10, label_bits=4, aux_bits=1))
        report.add(NodeSpace(node=2, routing_bits=20))
        report.add(NodeSpace(node=3, routing_bits=30, label_bits=6))
        return report

    def test_totals(self):
        report = self._report()
        assert report.routing_bits == 60
        assert report.label_bits == 10
        assert report.aux_bits == 1
        assert report.total_bits == 71

    def test_per_node_stats(self):
        report = self._report()
        assert report.max_node_bits == 36
        assert report.mean_node_bits == pytest.approx(71 / 3)

    def test_duplicate_node_rejected(self):
        report = self._report()
        with pytest.raises(ModelError):
            report.add(NodeSpace(node=2, routing_bits=5))

    def test_bits_per_n_squared(self):
        report = self._report()
        assert report.bits_per_n_squared() == pytest.approx(71 / 9)

    def test_bits_per_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            self._report().bits_per(0)

    def test_summary_mentions_scheme_and_model(self):
        text = self._report().summary()
        assert "test" in text
        assert "II" in text

    def test_empty_report(self):
        report = SpaceReport(
            model=RoutingModel(Knowledge.IA, Labeling.ALPHA),
            scheme_name="empty",
            n=4,
        )
        assert report.total_bits == 0
        assert report.max_node_bits == 0
        assert report.mean_node_bits == 0.0

    def test_node_space_total(self):
        entry = NodeSpace(node=1, routing_bits=5, label_bits=2, aux_bits=3)
        assert entry.total == 10
