"""Tests for retry/backoff recovery and the bounce-once detour wrapper."""

from __future__ import annotations

import random

import pytest

from repro.core import DetourWrapper, build_scheme
from repro.errors import ReproError, RoutingError, SchemeBuildError
from repro.graphs import cycle_graph, gnp_random_graph, path_graph
from repro.simulator import (
    DropReason,
    EventDrivenSimulator,
    FaultEvent,
    FaultSchedule,
    Network,
    RetryPolicy,
    flapping_links,
    summarize,
    uniform_pairs,
)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == policy.max_attempts - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": 0.0},
            {"multiplier": 0.5},
            {"max_delay": 0.5, "base_delay": 1.0},
            {"jitter": 1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(0)
        assert [policy.delay(k, rng) for k in range(4)] == [1, 2, 4, 8]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=10.0,
            max_delay=50.0, jitter=0.0,
        )
        assert policy.delay(5, random.Random(0)) == 50.0

    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(base_delay=10.0, multiplier=1.0, jitter=0.2)
        values = [policy.delay(0, random.Random(s)) for s in range(50)]
        assert all(8.0 <= v <= 12.0 for v in values)
        assert values == [policy.delay(0, random.Random(s)) for s in range(50)]


class TestRetryInEventEngine:
    def test_retry_delivers_after_link_recovers(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        schedule = FaultSchedule(
            [
                FaultEvent.link_down(0.0, 2, 3),
                FaultEvent.link_up(5.0, 2, 3),
            ]
        )
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(
                max_attempts=5, base_delay=2.0, jitter=0.0
            ),
        )
        sim.inject(1, 4, at_time=0.0)
        (record,) = sim.run()
        assert record.delivered
        assert record.retries >= 1
        # Latency spans the whole recovery, not just the final walk.
        assert record.latency > 5.0

    def test_budget_exhaustion_reports_final_reason(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        sim = EventDrivenSimulator(
            scheme,
            failed_links=[(2, 3)],
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=1.0, jitter=0.0
            ),
        )
        sim.inject(1, 4)
        (record,) = sim.run()
        assert not record.delivered
        assert record.retries == 2  # max_attempts - 1 re-transmissions
        assert record.drop_reason is DropReason.LINK_DOWN

    def test_retry_improves_delivery_under_churn(
        self, model_ii_alpha, random_graph_32
    ):
        graph = random_graph_32
        schedule = flapping_links(
            graph, 130, period=8.0, duty=0.5, horizon=40.0, seed=5
        )
        pairs = uniform_pairs(graph, 120, seed=3)

        def run(retry):
            scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
            sim = EventDrivenSimulator(
                scheme, fault_schedule=schedule, retry_policy=retry
            )
            for i, (s, t) in enumerate(pairs):
                sim.inject(s, t, at_time=(i * 37) % 30)
            return summarize(sim.run(), graph)

        plain = run(None)
        retried = run(RetryPolicy(max_attempts=4, base_delay=1.0))
        assert retried.delivered_fraction > plain.delivered_fraction
        assert retried.total_retries > 0
        assert retried.mean_retries == pytest.approx(
            retried.total_retries / retried.messages
        )


class TestDetourWrapper:
    def test_transparent_without_failures(self, model_ii_alpha, random_graph_32):
        inner = build_scheme("thm1-two-level", random_graph_32, model_ii_alpha)
        wrapped = DetourWrapper(inner)
        for source, dest in [(1, 5), (7, 20), (32, 2)]:
            assert (
                Network(wrapped).route(source, dest).path
                == Network(inner).route(source, dest).path
            )

    def test_costs_no_extra_bits(self, model_ii_alpha, random_graph_32):
        inner = build_scheme("thm4-hub", random_graph_32, model_ii_alpha)
        wrapped = DetourWrapper(inner)
        assert (
            wrapped.space_report().total_bits
            == inner.space_report().total_bits
        )
        u = 3
        assert wrapped.encode_function(u) == inner.encode_function(u)
        rebuilt = wrapped.decode_function(u, wrapped.encode_function(u))
        assert rebuilt.next_hop(wrapped.address_of(9)).next_node == (
            inner.function(u).next_hop(inner.address_of(9)).next_node
        )

    def test_bounces_around_a_dead_link(self, model_ia_alpha):
        """On a triangle the detour reaches the destination the long way."""
        inner = build_scheme("full-table", cycle_graph(3), model_ia_alpha)
        failed = [(1, 2)]
        assert not Network(inner, failed).route(1, 2).delivered
        record = Network(DetourWrapper(inner), failed).route(1, 2)
        assert record.delivered
        assert record.path == (1, 3, 2)

    def test_bounce_budget_is_enforced(self, model_ia_alpha):
        """A path graph has no alternative route: the bounce cannot save
        the message, and the budget stops it from wandering forever."""
        inner = build_scheme("full-table", path_graph(4), model_ia_alpha)
        record = Network(DetourWrapper(inner), [(2, 3)]).route(1, 4)
        assert not record.delivered
        assert record.drop_reason in (
            DropReason.NO_ROUTE,
            DropReason.HOP_LIMIT,
        )

    def test_rejects_zero_bounce_budget(self, model_ia_alpha):
        inner = build_scheme("full-table", path_graph(3), model_ia_alpha)
        with pytest.raises(SchemeBuildError):
            DetourWrapper(inner, max_bounces=0)

    def test_all_links_dead_raises_no_route(self, model_ia_alpha):
        inner = build_scheme("full-table", path_graph(3), model_ia_alpha)
        network = Network(DetourWrapper(inner), [(1, 2)])
        record = network.route(1, 3)
        assert not record.delivered
        assert record.drop_reason is DropReason.NO_ROUTE

    def test_strictly_improves_single_path_under_churn(self, model_ii_beta):
        """Tier-1 acceptance: detour > plain single-path on one schedule,
        at a bounded stretch cost."""
        graph = gnp_random_graph(24, seed=9)
        inner = build_scheme("interval", graph, model_ii_beta)
        wrapped = DetourWrapper(inner)
        schedule = flapping_links(
            graph, 80, period=8.0, duty=0.5, horizon=40.0, seed=5
        )
        pairs = uniform_pairs(graph, 120, seed=3)
        outcomes = {}
        for name, scheme in (("plain", inner), ("detour", wrapped)):
            sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
            for i, (s, t) in enumerate(pairs):
                sim.inject(s, t, at_time=(i * 37) % 30)
            outcomes[name] = summarize(sim.run(), graph)
        assert (
            outcomes["detour"].delivered_fraction
            > outcomes["plain"].delivered_fraction
        )
        assert outcomes["detour"].max_stretch <= wrapped.stretch_bound()

    def test_stretch_bound_and_repr_expose_inner(
        self, model_ii_alpha, random_graph_32
    ):
        inner = build_scheme("thm4-hub", random_graph_32, model_ii_alpha)
        wrapped = DetourWrapper(inner, max_bounces=2)
        assert wrapped.max_bounces == 2
        assert wrapped.inner is inner
        assert wrapped.scheme_name == "detour(thm4-hub)"
        assert wrapped.stretch_bound() >= inner.stretch_bound()
        assert wrapped.hop_limit() == inner.hop_limit()
