"""Cross-module integration tests.

These exercise whole pipelines: build → serialise → reinstall → simulate,
codecs over scheme-bearing graphs, and the assembled Table 1.
"""

from __future__ import annotations

import pytest

from repro.analysis import Table1Entry, best_law, format_table1, mean_total_bits, run_size_sweep
from repro.core import build_scheme, verify_scheme
from repro.graphs import certify_random_graph, encode_graph, gnp_random_graph
from repro.incompressibility import Lemma1Codec, evaluate_codec
from repro.kolmogorov import best_estimate
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import EventDrivenSimulator, Network, summarize

ALL_PLAIN_SCHEMES = [
    ("full-table", 1.0),
    ("thm1-two-level", 1.0),
    ("thm3-centers", 1.5),
    ("thm4-hub", 2.0),
    ("full-information", 1.0),
]


class TestReinstallPipeline:
    """Serialise every local function, reinstall from bits, route messages."""

    @pytest.mark.parametrize("name,stretch", ALL_PLAIN_SCHEMES)
    def test_decoded_functions_route_identically(
        self, name, stretch, model_ii_alpha
    ):
        graph = gnp_random_graph(28, seed=43)
        scheme = build_scheme(name, graph, model_ii_alpha)
        # Swap every cached function for its decode(encode(...)) twin.
        for u in graph.nodes:
            scheme._function_cache[u] = scheme.decode_function(
                u, scheme.encode_function(u)
            )
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch <= stretch


class TestSchemeHierarchy:
    def test_size_ordering_matches_paper(self, model_ii_alpha, model_ii_gamma):
        """Table 1's vertical story on one graph: n² ≥ n log n ≥ n loglog n ≥ n."""
        graph = gnp_random_graph(96, seed=51)
        totals = {}
        for name in ("full-table", "thm1-two-level", "thm3-centers",
                     "thm4-hub", "thm5-probe"):
            totals[name] = build_scheme(
                name, graph, model_ii_alpha
            ).space_report().total_bits
        assert (
            totals["full-table"]
            > totals["thm1-two-level"]
            > totals["thm3-centers"]
            > totals["thm4-hub"]
            > totals["thm5-probe"]
        )

    def test_stretch_size_tradeoff(self, model_ii_alpha):
        """Smaller schemes pay in stretch, exactly as Theorems 1/3/4/5 trade."""
        graph = gnp_random_graph(48, seed=52)
        measured = []
        for name in ("thm1-two-level", "thm3-centers", "thm4-hub", "thm5-probe"):
            scheme = build_scheme(name, graph, model_ii_alpha)
            report = verify_scheme(scheme)
            measured.append(
                (scheme.space_report().total_bits, report.max_stretch)
            )
        sizes = [size for size, _ in measured]
        stretches = [stretch for _, stretch in measured]
        assert sizes == sorted(sizes, reverse=True)
        assert stretches == sorted(stretches)


class TestCodecOnCertifiedGraphs:
    def test_random_graph_is_certified_and_incompressible(self):
        graph = gnp_random_graph(64, seed=7)
        cert = certify_random_graph(graph)
        assert cert.certified
        estimate = best_estimate(encode_graph(graph))
        assert estimate.ratio > 0.9
        report = evaluate_codec(Lemma1Codec(), graph)
        assert report.savings <= 64  # no real compression via Lemma 1 either


class TestSimulatorAgreement:
    def test_walker_and_event_sim_agree_on_paths(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=61)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        network = Network(scheme)
        sim = EventDrivenSimulator(scheme)
        pairs = [(1, 13), (2, 20), (5, 9)]
        for u, w in pairs:
            sim.inject(u, w)
        event_records = {(r.source, r.destination): r for r in sim.run()}
        for u, w in pairs:
            walker_record = network.route(u, w)
            assert walker_record.path == event_records[(u, w)].path

    def test_metrics_respect_scheme_guarantee(self, model_ii_alpha):
        graph = gnp_random_graph(32, seed=62)
        scheme = build_scheme("thm3-centers", graph, model_ii_alpha)
        network = Network(scheme)
        records = [
            network.route(u, w) for u in range(1, 8) for w in range(8, 33)
        ]
        metrics = summarize(records, graph)
        assert metrics.delivered_fraction == 1.0
        assert metrics.max_stretch <= scheme.stretch_bound()


class TestTable1Assembly:
    def test_measured_entries_render(self, model_ii_alpha):
        points = run_size_sweep(
            "thm1-two-level", model_ii_alpha, ns=[32, 48, 64], seeds=(0,),
            verify_pairs=None,
        )
        means = mean_total_bits(points)
        fits = best_law(list(means), list(means.values()),
                        candidates=["n", "n log n", "n^2", "n^2 log n"])
        assert fits[0].law == "n^2"
        entry = Table1Entry(
            section="avg-upper",
            knowledge=Knowledge.II,
            labeling=Labeling.ALPHA,
            paper_bound="O(n²)",
            measured=f"{fits[0].constant:.2f} n²",
        )
        text = format_table1([entry])
        assert "n²" in text
