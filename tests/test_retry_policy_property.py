"""Property tests for RetryPolicy.delay: the cap and the jitter band."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.simulator import RetryPolicy

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=10),
    base_delay=st.floats(min_value=0.01, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=8.0,
                         allow_nan=False, allow_infinity=False),
    max_delay=st.floats(min_value=10.0, max_value=1000.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=0.99,
                     allow_nan=False, allow_infinity=False),
)


@settings(max_examples=200)
@given(
    policy=policies,
    retry=st.integers(min_value=0, max_value=10_000),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_delay_never_exceeds_jittered_cap(policy, retry, seed):
    # The cap must hold for ALL retry indices — including ones large
    # enough that multiplier**retry overflows any sane float range.
    delay = policy.delay(retry, random.Random(seed))
    assert delay <= policy.max_delay * (1 + policy.jitter) + 1e-9
    assert delay >= 0.0


@settings(max_examples=200)
@given(
    policy=policies,
    retry=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_jittered_delay_stays_in_band(policy, retry, seed):
    nominal = min(
        policy.base_delay * policy.multiplier**retry, policy.max_delay
    )
    delay = policy.delay(retry, random.Random(seed))
    low = nominal * (1 - policy.jitter)
    high = nominal * (1 + policy.jitter)
    assert low - 1e-9 <= delay <= high + 1e-9


@settings(max_examples=100)
@given(
    policy=policies,
    retry=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_delay_is_deterministic_under_a_seeded_rng(policy, retry, seed):
    assert policy.delay(retry, random.Random(seed)) == policy.delay(
        retry, random.Random(seed)
    )


@given(retry=st.integers(min_value=0, max_value=60))
def test_zero_jitter_is_exactly_nominal(retry):
    policy = RetryPolicy(base_delay=0.5, multiplier=3.0, max_delay=40.0,
                         jitter=0.0)
    expected = min(0.5 * 3.0**retry, 40.0)
    assert policy.delay(retry, random.Random(0)) == expected


def test_negative_retry_rejected():
    with pytest.raises(ReproError, match="retry index"):
        RetryPolicy().delay(-1, random.Random(0))
