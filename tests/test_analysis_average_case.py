"""Tests for the Corollary 1 average with trivial-bound fallback."""

from __future__ import annotations

import pytest

from repro.analysis import corollary1_average
from repro.errors import AnalysisError
from repro.kolmogorov import estimate_permutation_complexity
from repro.models import Knowledge, Labeling, RoutingModel


class TestCorollary1Average:
    def test_large_n_never_falls_back(self, model_ii_alpha):
        estimate = corollary1_average(
            "thm1-two-level", model_ii_alpha, n=64, samples=10
        )
        assert estimate.fallback_count == 0
        assert estimate.fallback_fraction == 0.0
        assert estimate.mean_total_bits == estimate.mean_compact_bits
        # Corollary 1.1: the average is O(n²).
        assert estimate.mean_total_bits <= 6 * 64 * 64

    def test_small_n_falls_back_sometimes(self, model_ii_alpha):
        """At tiny n the non-random sliver is visible — and is charged the
        trivial full-table bound, exactly as the paper's computation."""
        estimate = corollary1_average(
            "thm1-two-level", model_ii_alpha, n=14, samples=60
        )
        assert estimate.samples == 60
        assert 0 < estimate.fallback_count < 60
        assert estimate.fallback_contribution > 0.0
        assert estimate.mean_total_bits > 0

    def test_fallback_fraction_shrinks_with_n(self, model_ii_alpha):
        small = corollary1_average(
            "thm1-two-level", model_ii_alpha, n=14, samples=40
        )
        large = corollary1_average(
            "thm1-two-level", model_ii_alpha, n=40, samples=40
        )
        assert large.fallback_fraction <= small.fallback_fraction

    def test_deterministic(self, model_ii_alpha):
        a = corollary1_average("thm4-hub", model_ii_alpha, n=32, samples=8)
        b = corollary1_average("thm4-hub", model_ii_alpha, n=32, samples=8)
        assert a == b

    def test_rejects_zero_samples(self, model_ii_alpha):
        with pytest.raises(AnalysisError):
            corollary1_average("thm4-hub", model_ii_alpha, n=32, samples=0)

    def test_gamma_scheme_average(self, model_ii_gamma):
        import math

        estimate = corollary1_average(
            "thm2-neighbor-labels", model_ii_gamma, n=64, samples=8
        )
        # Corollary 1.2: O(n log² n) on average.
        assert estimate.mean_total_bits <= 2 * 64 * math.log2(64) ** 2


class TestPermutationComplexity:
    def test_random_permutation_incompressible(self):
        import random

        rng = random.Random(7)
        perm = list(range(600))
        rng.shuffle(perm)
        estimate = estimate_permutation_complexity(perm)
        # Theorem 9's counting: C(π) ≈ log₂ k! for almost all π.
        assert estimate.bits >= 0.9 * estimate.original_bits

    def test_identity_is_trivial_rank(self):
        estimate = estimate_permutation_complexity(range(600))
        # Lehmer rank 0: the minimal encoding is all zeros → collapses.
        assert estimate.deficiency > 0.8 * estimate.original_bits

    def test_original_bits_is_log_factorial(self):
        from repro.bitio import permutation_code_width

        estimate = estimate_permutation_complexity(range(100))
        assert estimate.original_bits == permutation_code_width(100)
