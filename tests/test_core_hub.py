"""Tests for the Theorem 4 hub scheme (stretch 2)."""

from __future__ import annotations

import math

import pytest

from repro.core import HubScheme, route_message, verify_scheme
from repro.core.hub import TowardHubFunction
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel


class TestStructure:
    def test_default_hub_is_node_one(self, random_graph_32, model_ii_alpha):
        assert HubScheme(random_graph_32, model_ii_alpha).hub == 1

    def test_custom_hub(self, random_graph_32, model_ii_alpha):
        assert HubScheme(random_graph_32, model_ii_alpha, hub=5).hub == 5

    def test_toward_hub_validates_adjacency(self):
        with pytest.raises(RoutingError):
            TowardHubFunction(1, (2, 3), toward_hub=7)

    def test_far_hub_rejected(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError):
            HubScheme(path_graph(8), model_ii_alpha)


class TestCorrectness:
    def test_stretch_at_most_two(self, model_ii_alpha):
        graph = gnp_random_graph(48, seed=19)
        scheme = HubScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch <= 2.0

    def test_neighbors_direct(self, random_graph_32, model_ii_alpha):
        scheme = HubScheme(random_graph_32, model_ii_alpha)
        for u in (3, 30):
            for w in random_graph_32.neighbors(u):
                assert route_message(scheme, u, w).hops == 1

    def test_worst_case_four_hops(self, model_ii_alpha):
        graph = gnp_random_graph(40, seed=8)
        scheme = HubScheme(graph, model_ii_alpha)
        worst = max(
            route_message(scheme, u, w).hops
            for u in graph.nodes
            for w in graph.nodes
            if u != w
        )
        assert worst <= 4

    def test_hub_routes_shortest(self, random_graph_32, model_ii_alpha):
        scheme = HubScheme(random_graph_32, model_ii_alpha)
        hub = scheme.hub
        for w in random_graph_32.nodes:
            if w != hub:
                assert route_message(scheme, hub, w).hops <= 2

    def test_messages_to_hub_delivered(self, random_graph_32, model_ii_alpha):
        scheme = HubScheme(random_graph_32, model_ii_alpha)
        for u in random_graph_32.nodes:
            if u != scheme.hub:
                assert route_message(scheme, u, scheme.hub).hops <= 2


class TestEncoding:
    def test_non_hub_nodes_tiny(self, model_ii_alpha):
        """Theorem 4: log log n + O(1) bits at every non-hub node."""
        n = 128
        graph = gnp_random_graph(n, seed=51)
        scheme = HubScheme(graph, model_ii_alpha)
        budget = 2 * math.log2(math.log2(n)) + 8
        for u in graph.nodes:
            if u != scheme.hub:
                assert len(scheme.encode_function(u)) <= budget

    def test_hub_six_n_bits(self, model_ii_alpha):
        n = 128
        graph = gnp_random_graph(n, seed=51)
        scheme = HubScheme(graph, model_ii_alpha)
        assert len(scheme.encode_function(scheme.hub)) <= 6 * n

    def test_total_matches_theorem4(self, model_ii_alpha):
        """Total ≤ n log log n + 6n bits."""
        for n in (64, 128):
            graph = gnp_random_graph(n, seed=n + 9)
            total = HubScheme(graph, model_ii_alpha).space_report().total_bits
            assert total <= n * 2 * math.log2(math.log2(n)) + 6 * n + n

    def test_round_trip_all_roles(self, random_graph_32, model_ii_alpha):
        scheme = HubScheme(random_graph_32, model_ii_alpha)
        hub_neighbor = random_graph_32.neighbors(scheme.hub)[0]
        distant = next(
            u
            for u in random_graph_32.nodes
            if u != scheme.hub
            and u not in random_graph_32.neighbor_set(scheme.hub)
        )
        for u in (scheme.hub, hub_neighbor, distant):
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in random_graph_32.nodes:
                if w != u:
                    assert (
                        decoded.next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )
