"""Tests for Claims 2 and 3 (Theorem 7 machinery)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import FullTableScheme
from repro.errors import ReproError
from repro.graphs import PortAssignment, gnp_random_graph
from repro.lowerbounds import (
    claim2_holds,
    claim2_lhs,
    decode_neighbor_choices,
    encode_neighbor_choices,
    port_destination_lists,
    theorem7_ledger,
)


class TestClaim2:
    @given(st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=40))
    def test_inequality_holds_universally(self, xs):
        """Claim 2: Σ ⌈log xᵢ⌉ ≤ Σ xᵢ - k for all positive integers."""
        assert claim2_holds(xs)

    def test_single_element(self):
        assert claim2_lhs([8]) == 3
        assert claim2_holds([8])

    def test_tight_case_all_ones(self):
        """x_i = 1 achieves equality: lhs = 0 = n - k."""
        xs = [1] * 10
        assert claim2_lhs(xs) == 0
        assert sum(xs) - len(xs) == 0

    def test_rejects_zero(self):
        with pytest.raises(ReproError):
            claim2_lhs([1, 0, 2])


class TestClaim3:
    @pytest.fixture()
    def scheme(self, model_ia_alpha):
        graph = gnp_random_graph(28, seed=6)
        ports = PortAssignment.shuffled(graph, random.Random(2))
        return FullTableScheme(graph, model_ia_alpha, ports=ports)

    def test_destination_lists_partition(self, scheme):
        graph = scheme.graph
        for u in (1, 14):
            lists = port_destination_lists(scheme, u)
            everything = sorted(w for block in lists.values() for w in block)
            assert everything == [w for w in graph.nodes if w != u]

    def test_choices_reconstruct_pattern(self, scheme):
        """Claim 3 end-to-end: F(u) + choice bits ⇒ interconnection pattern."""
        graph = scheme.graph
        for u in graph.nodes:
            choices = encode_neighbor_choices(scheme, u)
            lists = port_destination_lists(scheme, u)
            assert decode_neighbor_choices(choices, lists) == graph.neighbors(u)

    def test_choice_bits_within_claim2_budget(self, scheme):
        graph = scheme.graph
        for u in graph.nodes:
            choices = encode_neighbor_choices(scheme, u)
            assert len(choices) <= (graph.n - 1) - graph.degree(u)


class TestTheorem7Ledger:
    def test_ledger_consistency(self, model_ia_alpha):
        graph = gnp_random_graph(32, seed=13)
        ports = PortAssignment.shuffled(graph, random.Random(4))
        scheme = FullTableScheme(graph, model_ia_alpha, ports=ports)
        for u in (1, 20, 32):
            ledger = theorem7_ledger(scheme, u)
            assert ledger.pattern_bits == 31
            assert ledger.choice_bits <= ledger.claim2_budget
            assert (
                ledger.implied_function_bound
                == ledger.pattern_bits - ledger.choice_bits - 2 * 6
            )

    def test_implied_bound_is_order_half_n(self, model_ia_alpha):
        """Theorem 7's per-node Ω(n): the bound tracks the degree ≈ n/2."""
        for n in (32, 64):
            graph = gnp_random_graph(n, seed=n + 7)
            scheme = FullTableScheme(graph, model_ia_alpha)
            bounds = [theorem7_ledger(scheme, u).implied_function_bound
                      for u in graph.nodes]
            mean_bound = sum(bounds) / n
            assert mean_bound >= 0.25 * n  # comfortably Ω(n)

    def test_total_bound_is_order_n_squared(self, model_ia_alpha):
        n = 48
        graph = gnp_random_graph(n, seed=3)
        scheme = FullTableScheme(graph, model_ia_alpha)
        total = sum(
            theorem7_ledger(scheme, u).implied_function_bound for u in graph.nodes
        )
        assert total >= n * n / 8
