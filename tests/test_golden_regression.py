"""Golden-value regression tests.

Every number here was measured once on the reference implementation with
fixed seeds.  A change to graph sampling, encodings, or constructions that
alters any measured bit count — intentionally or not — must update these
values consciously.  (This is the bit-level analogue of the paper's tables:
the numbers ARE the result.)
"""

from __future__ import annotations

import pytest

from repro.core import build_scheme
from repro.graphs import encode_graph, gnp_random_graph
from repro.lowerbounds import ExplicitLowerBoundScheme
from repro.models import Knowledge, Labeling, RoutingModel

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)
II_GAMMA = RoutingModel(Knowledge.II, Labeling.GAMMA)

GRAPH = gnp_random_graph(32, seed=101)

GOLDEN_TOTAL_BITS = {
    "thm1-two-level": 1399,
    "thm3-centers": 419,
    "thm4-hub": 109,
    "full-table": 4526,
    "full-information": 16430,
}


class TestGoldenValues:
    def test_sampled_graph_is_stable(self):
        assert GRAPH.edge_count == 265
        assert encode_graph(GRAPH).count(1) == 265

    @pytest.mark.parametrize("name,expected", sorted(GOLDEN_TOTAL_BITS.items()))
    def test_scheme_total_bits(self, name, expected):
        scheme = build_scheme(name, GRAPH, II_ALPHA)
        assert scheme.space_report().total_bits == expected

    def test_thm2_total_bits(self):
        scheme = build_scheme("thm2-neighbor-labels", GRAPH, II_GAMMA)
        assert scheme.space_report().total_bits == 1082

    def test_thm9_total_bits(self):
        scheme = ExplicitLowerBoundScheme.from_parameters(8, II_ALPHA)
        assert scheme.space_report().total_bits == 152

    def test_thm1_function_prefix(self):
        """The first bits of a serialised function are part of the format."""
        scheme = build_scheme("thm1-two-level", GRAPH, II_ALPHA)
        assert scheme.encode_function(1).to01().startswith(
            "011010101011011010101010"
        )

    def test_totals_are_model_independent_where_expected(self):
        """Under β the Theorem 1 scheme neither gains nor loses bits
        (it never relabels), so its size equals the α number."""
        beta = RoutingModel(Knowledge.II, Labeling.BETA)
        scheme = build_scheme("thm1-two-level", GRAPH, beta)
        assert scheme.space_report().total_bits == GOLDEN_TOTAL_BITS[
            "thm1-two-level"
        ]
