"""Tests for the Theorem 6 and Theorem 10 codecs."""

from __future__ import annotations

import math

import pytest

from repro.core import FullInformationScheme, TwoLevelScheme
from repro.errors import CodecError
from repro.graphs import gnp_random_graph
from repro.incompressibility import Theorem6Codec, Theorem10Codec, evaluate_codec
from repro.models import Knowledge, Labeling, RoutingModel


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(48, seed=17)


@pytest.fixture(scope="module")
def model():
    return RoutingModel(Knowledge.II, Labeling.ALPHA)


@pytest.fixture(scope="module")
def two_level(graph, model):
    return TwoLevelScheme(graph, model)


@pytest.fixture(scope="module")
def full_info(graph, model):
    return FullInformationScheme(graph, model)


class TestTheorem6:
    @pytest.mark.parametrize("node", [1, 13, 29, 48])
    def test_round_trip(self, graph, two_level, node):
        assert evaluate_codec(Theorem6Codec(two_level, node), graph).round_trip_ok

    def test_wrong_graph_rejected(self, two_level):
        other = gnp_random_graph(48, seed=99)
        with pytest.raises(CodecError):
            Theorem6Codec(two_level, 1).encode(other)

    def test_overhead_is_logarithmic(self, graph, two_level):
        """The proof's O(log n) header."""
        ledger = Theorem6Codec(two_level, 7).accounting(graph)
        assert ledger["overhead_bits"] <= 6 * math.log2(48)

    def test_deleted_bits_are_non_neighbors(self, graph, two_level):
        """One edge deleted per non-neighbour — the n/2 - o(n) saving."""
        for node in (3, 21):
            ledger = Theorem6Codec(two_level, node).accounting(graph)
            assert ledger["deleted_bits"] == len(graph.non_neighbors(node))

    def test_function_respects_implied_bound(self, graph, two_level):
        """Theorem 6's inequality on this instance: |F(u)| ≥ deleted - overhead - δ."""
        for node in graph.nodes:
            codec = Theorem6Codec(two_level, node)
            ledger = codec.accounting(graph)
            deficiency = 3 * int(math.log2(48))
            assert ledger["function_bits"] >= codec.implied_function_bound(
                graph, deficiency
            ) - deficiency

    def test_implied_bound_scales_as_half_n(self):
        """deleted - overhead ≈ n/2 - O(log n) grows linearly."""
        model = RoutingModel(Knowledge.II, Labeling.ALPHA)
        bounds = []
        for n in (48, 96):
            g = gnp_random_graph(n, seed=n + 3)
            scheme = TwoLevelScheme(g, model)
            ledger = Theorem6Codec(scheme, 1).accounting(g)
            bounds.append(ledger["implied_function_bound"])
        assert bounds[1] > 1.5 * bounds[0]


class TestTheorem10:
    @pytest.mark.parametrize("node", [1, 24, 48])
    def test_round_trip(self, graph, full_info, node):
        assert evaluate_codec(Theorem10Codec(full_info, node), graph).round_trip_ok

    def test_wrong_graph_rejected(self, full_info):
        other = gnp_random_graph(48, seed=99)
        with pytest.raises(CodecError):
            Theorem10Codec(full_info, 1).encode(other)

    def test_deleted_bits_quarter_n_squared(self, graph, full_info):
        """d(u)(n-1-d(u)) ≈ n²/4 bits recoverable from F(u)."""
        n = graph.n
        for node in (5, 40):
            ledger = Theorem10Codec(full_info, node).accounting(graph)
            assert ledger["deleted_bits"] >= 0.7 * n * n / 4
            d = graph.degree(node)
            assert ledger["deleted_bits"] == d * (n - 1 - d)

    def test_function_bound_near_quarter_cubed_per_node(self, graph, full_info):
        """|F(u)| ≥ n²/4 - o(n²), instantiated."""
        n = graph.n
        for node in (2, 30):
            codec = Theorem10Codec(full_info, node)
            ledger = codec.accounting(graph)
            assert ledger["function_bits"] >= ledger["implied_function_bound"]
            assert ledger["implied_function_bound"] >= 0.7 * n * n / 4

    def test_overhead_logarithmic(self, graph, full_info):
        ledger = Theorem10Codec(full_info, 11).accounting(graph)
        assert ledger["overhead_bits"] <= 6 * math.log2(48)

    def test_reconstruction_identity(self, graph, full_info):
        """vw ∈ E ⟺ v flagged in F(u)'s bitmap for w — the proof's pivot."""
        u = 9
        function = full_info.function(u)
        for w in graph.non_neighbors(u):
            flagged = set(function.shortest_edges(w))
            for v in graph.neighbors(u):
                assert graph.has_edge(v, w) == (v in flagged)
