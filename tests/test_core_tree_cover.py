"""Tests for the tree-cover scheme (general-graph extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    TreeCoverAddress,
    TreeCoverScheme,
    build_scheme,
    route_message,
    verify_scheme,
)
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import (
    LabeledGraph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    random_tree,
)
from repro.models import Knowledge, Labeling, RoutingModel


def sparse_graph(n: int, seed: int) -> LabeledGraph:
    """A connected sparse graph (diameter well above 2)."""
    import math

    p = min(3.0 * math.log(n) / n, 0.5)
    for attempt in range(20):
        graph = gnp_random_graph(n, p=p, seed=seed + attempt * 1000)
        if graph.is_connected():
            return graph
    raise AssertionError("no connected sparse sample found")


class TestModel:
    def test_requires_gamma(self, model_ii_alpha, model_ii_beta):
        graph = cycle_graph(12)
        for model in (model_ii_alpha, model_ii_beta):
            with pytest.raises(Exception):
                TreeCoverScheme(graph, model)

    def test_accepts_gamma(self, model_ii_gamma):
        TreeCoverScheme(cycle_graph(12), model_ii_gamma)

    def test_rejects_disconnected(self, model_ii_gamma):
        with pytest.raises(SchemeBuildError):
            TreeCoverScheme(LabeledGraph(4, [(1, 2)]), model_ii_gamma)

    def test_rejects_zero_trees(self, model_ii_gamma):
        with pytest.raises(SchemeBuildError):
            TreeCoverScheme(cycle_graph(12), model_ii_gamma, num_trees=0)


class TestRouting:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_delivers_on_sparse_graphs(self, seed, model_ii_gamma):
        graph = sparse_graph(48, seed)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=4)
        report = verify_scheme(scheme, sample_pairs=400, seed=seed)
        assert report.ok()

    def test_delivers_on_cycle(self, model_ii_gamma):
        scheme = TreeCoverScheme(cycle_graph(16), model_ii_gamma, num_trees=2)
        assert verify_scheme(scheme).all_delivered

    def test_exact_on_trees(self, model_ii_gamma):
        """With the tree itself as cover, routing is exact."""
        tree = random_tree(20, seed=3)
        scheme = TreeCoverScheme(tree, model_ii_gamma, num_trees=1)
        report = verify_scheme(scheme)
        assert report.ok()

    def test_neighbors_short_circuit(self, model_ii_gamma):
        graph = sparse_graph(32, 2)
        scheme = TreeCoverScheme(graph, model_ii_gamma)
        u = 1
        for w in graph.neighbors(u):
            assert route_message(scheme, u, w).hops == 1

    def test_hops_bounded_by_chosen_tree(self, model_ii_gamma):
        graph = sparse_graph(40, 4)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=3)
        for u, w in [(1, 40), (3, 37), (10, 20)]:
            trace = route_message(scheme, u, w)
            best = min(
                mu + mw
                for mu, mw in zip(
                    scheme.address_of(u).depths, scheme.address_of(w).depths
                )
            )
            assert trace.hops <= best

    def test_more_trees_never_hurt_much(self, model_ii_gamma):
        graph = sparse_graph(48, 7)
        few = TreeCoverScheme(graph, model_ii_gamma, num_trees=1)
        many = TreeCoverScheme(graph, model_ii_gamma, num_trees=4)
        stretch_few = verify_scheme(few, sample_pairs=300, seed=1).max_stretch
        stretch_many = verify_scheme(many, sample_pairs=300, seed=1).max_stretch
        assert stretch_many <= stretch_few + 1e-9

    def test_plain_address_rejected(self, model_ii_gamma):
        scheme = TreeCoverScheme(cycle_graph(8), model_ii_gamma)
        with pytest.raises(RoutingError):
            scheme.function(1).next_hop(5)


class TestAddressing:
    def test_address_contents(self, model_ii_gamma):
        graph = sparse_graph(24, 1)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=3)
        address = scheme.address_of(7)
        assert isinstance(address, TreeCoverAddress)
        assert address.node == 7
        assert len(address.dfs_numbers) == 3
        assert len(address.depths) == 3

    def test_roots_are_distinct_and_spread(self, model_ii_gamma):
        graph = sparse_graph(30, 1)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=3)
        assert len(set(scheme.roots)) == 3

    def test_label_bits_charged(self, model_ii_gamma):
        graph = sparse_graph(24, 1)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=3)
        report = scheme.space_report()
        assert report.label_bits == sum(
            scheme.address_of(v).bit_length(24) for v in graph.nodes
        )


class TestEncoding:
    def test_round_trip(self, model_ii_gamma):
        graph = sparse_graph(24, 6)
        scheme = TreeCoverScheme(graph, model_ii_gamma, num_trees=2)
        for u in graph.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in (1, 12, 24):
                if w == u:
                    continue
                address = scheme.address_of(w)
                assert (
                    decoded.next_hop(address).next_node
                    == scheme.function(u).next_hop(address).next_node
                )

    def test_registered(self, model_ii_gamma):
        scheme = build_scheme(
            "tree-cover", cycle_graph(10), model_ii_gamma, num_trees=2
        )
        assert scheme.scheme_name == "tree-cover"

    def test_size_scales_with_trees(self, model_ii_gamma):
        graph = sparse_graph(32, 8)
        small = TreeCoverScheme(graph, model_ii_gamma, num_trees=1)
        large = TreeCoverScheme(graph, model_ii_gamma, num_trees=4)
        assert (
            large.space_report().routing_bits
            > small.space_report().routing_bits
        )
