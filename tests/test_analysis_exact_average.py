"""Tests for the exact Definition 5 average (exhaustive enumeration)."""

from __future__ import annotations

import pytest

from repro.analysis import all_graphs, exact_average_bits
from repro.core import FullTableScheme, TwoLevelScheme
from repro.errors import AnalysisError, SchemeBuildError
from repro.graphs import edge_code_length
from repro.models import Knowledge, Labeling, RoutingModel


class TestEnumeration:
    def test_counts_all_graphs(self):
        for n in (1, 2, 3, 4):
            assert sum(1 for _ in all_graphs(n)) == 2 ** edge_code_length(n)

    def test_connected_filter(self):
        connected = list(all_graphs(3, connected_only=True))
        # On 3 nodes: 3 paths + 1 triangle are connected.
        assert len(connected) == 4

    def test_no_duplicates(self):
        graphs = list(all_graphs(4))
        assert len(set(graphs)) == len(graphs)

    def test_rejects_large_n(self):
        with pytest.raises(AnalysisError):
            list(all_graphs(6))

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            list(all_graphs(0))


class TestExactAverage:
    def test_full_table_exact_average(self, model_ia_alpha):
        result = exact_average_bits(FullTableScheme, model_ia_alpha, n=4)
        assert result.graphs_total == 38  # connected labelled graphs on 4 nodes
        assert result.graphs_built == 38
        assert result.mean_total_bits > 0
        assert result.max_total_bits >= result.mean_total_bits

    def test_monte_carlo_agrees_with_exact(self, model_ia_alpha):
        """The sampled average converges to the enumerated one."""
        import random

        from repro.graphs import decode_graph, encode_graph
        from repro.bitio import BitArray

        exact = exact_average_bits(FullTableScheme, model_ia_alpha, n=4)
        rng = random.Random(0)
        samples = []
        length = edge_code_length(4)
        while len(samples) < 400:
            code = rng.getrandbits(length)
            graph = decode_graph(BitArray.from_int(code, length), 4)
            if graph.is_connected():
                samples.append(
                    FullTableScheme(graph, model_ia_alpha)
                    .space_report()
                    .total_bits
                )
        monte_carlo = sum(samples) / len(samples)
        assert monte_carlo == pytest.approx(exact.mean_total_bits, rel=0.1)

    def test_conditioned_average_for_partial_schemes(self, model_ii_alpha):
        """Theorem 1 only covers diameter ≤ 2 graphs; conditioning works."""
        result = exact_average_bits(
            TwoLevelScheme, model_ii_alpha, n=4, skip_unbuildable=True
        )
        assert 0 < result.graphs_built <= result.graphs_total

    def test_unbuildable_raises_without_skip(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError):
            exact_average_bits(TwoLevelScheme, model_ii_alpha, n=4)

    def test_empty_class_rejected(self, model_ii_alpha):
        def impossible(graph, model):
            raise SchemeBuildError("never")

        with pytest.raises(AnalysisError):
            exact_average_bits(
                impossible, model_ii_alpha, n=3, skip_unbuildable=True
            )
