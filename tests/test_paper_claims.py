"""One test per explicit quantitative claim in the paper.

These are the reproduction's contract: each test cites the paper statement
it checks.  Sizes are measured from real serialised functions, stretches
from real routed messages, and the incompressibility inequalities from real
codecs.
"""

from __future__ import annotations

import math

import pytest

from repro.bitio import log2_factorial
from repro.core import (
    FullInformationScheme,
    HubScheme,
    NeighborLabelScheme,
    ProbeScheme,
    CenterScheme,
    TwoLevelScheme,
    verify_scheme,
)
from repro.graphs import (
    certify_random_graph,
    claim1_remainders,
    cover_prefix_length,
    degree_statistics,
    diameter,
    gnp_random_graph,
)
from repro.incompressibility import Theorem6Codec, Theorem10Codec
from repro.lowerbounds import (
    ExplicitLowerBoundScheme,
    run_theorem8_experiment,
    theorem7_ledger,
)
from repro.models import Knowledge, Labeling, RoutingModel

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)
II_GAMMA = RoutingModel(Knowledge.II, Labeling.GAMMA)
IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)

N = 128
GRAPH = gnp_random_graph(N, seed=2026)


class TestLemmas:
    def test_lemma1_degree_band(self):
        """Lemma 1: |d - (n-1)/2| = O(√((δ(n)+log n) n))."""
        stats = degree_statistics(GRAPH)
        assert stats.within_band

    def test_lemma2_diameter_two(self):
        """Lemma 2: all o(n)-random graphs have diameter 2."""
        assert diameter(GRAPH) == 2

    def test_lemma3_cover_prefix(self):
        """Lemma 3: coverage through the least (c+3) log n neighbours."""
        limit = 6 * math.log2(N)  # c = 3
        for u in GRAPH.nodes:
            assert cover_prefix_length(GRAPH, u) <= limit

    def test_claim1_one_third_decay(self):
        """Claim 1: |A_t| ≥ m_{t-1}/3 while m_{t-1} > n / log log n."""
        threshold = N / math.log2(math.log2(N))
        for u in (1, N // 2, N):
            remainders = claim1_remainders(GRAPH, u)
            for before, after in zip(remainders, remainders[1:]):
                if before > threshold:
                    assert (before - after) >= before / 3.0 - 1e-9

    def test_certified(self):
        assert certify_random_graph(GRAPH).certified


class TestTheorem1:
    """Shortest path routing in 6n bits per node (IB ∨ II)."""

    def test_six_n_per_node(self):
        scheme = TwoLevelScheme(GRAPH, II_ALPHA, split_rule="loglog")
        assert max(len(scheme.encode_function(u)) for u in GRAPH.nodes) <= 6 * N

    def test_complete_scheme_6n_squared(self):
        scheme = TwoLevelScheme(GRAPH, II_ALPHA)
        assert scheme.space_report().total_bits <= 6 * N * N

    def test_three_n_refinement(self):
        """'Slightly more precise counting ... shows |F(u)| ≤ 3n'."""
        scheme = TwoLevelScheme(GRAPH, II_ALPHA, split_rule="log")
        assert max(len(scheme.encode_function(u)) for u in GRAPH.nodes) <= 3 * N

    def test_shortest_path(self):
        scheme = TwoLevelScheme(GRAPH, II_ALPHA)
        report = verify_scheme(scheme, sample_pairs=600, seed=1)
        assert report.ok() and report.max_stretch == 1.0

    def test_ib_costs_one_extra_vector(self):
        """'Adding another n-1 in case the port assignment may be chosen'."""
        ib = TwoLevelScheme(GRAPH, RoutingModel(Knowledge.IB, Labeling.ALPHA))
        for entry in ib.space_report().per_node:
            assert entry.aux_bits == N - 1


class TestTheorem2:
    """Labels of (1 + (c+3) log n) log n bits, O(1) routing functions."""

    def test_label_size(self):
        scheme = NeighborLabelScheme(GRAPH, II_GAMMA)
        label_limit = (1 + 6 * math.log2(N)) * math.ceil(math.log2(N + 1))
        for u in GRAPH.nodes:
            assert scheme.label_bits(u) <= label_limit

    def test_constant_routing_bits(self):
        scheme = NeighborLabelScheme(GRAPH, II_GAMMA)
        assert all(len(scheme.encode_function(u)) == 1 for u in GRAPH.nodes)

    def test_total_matches_formula(self):
        """(c+3) n log² n + n log n + O(n) with c = 3."""
        scheme = NeighborLabelScheme(GRAPH, II_GAMMA)
        total = scheme.space_report().total_bits
        formula = 6 * N * math.log2(N) ** 2 + N * math.log2(N) + 8 * N
        assert total <= 1.3 * formula

    def test_shortest_path(self):
        report = verify_scheme(
            NeighborLabelScheme(GRAPH, II_GAMMA), sample_pairs=600, seed=2
        )
        assert report.ok() and report.max_stretch == 1.0


class TestTheorem3:
    """Stretch 1.5 with < (6c + 20) n log n bits (c = 3)."""

    def test_total_bits(self):
        total = CenterScheme(GRAPH, II_ALPHA).space_report().total_bits
        assert total <= 38 * N * math.log2(N)

    def test_stretch_bound(self):
        report = verify_scheme(CenterScheme(GRAPH, II_ALPHA),
                               sample_pairs=600, seed=3)
        assert report.ok()
        assert report.max_stretch <= 1.5

    def test_non_center_nodes_store_one_label(self):
        scheme = CenterScheme(GRAPH, II_ALPHA)
        non_centers = [u for u in GRAPH.nodes if u not in scheme.centers]
        assert len(non_centers) >= N - 1 - 6 * math.log2(N)
        for u in non_centers:
            assert len(scheme.encode_function(u)) <= math.ceil(math.log2(N + 1))


class TestTheorem4:
    """Stretch 2 with n log log n + 6n total bits."""

    def test_total_bits(self):
        total = HubScheme(GRAPH, II_ALPHA).space_report().total_bits
        # gamma-coded indices cost ≈ 2 loglog n per node.
        assert total <= N * (2 * math.log2(math.log2(N)) + 3) + 6 * N

    def test_stretch_two(self):
        report = verify_scheme(HubScheme(GRAPH, II_ALPHA),
                               sample_pairs=600, seed=4)
        assert report.ok()
        assert report.max_stretch <= 2.0


class TestTheorem5:
    """Stretch (c+3) log n with O(n) total bits."""

    def test_linear_total(self):
        assert ProbeScheme(GRAPH, II_ALPHA).space_report().total_bits == N

    def test_hop_bound(self):
        """Each distance-2 message traverses ≤ 2(c+3) log n edges."""
        report = verify_scheme(ProbeScheme(GRAPH, II_ALPHA),
                               sample_pairs=600, seed=5)
        assert report.all_delivered
        assert report.max_stretch * 2 <= 2 * 6 * math.log2(N)


class TestTheorem6:
    """|F(u)| ≥ n/2 - o(n) per node under II ∧ α."""

    def test_codec_inequality(self):
        scheme = TwoLevelScheme(GRAPH, II_ALPHA)
        for u in (1, N // 3, N):
            codec = Theorem6Codec(scheme, u)
            ledger = codec.accounting(GRAPH)
            # deleted ≈ #non-neighbours ≈ n/2; overhead = O(log n).
            assert ledger["deleted_bits"] >= N / 2 - math.sqrt(N * math.log2(N)) * 2
            assert ledger["overhead_bits"] <= 8 * math.log2(N)
            assert ledger["function_bits"] >= ledger["implied_function_bound"]


class TestTheorem7:
    """Ω(n²) total when neighbours are unknown (IA ∨ IB)."""

    def test_ledger_scale(self):
        from repro.core import FullTableScheme

        scheme = FullTableScheme(GRAPH, IA_ALPHA)
        bounds = [
            theorem7_ledger(scheme, u).implied_function_bound
            for u in GRAPH.nodes
        ]
        assert sum(bounds) >= N * N / 8


class TestTheorem8:
    """(n/2) log(n/2) bits per node under IA ∧ α."""

    def test_permutation_bits(self):
        result = run_theorem8_experiment(GRAPH, IA_ALPHA, seed=8)
        assert result.recovered_all
        per_node = result.total_permutation_bits / N
        target = (N / 2) * math.log2(N / 2)
        assert per_node >= 0.5 * target
        assert result.total_permutation_bits >= result.theory_bits


class TestTheorem9:
    """(n/3) log n bits per inner node for stretch < 2 under α."""

    def test_inner_node_bits(self):
        k = 32
        scheme = ExplicitLowerBoundScheme.from_parameters(k, II_ALPHA)
        inner_bits = len(scheme.encode_function(1))
        assert inner_bits >= log2_factorial(k)
        assert inner_bits >= k * math.log2(k) - 1.5 * k

    def test_scheme_is_stretch_one(self):
        scheme = ExplicitLowerBoundScheme.from_parameters(16, II_ALPHA)
        assert verify_scheme(scheme, sample_pairs=500, seed=9).ok()


class TestTheorem10:
    """n³/4 - o(n³) bits for full-information routing under α."""

    def test_per_node_quarter_square(self):
        scheme = FullInformationScheme(GRAPH, II_ALPHA)
        for u in (1, N // 2):
            ledger = Theorem10Codec(scheme, u).accounting(GRAPH)
            assert ledger["implied_function_bound"] >= 0.8 * N * N / 4
            assert ledger["function_bits"] >= ledger["implied_function_bound"]

    def test_upper_bound_cubic(self):
        total = FullInformationScheme(GRAPH, II_ALPHA).space_report().total_bits
        assert total <= N**3


class TestCorollary1Ordering:
    """The average-case menu, instantiated on one certified graph."""

    def test_full_hierarchy(self):
        two_level = TwoLevelScheme(GRAPH, II_ALPHA).space_report().total_bits
        labels = NeighborLabelScheme(GRAPH, II_GAMMA).space_report().total_bits
        centers = CenterScheme(GRAPH, II_ALPHA).space_report().total_bits
        hub = HubScheme(GRAPH, II_ALPHA).space_report().total_bits
        probe = ProbeScheme(GRAPH, II_ALPHA).space_report().total_bits
        full_info = FullInformationScheme(GRAPH, II_ALPHA).space_report().total_bits
        assert full_info > two_level > labels > centers > hub > probe


class TestClaimsAtSecondScale:
    """The headline budgets re-checked at a different size (guards against
    single-n flukes in the main battery above)."""

    N2 = 192
    GRAPH2 = gnp_random_graph(192, seed=4096)

    def test_certified(self):
        assert certify_random_graph(self.GRAPH2).certified

    def test_thm1_budget_and_stretch(self):
        scheme = TwoLevelScheme(self.GRAPH2, II_ALPHA)
        assert max(
            len(scheme.encode_function(u)) for u in self.GRAPH2.nodes
        ) <= 3 * self.N2
        report = verify_scheme(scheme, sample_pairs=300, seed=1)
        assert report.ok() and report.max_stretch == 1.0

    def test_thm3_thm4_stretch(self):
        for cls, bound in ((CenterScheme, 1.5), (HubScheme, 2.0)):
            scheme = cls(self.GRAPH2, II_ALPHA)
            report = verify_scheme(scheme, sample_pairs=300, seed=2)
            assert report.ok()
            assert report.max_stretch <= bound

    def test_thm5_linear(self):
        assert ProbeScheme(self.GRAPH2, II_ALPHA).space_report().total_bits == self.N2

    def test_hierarchy(self):
        totals = [
            TwoLevelScheme(self.GRAPH2, II_ALPHA).space_report().total_bits,
            NeighborLabelScheme(self.GRAPH2, II_GAMMA).space_report().total_bits,
            CenterScheme(self.GRAPH2, II_ALPHA).space_report().total_bits,
            HubScheme(self.GRAPH2, II_ALPHA).space_report().total_bits,
            ProbeScheme(self.GRAPH2, II_ALPHA).space_report().total_bits,
        ]
        assert totals == sorted(totals, reverse=True)
