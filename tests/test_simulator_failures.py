"""Edge-case tests for static failure sampling (`failures.py`)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.simulator import (
    sample_incident_failures,
    sample_link_failures,
    sample_node_failures,
)


class TestSampleIncidentFailures:
    def test_spare_link_survives(self):
        graph = star_graph(6)  # centre 1, leaves 2..6
        failed = sample_incident_failures(graph, 1, 4, seed=3, spare=(1, 4))
        assert len(failed) == 4
        assert frozenset((1, 4)) not in failed
        assert all(1 in link for link in failed)

    def test_spare_reversed_orientation_still_protected(self):
        graph = star_graph(6)
        failed = sample_incident_failures(graph, 1, 4, seed=3, spare=(4, 1))
        assert frozenset((1, 4)) not in failed

    def test_deterministic_per_seed(self):
        graph = gnp_random_graph(20, seed=5)
        a = sample_incident_failures(graph, 3, 5, seed=11)
        assert a == sample_incident_failures(graph, 3, 5, seed=11)
        differing = [
            seed
            for seed in range(10)
            if sample_incident_failures(graph, 3, 5, seed=seed) != a
        ]
        assert differing  # different seeds explore different sets

    def test_spare_shrinks_the_budget(self):
        graph = star_graph(5)  # centre has 4 incident links
        with pytest.raises(GraphError):
            sample_incident_failures(graph, 1, 4, seed=0, spare=(1, 2))
        # Without the spare all four can fail.
        assert len(sample_incident_failures(graph, 1, 4, seed=0)) == 4

    def test_too_many_rejected(self):
        with pytest.raises(GraphError):
            sample_incident_failures(path_graph(3), 2, 3)


class TestSampleNodeFailuresInteractions:
    def test_protect_everything_leaves_nothing_to_fail(self):
        graph = path_graph(4)
        with pytest.raises(GraphError):
            sample_node_failures(graph, 1, protect=set(graph.nodes))

    def test_protect_with_keep_connected_can_be_unsatisfiable(self):
        """On a path, protecting the endpoints forces failures among the
        interior, each of which would disconnect the protected pair."""
        graph = path_graph(5)
        with pytest.raises(GraphError):
            sample_node_failures(
                graph, 1, seed=0, protect={1, 5}, keep_connected=True
            )

    def test_protect_without_keep_connected_is_satisfiable(self):
        graph = path_graph(5)
        failed = sample_node_failures(
            graph, 1, seed=0, protect={1, 5}, keep_connected=False
        )
        assert len(failed) == 1
        assert failed.isdisjoint({1, 5})

    def test_keep_connected_skips_cut_vertices(self):
        graph = star_graph(6)
        for seed in range(5):
            failed = sample_node_failures(graph, 2, seed=seed)
            assert 1 not in failed  # the centre is the only cut vertex

    def test_protected_hub_with_connectivity(self):
        graph = gnp_random_graph(24, seed=5)
        failed = sample_node_failures(
            graph, 6, seed=2, protect={1, 2, 3}, keep_connected=True
        )
        assert len(failed) == 6
        assert failed.isdisjoint({1, 2, 3})
        survivors = [u for u in graph.nodes if u not in failed]
        seen = {survivors[0]}
        stack = [survivors[0]]
        while stack:
            u = stack.pop()
            for v in graph.neighbor_set(u):
                if v not in failed and v not in seen:
                    seen.add(v)
                    stack.append(v)
        assert len(seen) == len(survivors)


class TestSampleLinkFailures:
    def test_keep_connected_false_allows_bridges(self):
        graph = path_graph(4)  # every edge is a bridge
        failed = sample_link_failures(graph, 2, seed=1, keep_connected=False)
        assert len(failed) == 2

    def test_keep_connected_true_rejects_bridges(self):
        with pytest.raises(GraphError):
            sample_link_failures(path_graph(4), 1, seed=1)
