"""Linter plumbing: suppressions, reporters (JSON golden), runner, CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.lint import (
    Severity,
    SuppressionIndex,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_by_id,
)
from repro.cli import main


def dedent(source):
    return textwrap.dedent(source)


# -- suppression comments -----------------------------------------------------


def test_line_suppression_mutes_only_that_line():
    source = dedent(
        """
        total_bits = 10
        a = total_bits / 2  # repro-lint: disable=R001
        b = total_bits / 4
        """
    )
    result = lint_source(source, active_rules=[rule_by_id("R001")])
    assert len(result.findings) == 1
    assert result.findings[0].line == 4
    assert result.suppressed == 1


def test_line_suppression_lists_multiple_rules():
    source = "def f(x=[]):  # repro-lint: disable=R007,R008\n    return x\n"
    result = lint_source(
        source, active_rules=[rule_by_id("R007"), rule_by_id("R008")]
    )
    assert result.findings == []
    assert result.suppressed == 3  # two R007 findings + one R008


def test_file_suppression_and_all_keyword():
    source = dedent(
        """
        # repro-lint: disable-file=R001
        total_bits = 10
        a = total_bits / 2
        b = total_bits / 4
        """
    )
    result = lint_source(source, active_rules=[rule_by_id("R001")])
    assert result.findings == []
    assert result.suppressed == 2
    all_muted = lint_source(
        "def f(x=[]):  # repro-lint: disable=all\n    return x\n"
    )
    assert all_muted.findings == []


def test_suppression_index_parsing():
    index = SuppressionIndex.from_source(
        "x = 1  # repro-lint: disable=R001, r003\n"
        "# repro-lint: disable-file=R008\n"
    )
    assert index.is_suppressed("R001", 1)
    assert index.is_suppressed("R003", 1)
    assert not index.is_suppressed("R001", 2)
    assert index.is_suppressed("R008", 99)


# -- reporters ----------------------------------------------------------------

GOLDEN_SOURCE = "routing_bits = 8\nshare = routing_bits / 2\n"

GOLDEN_REPORT = {
    "version": 1,
    "files_checked": 1,
    "suppressed": 0,
    "counts_by_rule": {"R001": 1},
    "counts_by_severity": {"error": 1},
    "findings": [
        {
            "path": "golden.py",
            "line": 2,
            "col": 8,
            "rule": "R001",
            "severity": "error",
            "message": (
                "true division on bit quantity 'routing_bits'; bit counts "
                "are integers — use `//` or an integer helper (suppress if "
                "this is a deliberate ratio diagnostic)"
            ),
        }
    ],
}


def test_json_reporter_golden_output():
    result = lint_source(
        GOLDEN_SOURCE, path="golden.py", active_rules=[rule_by_id("R001")]
    )
    assert json.loads(render_json(result)) == GOLDEN_REPORT


def test_text_reporter_format_and_summary():
    result = lint_source(
        GOLDEN_SOURCE, path="golden.py", active_rules=[rule_by_id("R001")]
    )
    text = render_text(result)
    assert text.splitlines()[0].startswith("golden.py:2:8: R001 [error]")
    assert "1 finding(s) in 1 file(s) [R001×1]" in text
    clean = lint_source("x = 1\n")
    assert "clean: 0 findings" in render_text(clean)


# -- runner -------------------------------------------------------------------


def test_syntax_error_becomes_r000_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    result = lint_paths([str(bad)])
    assert result.files_checked == 1
    assert [f.rule_id for f in result.findings] == ["R000"]
    assert result.worst_severity() is Severity.ERROR


def test_runner_walks_directories_deterministically(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("half = 1 / 2\n")
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("def f(:\n")
    result = lint_paths([str(tmp_path)])
    assert result.files_checked == 2  # __pycache__ skipped
    assert result.findings == []  # no bit-named target or operand


def test_registry_has_exactly_the_documented_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == [f"R{n:03d}" for n in range(1, 15)]
    for rule in all_rules():
        assert rule.description
        assert rule.rationale


# -- CLI ----------------------------------------------------------------------


def test_cli_lint_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("def f(x: int) -> int:\n    return x\n")
    assert main(["lint", str(clean)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_cli_lint_findings_exit_nonzero_with_structured_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(GOLDEN_SOURCE)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:2:8: R001 [error]" in out
    assert main(["lint", str(bad), "--fail-on", "never"]) == 0


def test_cli_lint_json_format_and_output_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(GOLDEN_SOURCE)
    report_path = tmp_path / "findings.json"
    assert main(
        ["lint", str(bad), "--format", "json", "--output", str(report_path)]
    ) == 1
    stdout_report = json.loads(capsys.readouterr().out)
    file_report = json.loads(report_path.read_text())
    assert stdout_report == file_report
    assert file_report["counts_by_rule"] == {"R001": 1}
    assert file_report["findings"][0]["rule"] == "R001"


def test_cli_lint_select_subset_of_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(items=[]):\n    return items\n")
    assert main(["lint", str(bad), "--select", "R001"]) == 0
    capsys.readouterr()
    assert main(["lint", str(bad), "--select", "R008"]) == 1
    assert "R008" in capsys.readouterr().out
    assert main(["lint", str(bad), "--select", "R999"]) == 2


def test_cli_list_rules_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in [f"R{n:03d}" for n in range(1, 9)]:
        assert rule_id in out
    assert "rationale:" in out


def test_cli_lint_src_is_clean():
    """The merged tree must lint clean — the PR's acceptance criterion."""
    assert main(["lint", "src"]) == 0


@pytest.mark.parametrize(
    "source, rule",
    [
        ("total_bits = 3 / 1\n", "R001"),
        (
            "def f(r):\n"
            "    if r == DropReason.LINK_DOWN:\n"
            "        return 1\n"
            "    elif r == DropReason.NODE_DOWN:\n"
            "        return 2\n",
            "R002",
        ),
        ("import random\nx = random.choice([1, 2])\n", "R004"),
        ("try:\n    pass\nexcept:\n    pass\n", "R006"),
        ("def f(x):\n    return x\n", "R007"),
        ("def f(x=[]):\n    return x\n", "R008"),
    ],
)
def test_cli_lint_seeded_violations_fail(tmp_path, source, rule, capsys):
    bad = tmp_path / "seeded.py"
    bad.write_text(source)
    assert main(["lint", str(bad), "--select", rule]) == 1
    assert rule in capsys.readouterr().out
