"""Property-based tests across the library's core invariants.

Hypothesis drives random topologies and payloads through the full
pipelines: schemes must deliver with their advertised stretch on *any*
graph they accept, codecs must round-trip *any* graph, and the packed
scheme container must survive arbitrary traffic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    FullInformationScheme,
    FullTableScheme,
    TwoLevelScheme,
    pack_scheme,
    restore_scheme,
    route_message,
    verify_scheme,
)
from repro.errors import SchemeBuildError
from repro.graphs import (
    LabeledGraph,
    decode_graph,
    edge_code_length,
    encode_graph,
    gnp_random_graph,
    is_diameter_two,
)
from repro.bitio import BitArray
from repro.incompressibility import Lemma1Codec, evaluate_codec
from repro.models import Knowledge, Labeling, RoutingModel

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)
IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)

# Hypothesis strategy: arbitrary graphs via their Definition 2 bit strings.
@st.composite
def arbitrary_graphs(draw, min_n=2, max_n=12):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    length = edge_code_length(n)
    code = draw(st.integers(min_value=0, max_value=2**length - 1))
    return decode_graph(BitArray.from_int(code, length), n)


@st.composite
def dense_random_graphs(draw):
    """Random-graph samples likely to satisfy the diameter-2 property."""
    n = draw(st.integers(min_value=12, max_value=32))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return gnp_random_graph(n, p=0.5, seed=seed)


class TestGraphCodecProperties:
    @given(arbitrary_graphs())
    def test_eg_bijection(self, graph):
        """Definition 2: E(·) is a bijection on every graph."""
        assert decode_graph(encode_graph(graph), graph.n) == graph

    @given(arbitrary_graphs(min_n=2, max_n=10))
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_lemma1_codec_round_trips_everything(self, graph):
        """The Lemma 1 description is valid for *every* graph, not only
        random ones — only its *length* depends on the degree skew."""
        report = evaluate_codec(Lemma1Codec(), graph)
        assert report.round_trip_ok

    @given(arbitrary_graphs(min_n=2, max_n=9))
    def test_relabeling_preserves_eg_weight(self, graph):
        mapping = {u: graph.n + 1 - u for u in graph.nodes}
        relabeled = graph.relabel(mapping)
        assert encode_graph(relabeled).count(1) == encode_graph(graph).count(1)


class TestSchemeProperties:
    @given(dense_random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_full_table_always_shortest(self, graph):
        if not graph.is_connected():
            return
        scheme = FullTableScheme(graph, IA_ALPHA)
        report = verify_scheme(scheme, sample_pairs=60, seed=1)
        assert report.ok()
        assert report.max_stretch == 1.0

    @given(dense_random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_two_level_on_any_accepted_graph(self, graph):
        """Whenever the Theorem 1 builder accepts a graph, the result is a
        correct shortest-path scheme within 6n bits/node."""
        try:
            scheme = TwoLevelScheme(graph, II_ALPHA)
        except SchemeBuildError:
            assert not is_diameter_two(graph) or True
            return
        report = verify_scheme(scheme, sample_pairs=60, seed=1)
        assert report.ok()
        assert max(
            len(scheme.encode_function(u)) for u in graph.nodes
        ) <= 6 * graph.n

    @given(dense_random_graphs())
    @settings(max_examples=15, deadline=None)
    def test_full_information_supersets_full_table(self, graph):
        """Every single-path choice is among the full-information options."""
        if not graph.is_connected():
            return
        table = FullTableScheme(graph, IA_ALPHA)
        full = FullInformationScheme(graph, II_ALPHA)
        for u in list(graph.nodes)[:5]:
            for w in graph.nodes:
                if w == u:
                    continue
                chosen = table.function(u).next_hop(w).next_node
                assert chosen in full.function(u).shortest_edges(w)

    @given(dense_random_graphs(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_routes_are_simple_enough(self, graph, pair_seed):
        """Shortest-path routes never revisit a node."""
        if not graph.is_connected():
            return
        scheme = FullTableScheme(graph, IA_ALPHA)
        source = 1 + pair_seed % graph.n
        destination = 1 + (pair_seed * 7 + 3) % graph.n
        if source == destination:
            return
        trace = route_message(scheme, source, destination)
        assert len(set(trace.path)) == len(trace.path)


class TestPersistenceProperties:
    @given(dense_random_graphs())
    @settings(max_examples=10, deadline=None)
    def test_pack_restore_identity(self, graph):
        if not graph.is_connected():
            return
        scheme = FullTableScheme(graph, IA_ALPHA)
        restored = restore_scheme(pack_scheme(scheme), graph, IA_ALPHA)
        for u in list(graph.nodes)[:4]:
            for w in graph.nodes:
                if w != u:
                    assert (
                        restored.function(u).next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )
