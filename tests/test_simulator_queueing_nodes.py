"""Tests for queueing behaviour and node failures in the simulator."""

from __future__ import annotations

import pytest

from repro.core import build_scheme
from repro.errors import GraphError, RoutingError
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.simulator import (
    EventDrivenSimulator,
    Network,
    sample_node_failures,
    summarize,
)


class TestQueueing:
    def test_zero_service_time_is_pure_latency(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        sim = EventDrivenSimulator(scheme, link_latency=1.0)
        sim.inject(1, 4)
        (record,) = sim.run()
        assert record.latency == pytest.approx(3.0)

    def test_service_time_adds_per_hop(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        sim = EventDrivenSimulator(scheme, link_latency=1.0, node_service_time=0.5)
        sim.inject(1, 4)
        (record,) = sim.run()
        # Three forwarding nodes each add 0.5.
        assert record.latency == pytest.approx(3.0 + 3 * 0.5)

    def test_contention_serialises(self, model_ia_alpha):
        """Two messages through the same relay: the second waits."""
        scheme = build_scheme("full-table", star_graph(5), model_ia_alpha)
        sim = EventDrivenSimulator(scheme, link_latency=1.0, node_service_time=1.0)
        sim.inject(2, 3, at_time=0.0)
        sim.inject(4, 5, at_time=0.0)
        records = sorted(sim.run(), key=lambda r: r.latency)
        # Both go leaf → centre → leaf; the centre serialises them.
        assert records[0].latency < records[1].latency
        assert records[1].latency >= records[0].latency + 1.0

    def test_forward_counts_expose_hotspots(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        sim = EventDrivenSimulator(scheme, node_service_time=0.1)
        for i in range(40):
            sim.inject(1 + i % 24, 1 + (i * 7 + 3) % 24)
        sim.run()
        counts = sim.forward_counts
        hub = scheme.hub
        assert counts.get(hub, 0) >= max(
            count for node, count in counts.items() if node != hub
        ) / 2

    def test_queue_overflow_drops(self, model_ia_alpha):
        scheme = build_scheme("full-table", star_graph(8), model_ia_alpha)
        sim = EventDrivenSimulator(
            scheme, link_latency=0.1, node_service_time=5.0, queue_capacity=1
        )
        for leaf in range(2, 8):
            sim.inject(leaf, leaf + 1 if leaf < 7 else 2, at_time=0.0)
        records = sim.run()
        dropped = [r for r in records if not r.delivered]
        assert dropped
        assert all("queue overflow" in r.drop_reason for r in dropped)

    def test_rejects_bad_parameters(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        with pytest.raises(RoutingError):
            EventDrivenSimulator(scheme, node_service_time=-1.0)
        with pytest.raises(RoutingError):
            EventDrivenSimulator(scheme, queue_capacity=0)


class TestNodeFailures:
    def test_sampling_respects_protection(self):
        graph = gnp_random_graph(24, seed=5)
        failed = sample_node_failures(graph, 5, seed=1, protect={1, 2})
        assert len(failed) == 5
        assert not failed & {1, 2}

    def test_sampling_keeps_survivors_connected(self):
        graph = gnp_random_graph(24, seed=5)
        failed = sample_node_failures(graph, 8, seed=2)
        survivors = [u for u in graph.nodes if u not in failed]
        seen = {survivors[0]}
        stack = [survivors[0]]
        while stack:
            u = stack.pop()
            for v in graph.neighbor_set(u):
                if v in seen or v in failed:
                    continue
                seen.add(v)
                stack.append(v)
        assert len(seen) == len(survivors)

    def test_too_many_failures_rejected(self):
        with pytest.raises(GraphError):
            sample_node_failures(path_graph(4), 4)

    def test_deterministic(self):
        graph = gnp_random_graph(24, seed=5)
        assert sample_node_failures(graph, 4, seed=9) == sample_node_failures(
            graph, 4, seed=9
        )

    def test_single_path_drops_through_dead_node(self, model_ia_alpha):
        network = Network(
            build_scheme("full-table", path_graph(5), model_ia_alpha),
            failed_nodes=[3],
        )
        record = network.route(1, 5)
        assert not record.delivered
        assert "down" in record.drop_reason

    def test_endpoint_failure_reported(self, model_ia_alpha):
        network = Network(
            build_scheme("full-table", path_graph(4), model_ia_alpha)
        )
        network.fail_node(4)
        record = network.route(1, 4)
        assert not record.delivered
        assert "endpoint" in record.drop_reason
        network.restore_node(4)
        assert network.route(1, 4).delivered

    def test_full_information_routes_around_dead_nodes(self, model_ii_alpha):
        graph = gnp_random_graph(32, seed=12)
        scheme = build_scheme("full-information", graph, model_ii_alpha)
        failed = sample_node_failures(graph, 6, seed=3, protect={1, 2, 31, 32})
        network = Network(scheme, failed_nodes=failed)
        pairs = [(1, 31), (1, 32), (2, 31), (2, 32)]
        records = [network.route(u, w) for u, w in pairs]
        single = Network(
            build_scheme("thm1-two-level", graph, model_ii_alpha),
            failed_nodes=failed,
        )
        single_records = [single.route(u, w) for u, w in pairs]
        assert sum(r.delivered for r in records) >= sum(
            r.delivered for r in single_records
        )


class TestEventEngineFailures:
    def test_single_path_drops_on_failed_link(self, model_ia_alpha):
        """The event engine honours link failures like the walker does."""
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        sim = EventDrivenSimulator(scheme, failed_links=[(2, 3)])
        sim.inject(1, 4)
        (record,) = sim.run()
        assert not record.delivered
        assert "down" in record.drop_reason

    def test_full_information_reroutes_in_event_engine(self, model_ii_alpha):
        from repro.graphs import cycle_graph

        scheme = build_scheme("full-information", cycle_graph(4), model_ii_alpha)
        sim = EventDrivenSimulator(scheme, failed_links=[(1, 2)])
        sim.inject(1, 3)
        (record,) = sim.run()
        assert record.delivered
        assert record.path == (1, 4, 3)
