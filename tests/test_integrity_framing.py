"""Unit tests for the CRC/parity framing layer (repro.integrity.framing)."""

from __future__ import annotations

import pytest

from repro.bitio import BitArray
from repro.errors import IntegrityError
from repro.integrity import (
    FramingPolicy,
    frame_bits,
    unframe_bits,
    verify_frame,
)

CHECKED = (FramingPolicy.PARITY, FramingPolicy.CRC8, FramingPolicy.CRC16)

PAYLOADS = [
    BitArray(()),
    BitArray((1,)),
    BitArray((0, 1, 1, 0, 1)),
    BitArray.from_int(0xDEADBEEF, 32),
    BitArray([i % 3 == 0 for i in range(97)]),
]


@pytest.mark.parametrize("policy", list(FramingPolicy))
@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: f"len{len(p)}")
def test_round_trip(policy, payload):
    framed = frame_bits(payload, policy)
    assert len(framed) == len(payload) + policy.overhead_bits
    assert unframe_bits(framed, policy) == payload
    assert verify_frame(framed, policy)


def test_overhead_bits_values():
    assert FramingPolicy.NONE.overhead_bits == 0
    assert FramingPolicy.PARITY.overhead_bits == 1
    assert FramingPolicy.CRC8.overhead_bits == 8
    assert FramingPolicy.CRC16.overhead_bits == 16


def test_none_policy_is_identity():
    payload = BitArray((1, 0, 1, 1))
    assert frame_bits(payload, FramingPolicy.NONE) == payload
    assert unframe_bits(payload, FramingPolicy.NONE) == payload


@pytest.mark.parametrize("policy", CHECKED)
@pytest.mark.parametrize("payload", PAYLOADS[1:], ids=lambda p: f"len{len(p)}")
def test_every_single_bit_flip_is_detected(policy, payload):
    # Exhaustive over every position of payload AND checksum: parity and
    # both CRCs (polynomials with more than one term) detect all
    # single-bit errors, the acceptance guarantee of the framing layer.
    framed = frame_bits(payload, policy)
    for position in range(len(framed)):
        flipped = list(framed)
        flipped[position] ^= 1
        mutated = BitArray(flipped)
        assert not verify_frame(mutated, policy)
        with pytest.raises(IntegrityError):
            unframe_bits(mutated, policy, node=7)


@pytest.mark.parametrize("policy", (FramingPolicy.CRC8, FramingPolicy.CRC16))
def test_truncation_detection_rate(policy):
    # Truncating c trailing bits evades the checksum with probability
    # ~2^-c (the lost bits must be consistent with the shifted register),
    # so assert rates over many payload/cut pairs, not any single case:
    # overall well above the default TRUNCATE span's ~94%, and perfect in
    # this sample for deep cuts.
    rng = __import__("random").Random(17)
    shallow = []
    deep = []
    for _ in range(50):
        payload = BitArray([rng.randrange(2) for _ in range(48)])
        framed = frame_bits(payload, policy)
        for cut in range(1, 17):
            caught = not verify_frame(framed[: len(framed) - cut], policy)
            (shallow if cut < 8 else deep).append(caught)
    # Expected shallow rate is the mean of 1 - 2^-c over c in 1..7,
    # about 0.86; assert with slack for sampling noise.
    assert sum(shallow) / len(shallow) >= 0.75
    assert sum(deep) / len(deep) >= 0.99


@pytest.mark.parametrize("policy", (FramingPolicy.CRC8, FramingPolicy.CRC16))
def test_all_zero_table_truncation_is_detected(policy):
    # The all-ones register init exists for exactly this case: an init-0
    # CRC of an all-zero payload is zero at every length, so truncating
    # an all-zero framed table would verify at *any* cut depth.
    payload = BitArray([0] * 40)
    framed = frame_bits(payload, policy)
    caught = [
        not verify_frame(framed[: len(framed) - cut], policy)
        for cut in range(3, len(payload))
    ]
    assert all(caught)


@pytest.mark.parametrize("policy", CHECKED)
def test_frame_shorter_than_checksum_is_detected(policy):
    short = BitArray([1] * (policy.overhead_bits - 1))
    assert not verify_frame(short, policy)
    with pytest.raises(IntegrityError):
        unframe_bits(short, policy)


@pytest.mark.parametrize(
    "policy,span",
    [(FramingPolicy.CRC8, 8), (FramingPolicy.CRC16, 16)],
)
def test_crc_detects_bursts_up_to_its_width(policy, span):
    payload = BitArray([i % 5 == 1 for i in range(64)])
    framed = frame_bits(payload, policy)
    for length in range(1, span + 1):
        for start in range(len(framed) - length + 1):
            flipped = list(framed)
            for position in range(start, start + length):
                flipped[position] ^= 1
            assert not verify_frame(BitArray(flipped), policy)


def test_parity_misses_even_weight_errors():
    # The documented limitation that motivates the CRC policies.
    payload = BitArray([1, 0, 1, 1, 0, 0, 1, 0])
    framed = frame_bits(payload, FramingPolicy.PARITY)
    flipped = list(framed)
    flipped[0] ^= 1
    flipped[3] ^= 1
    assert verify_frame(BitArray(flipped), FramingPolicy.PARITY)


def test_integrity_error_names_the_node():
    payload = BitArray((1, 0, 1, 1, 0, 1, 0, 0, 1))
    framed = frame_bits(payload, FramingPolicy.CRC8)
    flipped = list(framed)
    flipped[2] ^= 1
    with pytest.raises(IntegrityError, match="node 42"):
        unframe_bits(BitArray(flipped), FramingPolicy.CRC8, node=42)
