"""Tests for the Theorem 9 explicit lower-bound family (Figure 1)."""

from __future__ import annotations

import math
import random

import pytest

from repro.bitio import permutation_code_width
from repro.core import route_message, verify_scheme
from repro.errors import SchemeBuildError
from repro.graphs import gnp_random_graph, lower_bound_graph
from repro.lowerbounds import (
    ExplicitLowerBoundScheme,
    detour_stretch,
    recover_outer_assignment,
    theorem9_theory_bits,
)
from repro.models import Knowledge, Labeling, RoutingModel


def shuffled_assignment(k: int, seed: int) -> list[int]:
    labels = list(range(2 * k + 1, 3 * k + 1))
    random.Random(seed).shuffle(labels)
    return labels


class TestConstruction:
    def test_from_parameters(self, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.from_parameters(6, model_ii_alpha)
        assert scheme.k == 6
        assert scheme.graph.n == 18

    def test_rejects_relabeling_models(self, model_ii_beta):
        """Theorem 9 is a model-α statement."""
        with pytest.raises(Exception):
            ExplicitLowerBoundScheme.from_parameters(4, model_ii_beta)

    def test_rejects_non_gb_graph(self, model_ii_alpha):
        graph = gnp_random_graph(18, seed=2)
        with pytest.raises(SchemeBuildError):
            ExplicitLowerBoundScheme(graph, model_ii_alpha)

    def test_rejects_wrong_n(self, model_ii_alpha):
        graph = gnp_random_graph(17, seed=2)
        with pytest.raises(SchemeBuildError):
            ExplicitLowerBoundScheme(graph, model_ii_alpha)

    def test_partner_map(self, model_ii_alpha):
        k = 5
        assignment = shuffled_assignment(k, 9)
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=assignment
        )
        for i, outer in enumerate(assignment):
            assert scheme.partner_of(k + 1 + i) == outer


class TestRouting:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_shortest_path_everywhere(self, seed, model_ii_alpha):
        k = 6
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=shuffled_assignment(k, seed)
        )
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_inner_to_outer_uses_partner(self, model_ii_alpha):
        """The forced route of Theorem 9: inner → correct middle → outer."""
        k = 5
        assignment = shuffled_assignment(k, 3)
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=assignment
        )
        for inner in scheme.inner_nodes:
            for i, outer in enumerate(assignment):
                trace = route_message(scheme, inner, outer)
                assert trace.hops == 2
                assert trace.path[1] == k + 1 + i

    def test_outer_to_outer_diameter(self, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.from_parameters(4, model_ii_alpha)
        trace = route_message(scheme, 9, 12)
        assert trace.hops == 4  # outer → middle → inner → middle → outer


class TestPermutationRecovery:
    @pytest.mark.parametrize("seed", [0, 2, 8])
    def test_every_inner_node_reveals_the_permutation(self, seed, model_ii_alpha):
        k = 7
        assignment = shuffled_assignment(k, seed)
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=assignment
        )
        for inner in scheme.inner_nodes:
            assert recover_outer_assignment(scheme, inner) == tuple(assignment)

    def test_recovery_rejects_non_inner(self, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.from_parameters(4, model_ii_alpha)
        with pytest.raises(Exception):
            recover_outer_assignment(scheme, 5)  # a middle node

    def test_distinct_assignments_distinct_tables(self, model_ii_alpha):
        k = 5
        a = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=shuffled_assignment(k, 1)
        )
        b = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=shuffled_assignment(k, 2)
        )
        assert a.encode_function(1) != b.encode_function(1)


class TestEncoding:
    def test_round_trip_all_layers(self, model_ii_alpha):
        k = 6
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=shuffled_assignment(k, 4)
        )
        for u in (1, k + 2, 2 * k + 3):
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in scheme.graph.nodes:
                if w != u:
                    assert (
                        decoded.next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )

    def test_inner_bits_are_log_k_factorial(self, model_ii_alpha):
        k = 8
        scheme = ExplicitLowerBoundScheme.from_parameters(k, model_ii_alpha)
        for inner in scheme.inner_nodes:
            assert len(scheme.encode_function(inner)) == permutation_code_width(k)

    def test_outer_bits_are_zero(self, model_ii_alpha):
        k = 5
        scheme = ExplicitLowerBoundScheme.from_parameters(k, model_ii_alpha)
        for outer in range(2 * k + 1, 3 * k + 1):
            assert len(scheme.encode_function(outer)) == 0

    def test_total_matches_theory_scale(self, model_ii_alpha):
        """Inner layer pays k · log k! ≈ (n²/9) log n bits."""
        k = 16
        scheme = ExplicitLowerBoundScheme.from_parameters(k, model_ii_alpha)
        inner_bits = sum(
            len(scheme.encode_function(u)) for u in scheme.inner_nodes
        )
        theory = theorem9_theory_bits(k)
        assert theory <= inner_bits <= theory + k


class TestDetour:
    def test_wrong_middle_costs_stretch_two(self):
        """Any deviation from the partner edge is already stretch ≥ 2."""
        for k in (3, 6, 10):
            assert detour_stretch(k) == 2.0

    def test_all_wrong_middles(self):
        k = 5
        for offset in range(1, k):
            assert detour_stretch(k, wrong_offset=offset) == 2.0


class TestScaling:
    def test_theory_bits_scale(self):
        """k log k per inner node: the Ω(n² log n) of Theorem 9."""
        assert theorem9_theory_bits(32) >= 32 * (32 * math.log2(32) - 1.443 * 32)

    def test_random_relabelling_tables_incompressible(self, model_ii_alpha):
        """The paper's counting step: almost all permutations π have
        C(π) ≈ k log k, so the inner tables resist real compressors too."""
        from repro.kolmogorov import best_estimate

        k = 256
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, model_ii_alpha, outer_assignment=shuffled_assignment(k, 5)
        )
        estimate = best_estimate(scheme.encode_function(1))
        assert estimate.bits >= 0.9 * estimate.original_bits

    def test_identity_relabelling_is_compressible(self, model_ii_alpha):
        """The 1/2^k exceptional fraction exists: the identity assignment's
        table collapses (Lehmer rank 0)."""
        from repro.kolmogorov import best_estimate

        k = 256
        scheme = ExplicitLowerBoundScheme.from_parameters(k, model_ii_alpha)
        estimate = best_estimate(scheme.encode_function(1))
        assert estimate.deficiency > 0.8 * estimate.original_bits
