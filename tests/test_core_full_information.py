"""Tests for the full-information shortest path scheme."""

from __future__ import annotations

import pytest

from repro.core import FullInformationScheme, verify_scheme
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import LabeledGraph, cycle_graph, gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel


class TestOptions:
    def test_all_options_are_shortest(self, random_graph_32, model_ii_alpha):
        from repro.graphs import distance_matrix

        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        dist = distance_matrix(random_graph_32)
        for u in (1, 17):
            function = scheme.function(u)
            for w in random_graph_32.nodes:
                if w == u:
                    continue
                for v in function.shortest_edges(w):
                    assert dist[v - 1, w - 1] == dist[u - 1, w - 1] - 1

    def test_options_are_complete(self, random_graph_32, model_ii_alpha):
        """Every shortest-path neighbour appears — 'all edges incident to u'."""
        from repro.graphs import distance_matrix

        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        dist = distance_matrix(random_graph_32)
        u = 5
        function = scheme.function(u)
        for w in random_graph_32.nodes:
            if w == u:
                continue
            expected = {
                v
                for v in random_graph_32.neighbors(u)
                if dist[v - 1, w - 1] == dist[u - 1, w - 1] - 1
            }
            assert set(function.shortest_edges(w)) == expected

    def test_neighbor_entry_is_direct_edge(self, random_graph_32, model_ii_alpha):
        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        function = scheme.function(4)
        for w in random_graph_32.neighbors(4):
            assert function.shortest_edges(w) == (w,)

    def test_multiple_options_on_cycle(self, model_ii_alpha):
        graph = cycle_graph(4)
        scheme = FullInformationScheme(graph, model_ii_alpha)
        # Opposite corners of C4 have two shortest paths.
        assert len(scheme.function(1).shortest_edges(3)) == 2

    def test_unknown_destination_raises(self, model_ii_alpha):
        scheme = FullInformationScheme(cycle_graph(4), model_ii_alpha)
        with pytest.raises(RoutingError):
            scheme.function(1).shortest_edges(1)

    def test_disconnected_rejected(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError):
            FullInformationScheme(LabeledGraph(3, [(1, 2)]), model_ii_alpha)


class TestRouting:
    def test_default_routing_is_shortest(self, model_ii_alpha):
        graph = gnp_random_graph(40, seed=44)
        scheme = FullInformationScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_avoiding_blocked_stays_shortest(self, random_graph_32, model_ii_alpha):
        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        u = 2
        function = scheme.function(u)
        for w in random_graph_32.non_neighbors(u):
            options = function.shortest_edges(w)
            if len(options) >= 2:
                decision = function.next_hop_avoiding(w, blocked=[options[0]])
                assert decision.next_node in options[1:]

    def test_avoiding_all_raises(self, random_graph_32, model_ii_alpha):
        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        function = scheme.function(2)
        w = random_graph_32.non_neighbors(2)[0]
        with pytest.raises(RoutingError):
            function.next_hop_avoiding(w, blocked=function.shortest_edges(w))


class TestEncoding:
    def test_bitmap_size(self, random_graph_32, model_ii_alpha):
        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        for u in (1, 9):
            expected = (32 - 1) * random_graph_32.degree(u)
            assert len(scheme.encode_function(u)) == expected

    def test_round_trip(self, random_graph_32, model_ii_alpha):
        scheme = FullInformationScheme(random_graph_32, model_ii_alpha)
        for u in (1, 16, 32):
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            original = scheme.function(u)
            for w in random_graph_32.nodes:
                if w != u:
                    assert decoded.shortest_edges(w) == original.shortest_edges(w)

    def test_total_is_cubic_order(self, model_ii_alpha):
        """Upper bound O(n³); Theorem 10's lower bound is n³/4."""
        n = 48
        graph = gnp_random_graph(n, seed=3)
        total = FullInformationScheme(graph, model_ii_alpha).space_report().total_bits
        assert n**3 / 8 <= total <= n**3
