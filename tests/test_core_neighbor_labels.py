"""Tests for the Theorem 2 neighbour-label scheme (model II ∧ γ)."""

from __future__ import annotations

import math

import pytest

from repro.core import NeighborLabelScheme, NodeAddress, verify_scheme
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel, minimal_label_bits


class TestModelRestrictions:
    def test_requires_gamma(self, model_ii_alpha, model_ii_beta):
        graph = gnp_random_graph(24, seed=2)
        for model in (model_ii_alpha, model_ii_beta):
            with pytest.raises(Exception):
                NeighborLabelScheme(graph, model)

    def test_requires_neighbors_known(self):
        graph = gnp_random_graph(24, seed=2)
        with pytest.raises(Exception):
            NeighborLabelScheme(
                graph, RoutingModel(Knowledge.IB, Labeling.GAMMA)
            )

    def test_accepts_ii_gamma(self, model_ii_gamma):
        NeighborLabelScheme(gnp_random_graph(24, seed=2), model_ii_gamma)

    def test_rejects_large_diameter(self, model_ii_gamma):
        with pytest.raises(SchemeBuildError):
            NeighborLabelScheme(path_graph(8), model_ii_gamma)


class TestAddressing:
    def test_address_embeds_cover(self, model_ii_gamma):
        graph = gnp_random_graph(32, seed=9)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        for v in (1, 16, 32):
            address = scheme.address_of(v)
            assert isinstance(address, NodeAddress)
            assert address.original == v
            assert all(graph.has_edge(v, w) for w in address.cover)

    def test_node_of_address_inverts(self, model_ii_gamma):
        graph = gnp_random_graph(32, seed=9)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        for v in graph.nodes:
            assert scheme.node_of_address(scheme.address_of(v)) == v

    def test_cover_property(self, model_ii_gamma):
        """Every non-neighbour of v is adjacent to someone in f(v)."""
        graph = gnp_random_graph(32, seed=9)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        for v in graph.nodes:
            cover = scheme.address_of(v).cover
            for u in graph.non_neighbors(v):
                assert any(graph.has_edge(u, w) for w in cover)


class TestCorrectness:
    def test_shortest_paths(self, model_ii_gamma):
        graph = gnp_random_graph(48, seed=14)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_plain_int_address_rejected(self, model_ii_gamma):
        graph = gnp_random_graph(24, seed=2)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        with pytest.raises(RoutingError):
            scheme.function(1).next_hop(5)


class TestAccounting:
    def test_function_bits_are_constant(self, model_ii_gamma):
        graph = gnp_random_graph(40, seed=3)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        sizes = {len(scheme.encode_function(u)) for u in graph.nodes}
        assert sizes == {1}

    def test_label_bits_charged(self, model_ii_gamma):
        graph = gnp_random_graph(40, seed=3)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        report = scheme.space_report()
        assert report.label_bits > 0
        for entry in report.per_node:
            address = scheme.address_of(entry.node)
            assert entry.label_bits == (1 + len(address.cover)) * minimal_label_bits(40)

    def test_label_size_matches_theorem2(self, model_ii_gamma):
        """Labels occupy at most (1 + (c+3) log n) log n bits, c = 3."""
        for n in (64, 128):
            graph = gnp_random_graph(n, seed=n)
            scheme = NeighborLabelScheme(graph, model_ii_gamma)
            limit = (1 + 6 * math.log2(n)) * minimal_label_bits(n)
            for v in graph.nodes:
                assert scheme.label_bits(v) <= limit

    def test_total_is_n_polylog(self, model_ii_gamma):
        """O(n log² n) total — far below the Θ(n²) of model α."""
        n = 128
        graph = gnp_random_graph(n, seed=77)
        total = NeighborLabelScheme(graph, model_ii_gamma).space_report().total_bits
        assert total <= 8 * n * math.log2(n) ** 2
        assert total < n * n / 2

    def test_decode_round_trip(self, model_ii_gamma):
        graph = gnp_random_graph(24, seed=2)
        scheme = NeighborLabelScheme(graph, model_ii_gamma)
        decoded = scheme.decode_function(3, scheme.encode_function(3))
        address = scheme.address_of(graph.non_neighbors(3)[0])
        assert decoded.next_hop(address).next_node == scheme.function(3).next_hop(
            address
        ).next_node
