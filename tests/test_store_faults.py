"""The filesystem durability model and the seeded fault-injection shim."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store import (
    FaultyFilesystem,
    LocalFilesystem,
    MemoryFilesystem,
    SimulatedCrash,
    StoreFault,
    StoreFaultKind,
    storage_faults,
)


class TestMemoryFilesystem:
    def test_append_is_visible_but_not_durable(self):
        fs = MemoryFilesystem()
        fs.append("f", b"hello")
        assert fs.read("f") == b"hello"
        assert fs.durable_bytes("f") == b""
        fs.crash()
        assert not fs.exists("f")

    def test_sync_promotes_to_durable(self):
        fs = MemoryFilesystem()
        fs.append("f", b"hello")
        fs.sync("f")
        fs.append("f", b" world")
        fs.crash()
        assert fs.read("f") == b"hello"

    def test_replace_is_atomic_and_durable(self):
        fs = MemoryFilesystem()
        fs.replace("f", b"new")
        fs.crash()
        assert fs.read("f") == b"new"

    def test_delete_and_list(self):
        fs = MemoryFilesystem()
        fs.replace("b", b"x")
        fs.replace("a", b"y")
        assert fs.list() == ["a", "b"]
        fs.delete("a")
        fs.delete("missing")  # idempotent
        assert fs.list() == ["b"]

    def test_corrupt_bit_flips_modulo_length(self):
        fs = MemoryFilesystem()
        fs.replace("f", b"\x00\x00")
        position = fs.corrupt_bit("f", 17)  # 17 % 16 = 1
        assert position == 1
        assert fs.read("f") == b"\x40\x00"
        assert fs.durable_bytes("f") == b"\x40\x00"

    def test_corrupt_bit_missing_file_raises(self):
        with pytest.raises(StoreError, match="corrupt"):
            MemoryFilesystem().corrupt_bit("missing", 0)


class TestLocalFilesystem:
    def test_mirrors_memory_semantics(self, tmp_path):
        fs = LocalFilesystem(str(tmp_path / "store"))
        fs.append("f", b"abc")
        fs.append("f", b"def")
        fs.sync("f")
        assert fs.read("f") == b"abcdef"
        fs.replace("f", b"short")
        assert fs.read("f") == b"short"
        assert fs.exists("f") and not fs.exists("g")
        assert fs.list() == ["f"]
        fs.delete("f")
        assert fs.list() == []

    def test_read_missing_raises_store_error(self, tmp_path):
        fs = LocalFilesystem(str(tmp_path))
        with pytest.raises(StoreError, match="cannot read"):
            fs.read("missing")


class TestFaultyFilesystem:
    def test_torn_write_keeps_prefix_and_crashes(self):
        inner = MemoryFilesystem()
        fs = FaultyFilesystem(
            inner,
            [StoreFault(kind=StoreFaultKind.TORN_WRITE, op_index=0,
                        fraction=0.5)],
        )
        with pytest.raises(SimulatedCrash):
            fs.append("j", b"12345678")
        # The torn prefix is durable: it is what recovery must face.
        inner.crash()
        assert inner.read("j") == b"1234"

    def test_short_write_truncates_silently(self):
        inner = MemoryFilesystem()
        fs = FaultyFilesystem(
            inner,
            [StoreFault(kind=StoreFaultKind.SHORT_WRITE, op_index=1,
                        fraction=0.25)],
        )
        fs.append("j", b"aaaa")   # op 0: untouched
        fs.append("j", b"bbbb")   # op 1: only one byte lands
        assert inner.read("j") == b"aaaab"

    def test_lost_fsync_leaves_data_volatile(self):
        inner = MemoryFilesystem()
        fs = FaultyFilesystem(
            inner, [StoreFault(kind=StoreFaultKind.LOST_FSYNC, op_index=0)]
        )
        fs.append("j", b"data")
        fs.sync("j")  # lies
        inner.crash()
        assert not inner.exists("j")

    def test_rename_fail_raises_and_preserves_old(self):
        inner = MemoryFilesystem()
        inner.replace("snap", b"old")
        fs = FaultyFilesystem(
            inner, [StoreFault(kind=StoreFaultKind.RENAME_FAIL, op_index=0)]
        )
        with pytest.raises(StoreError, match="rename fail"):
            fs.replace("snap", b"new")
        assert inner.read("snap") == b"old"
        fs.replace("snap", b"new")  # fault consumed: next one lands
        assert inner.read("snap") == b"new"

    def test_bit_rot_applied_post_hoc(self):
        inner = MemoryFilesystem()
        inner.replace("journal.log", b"\x00")
        fs = FaultyFilesystem(
            inner, [StoreFault(kind=StoreFaultKind.BIT_ROT, bit_offset=3)]
        )
        assert inner.read("journal.log") == b"\x00"  # not yet
        positions = fs.rot()
        assert positions == [3]
        assert inner.read("journal.log") == b"\x10"
        assert fs.pending == []

    def test_path_pinned_fault_skips_other_files(self):
        inner = MemoryFilesystem()
        fs = FaultyFilesystem(
            inner,
            [StoreFault(kind=StoreFaultKind.SHORT_WRITE, op_index=0,
                        fraction=0.0, path="victim")],
        )
        fs.append("other", b"ok")      # op 0, wrong path: untouched
        assert inner.read("other") == b"ok"
        assert fs.pending  # still armed

    def test_write_faults_share_one_op_counter(self):
        # Torn and short writes both target "the k-th append", so a plan
        # mixing them must not double-count operations.
        inner = MemoryFilesystem()
        fs = FaultyFilesystem(
            inner,
            [StoreFault(kind=StoreFaultKind.SHORT_WRITE, op_index=1,
                        fraction=0.5)],
        )
        fs.append("j", b"xx")
        fs.append("j", b"yyyy")
        assert inner.read("j") == b"xxyy"

    def test_validation(self):
        with pytest.raises(StoreError):
            StoreFault(kind=StoreFaultKind.TORN_WRITE, op_index=-1)
        with pytest.raises(StoreError):
            StoreFault(kind=StoreFaultKind.TORN_WRITE, fraction=1.0)
        with pytest.raises(StoreError):
            StoreFault(kind=StoreFaultKind.BIT_ROT, bit_offset=-1)


class TestStorageFaults:
    def test_same_seed_same_plan(self):
        assert storage_faults(10, seed=42) == storage_faults(10, seed=42)

    def test_different_seed_different_plan(self):
        assert storage_faults(10, seed=1) != storage_faults(10, seed=2)

    def test_respects_kind_restriction(self):
        plan = storage_faults(
            8, seed=3, kinds=(StoreFaultKind.BIT_ROT,)
        )
        assert plan and all(
            fault.kind is StoreFaultKind.BIT_ROT for fault in plan
        )

    def test_no_duplicate_op_index_per_kind(self):
        plan = storage_faults(40, seed=9, horizon_ops=8)
        seen = set()
        for fault in plan:
            key = (fault.kind, fault.op_index)
            assert key not in seen
            seen.add(key)

    def test_validation(self):
        with pytest.raises(StoreError):
            storage_faults(-1, seed=0)
        with pytest.raises(StoreError):
            storage_faults(1, seed=0, kinds=())
        with pytest.raises(StoreError):
            storage_faults(1, seed=0, horizon_ops=0)
