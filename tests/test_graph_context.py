"""Tests for the shared derived-computation layer (`repro.graphs.context`).

Three families:

* property tests — every :class:`GraphContext` accessor agrees with the
  raw :mod:`repro.graphs.properties` computation on random graphs;
* caching semantics — an untouched graph never recomputes, an
  invalidated (corrupted/healed) one does, the pipeline computes the
  distance matrix exactly once, and the store aliases equal graphs;
* integration — the corruption self-healer sources pristine bits from
  the context, and tracer ``ctx`` spans mark fresh computations only.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_scheme, verify_scheme
from repro.errors import GraphError
from repro.graphs import (
    GraphContext,
    LabeledGraph,
    clear_context_cache,
    degree_statistics,
    distance_matrix,
    get_context,
    gnp_random_graph,
    path_graph,
    structural_fingerprint,
)
from repro.graphs.context import CTX_COUNTER
from repro.graphs.ports import PortAssignment
from repro.graphs.properties import eccentricity
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import MetricsRegistry, set_registry
from repro.observability.tracer import RecordingTracer
from repro.simulator import MutationKind, Network, TableMutation

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture(autouse=True)
def clear_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def _ctx_count(registry, kind, op):
    return registry.counter(CTX_COUNTER, kind=kind, op=op).value


random_graph = st.builds(
    gnp_random_graph,
    st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


# -- accessors agree with the raw computations --------------------------------


class TestAccessorsMatchRawProperties:
    @given(graph=random_graph)
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_distances(self, graph):
        ctx = GraphContext(graph)
        np.testing.assert_array_equal(ctx.distances(), distance_matrix(graph))
        np.testing.assert_array_equal(
            ctx.distances(max_distance=2), distance_matrix(graph, max_distance=2)
        )

    @given(graph=random_graph, data=st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_bfs_tree_depths_are_the_distance_row(self, graph, data):
        root = data.draw(st.integers(min_value=1, max_value=graph.n))
        ctx = GraphContext(graph)
        parent = ctx.bfs_tree(root)
        assert parent[root] == root
        dist = distance_matrix(graph)
        reachable = {
            v for v in graph.nodes if dist[root - 1][v - 1] >= 0
        }
        assert set(parent) == reachable
        for v, p in parent.items():
            if v == root:
                continue
            # Each parent edge descends exactly one BFS level.
            assert p in graph.neighbors(v)
            assert dist[root - 1][v - 1] == dist[root - 1][p - 1] + 1

    @given(graph=random_graph, data=st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_ball_is_the_distance_ball(self, graph, data):
        center = data.draw(st.integers(min_value=1, max_value=graph.n))
        radius = data.draw(st.integers(min_value=0, max_value=4))
        ctx = GraphContext(graph)
        dist = distance_matrix(graph)
        expected = {
            v
            for v in graph.nodes
            if 0 <= dist[center - 1][v - 1] <= radius
        }
        assert ctx.ball(center, radius) == expected

    @given(graph=random_graph, data=st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_eccentricity(self, graph, data):
        u = data.draw(st.integers(min_value=1, max_value=graph.n))
        ctx = GraphContext(graph)
        if (distance_matrix(graph)[u - 1] < 0).any():
            with pytest.raises(GraphError):
                ctx.eccentricity(u)
        else:
            assert ctx.eccentricity(u) == eccentricity(graph, u)
            # The distance-matrix fast path agrees with the BFS path.
            warm = GraphContext(graph)
            warm.distances()
            assert warm.eccentricity(u) == ctx.eccentricity(u)

    @given(graph=random_graph, data=st.data())
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_degree_stats_adjacency_and_ports(self, graph, data):
        u = data.draw(st.integers(min_value=1, max_value=graph.n))
        ctx = GraphContext(graph)
        assert ctx.degree_stats() == degree_statistics(graph)
        assert ctx.sorted_adjacency(u) == graph.neighbors(u)
        ports = ctx.port_table()
        assert ports.is_identity()
        identity = PortAssignment.identity(graph)
        for v in graph.neighbors(u):
            assert ports.port(u, v) == identity.port(u, v)


# -- caching and invalidation semantics ---------------------------------------


class TestCachingSemantics:
    def test_untouched_graph_never_recomputes(self, registry):
        graph = gnp_random_graph(16, seed=1)
        ctx = get_context(graph)
        first = ctx.distances()
        for _ in range(5):
            assert ctx.distances() is first
            ctx.bfs_tree(1)
            ctx.degree_stats()
        stats = ctx.cache_stats()
        assert stats["misses"] == 3  # distances, bfs_tree(1), degree_stats
        assert stats["hits"] == 13  # 5 distances + 4 bfs_tree + 4 degree_stats
        assert stats["invalidations"] == 0
        assert _ctx_count(registry, "distances", "miss") == 1

    def test_invalidate_forces_one_recompute(self, registry):
        graph = gnp_random_graph(12, seed=2)
        ctx = get_context(graph)
        first = ctx.distances()
        ctx.invalidate()
        assert not ctx.has_cached_distances
        second = ctx.distances()
        assert second is not first
        np.testing.assert_array_equal(second, first)
        assert ctx.cache_stats()["invalidations"] == 1
        assert _ctx_count(registry, "distances", "miss") == 2
        assert (
            registry.counter("repro_graph_ctx_invalidations_total").value == 1
        )

    def test_bounded_distances_derive_from_the_cached_full_matrix(
        self, registry
    ):
        graph = gnp_random_graph(14, seed=3)
        ctx = get_context(graph)
        ctx.distances()
        bounded = ctx.distances(max_distance=1)
        np.testing.assert_array_equal(
            bounded, distance_matrix(graph, max_distance=1)
        )
        # The truncation is its own memo kind entry, served from the full
        # matrix — exactly one real BFS sweep happened.
        assert _ctx_count(registry, "distances", "miss") == 2
        assert bounded is ctx.distances(max_distance=1)

    def test_returned_matrix_is_read_only(self):
        ctx = get_context(path_graph(5))
        dist = ctx.distances()
        with pytest.raises(ValueError):
            dist[0, 0] = 99

    def test_pipeline_computes_distances_exactly_once(self, registry):
        """The acceptance criterion: build → verify → simulate, one BFS sweep."""
        from repro.simulator import cached_distance_matrix, summarize

        graph = gnp_random_graph(20, seed=4)
        scheme = build_scheme("full-table", graph, II_ALPHA)
        result = verify_scheme(scheme, sample_pairs=50, seed=0)
        assert result.ok()
        network = Network(scheme)
        records = [network.route(1, 2), network.route(3, 4)]
        summarize(records, graph)
        cached_distance_matrix(graph)
        assert _ctx_count(registry, "distances", "miss") == 1
        assert _ctx_count(registry, "distances", "hit") >= 2

    def test_store_aliases_structurally_equal_graphs(self, registry):
        a = gnp_random_graph(10, seed=5)
        b = gnp_random_graph(10, seed=5)
        assert a is not b and a == b
        assert structural_fingerprint(a) == structural_fingerprint(b)
        ctx = get_context(a)
        assert get_context(b) is ctx
        assert ctx.matches(a) and ctx.matches(b)
        # The alias shares derivations: b's distances come for free.
        ctx.distances()
        assert get_context(b).distances() is ctx.distances()
        assert _ctx_count(registry, "distances", "miss") == 1

    def test_distinct_graphs_get_distinct_contexts(self):
        a = gnp_random_graph(10, seed=6)
        b = gnp_random_graph(10, seed=7)
        assert get_context(a) is not get_context(b)
        assert not get_context(a).matches(b)


# -- integration: healer knowledge and tracer spans ---------------------------


class TestPristineKnowledge:
    def test_corrupt_and_heal_reuse_one_encode(self, registry):
        graph = gnp_random_graph(12, seed=8)
        scheme = build_scheme("full-table", graph, II_ALPHA)
        network = Network(scheme)
        flip = TableMutation(kind=MutationKind.BIT_FLIP, offsets=(0, 3))
        network.corrupt_table(5, flip)
        network.heal_table(5)
        network.corrupt_table(5, flip)
        network.heal_table(5)
        # One encode for node 5, three cache hits (heal, corrupt, heal).
        assert _ctx_count(registry, "pristine_bits", "miss") == 1
        assert _ctx_count(registry, "pristine_bits", "hit") == 3
        # Healed node routes correctly again.
        record = network.route(5, 1)
        assert record.delivered

    def test_pristine_bits_keyed_per_scheme_instance(self, registry):
        graph = gnp_random_graph(12, seed=9)
        ctx = get_context(graph)
        one = build_scheme("full-table", graph, II_ALPHA, ctx=ctx)
        two = build_scheme("full-table", graph, II_ALPHA, ctx=ctx)
        assert ctx.pristine_bits(one, 3) == ctx.pristine_bits(one, 3)
        assert _ctx_count(registry, "pristine_bits", "miss") == 1
        ctx.pristine_bits(two, 3)
        assert _ctx_count(registry, "pristine_bits", "miss") == 2


class TestTracerSpans:
    def test_ctx_spans_mark_fresh_computations_only(self, registry):
        graph = gnp_random_graph(10, seed=10)
        ctx = get_context(graph)
        tracer = RecordingTracer()
        ctx.set_tracer(tracer)
        ctx.distances()
        ctx.distances()
        ctx.invalidate()
        events = [(e.event, e.detail, e.reason) for e in tracer.events]
        assert events == [
            ("ctx", "distances", "miss"),
            ("ctx", "*", "invalidate"),
        ]

    def test_disabled_tracer_is_ignored(self):
        from repro.observability.tracer import NULL_TRACER

        ctx = get_context(path_graph(4))
        ctx.set_tracer(NULL_TRACER)
        assert ctx._tracer is None
