"""Property test: the simulator invariants hold under arbitrary chaos.

Whatever fault schedule and workload hypothesis throws at it,
``EventDrivenSimulator.run()`` must never raise, must return exactly one
record per injected message, and every delivered record's path must be a
walk in the graph from the source ending at the destination.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DetourWrapper, build_scheme
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import (
    EventDrivenSimulator,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
)

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)

# Schemes that build on any connected graph (the compact Theorem 1/4
# constructions require Lemma 3-like graphs and would reject some of the
# small samples hypothesis draws).
_SCHEMES = ("full-information", "full-table")


@st.composite
def chaos_cases(draw):
    graph_seed = draw(st.integers(0, 5))
    graph = gnp_random_graph(12, seed=graph_seed)
    edges = list(graph.edges())
    events = []
    for _ in range(draw(st.integers(0, 25))):
        time = draw(st.floats(0.0, 40.0, allow_nan=False))
        if draw(st.booleans()):
            u, v = edges[draw(st.integers(0, len(edges) - 1))]
            ctor = (
                FaultEvent.link_down if draw(st.booleans()) else FaultEvent.link_up
            )
            events.append(ctor(time, u, v))
        else:
            node = draw(st.integers(1, graph.n))
            ctor = (
                FaultEvent.node_down if draw(st.booleans()) else FaultEvent.node_up
            )
            events.append(ctor(time, node))
    messages = []
    for _ in range(draw(st.integers(1, 12))):
        source = draw(st.integers(1, graph.n))
        destination = draw(
            st.integers(1, graph.n).filter(lambda d: d != source)
        )
        messages.append(
            (source, destination, draw(st.floats(0.0, 30.0, allow_nan=False)))
        )
    scheme_name = draw(st.sampled_from(_SCHEMES))
    detour = draw(st.booleans())
    retry = draw(st.booleans())
    return graph, FaultSchedule(events), messages, scheme_name, detour, retry


@given(chaos_cases())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_run_never_raises_and_paths_are_walks(case):
    graph, schedule, messages, scheme_name, detour, retry = case
    scheme = build_scheme(scheme_name, graph, II_ALPHA)
    if detour:
        scheme = DetourWrapper(scheme)
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=(
            RetryPolicy(max_attempts=3, base_delay=0.5) if retry else None
        ),
    )
    for source, destination, at_time in messages:
        sim.inject(source, destination, at_time)
    records = sim.run()
    assert len(records) == len(messages)
    for record in records:
        assert record.path[0] == record.source
        for u, v in zip(record.path, record.path[1:]):
            assert graph.has_edge(u, v)
        if record.delivered:
            assert record.path[-1] == record.destination
            assert record.hops == len(record.path) - 1
        else:
            assert record.drop_reason is not None
        assert record.retries >= 0
        assert record.latency >= 0.0
