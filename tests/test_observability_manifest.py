"""Tests for the run ledger: RunManifest capture, round-trip, embedding."""

from __future__ import annotations

import json

import pytest

from repro.graphs import gnp_random_graph
from repro.graphs.context import structural_fingerprint
from repro.observability import ManifestError, RunManifest, embedded_manifest
from repro.observability.manifest import MANIFEST_SCHEMA_VERSION


class TestCapture:
    def test_fills_environment(self):
        manifest = RunManifest.capture(
            "simulate-chaos", seed=7, scheme="interval", n=32,
            params={"messages": 100},
        )
        assert manifest.command == "simulate-chaos"
        assert manifest.seed == 7
        assert manifest.scheme == "interval"
        assert manifest.n == 32
        assert manifest.params == {"messages": 100}
        assert len(manifest.run_id) == 12
        assert manifest.python_version
        assert manifest.platform
        assert manifest.created_at.endswith("Z")
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
        assert manifest.wall_time_s is None

    def test_run_ids_are_unique(self):
        a = RunManifest.capture("build")
        b = RunManifest.capture("build")
        assert a.run_id != b.run_id

    def test_graph_fingerprint_from_graph(self):
        graph = gnp_random_graph(16, seed=3)
        manifest = RunManifest.capture("build", graph=graph)
        assert manifest.graph_fingerprint == structural_fingerprint(graph)

    def test_params_are_sanitised_to_json(self):
        manifest = RunManifest.capture(
            "build", params={"obj": object(), "xs": (1, "a", None)}
        )
        json.dumps(manifest.to_dict())  # must not raise
        assert manifest.params["xs"] == [1, "a", None]
        assert isinstance(manifest.params["obj"], str)

    def test_completed_stamps_wall_time(self):
        manifest = RunManifest.capture("build")
        done = manifest.completed(1.25)
        assert done.wall_time_s == 1.25
        assert manifest.wall_time_s is None  # frozen original untouched
        assert done.run_id == manifest.run_id


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        graph = gnp_random_graph(12, seed=5)
        manifest = RunManifest.capture(
            "bench:x", seed=1, scheme="hub", n=12,
            params={"k": 2}, graph=graph,
        ).completed(0.5)
        again = RunManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert again == manifest

    def test_to_json_is_single_line(self):
        text = RunManifest.capture("build").to_json()
        assert "\n" not in text
        assert json.loads(text)["command"] == "build"

    def test_unknown_keys_rejected(self):
        row = RunManifest.capture("build").to_dict()
        row["surprise"] = 1
        with pytest.raises(ManifestError):
            RunManifest.from_dict(row)

    def test_bad_fingerprint_arity_rejected(self):
        row = RunManifest.capture("build").to_dict()
        row["graph_fingerprint"] = [1, 2]
        with pytest.raises(ManifestError):
            RunManifest.from_dict(row)

    def test_non_mapping_rejected(self):
        with pytest.raises(ManifestError):
            RunManifest.from_dict(["not", "a", "mapping"])


class TestEmbeddedManifest:
    def test_extracts_from_payload(self):
        manifest = RunManifest.capture("simulate")
        payload = {"manifest": manifest.to_dict(), "metrics": {}}
        assert embedded_manifest(payload) == manifest

    def test_missing_key_raises(self):
        with pytest.raises(ManifestError):
            embedded_manifest({"metrics": {}})
