"""Tests for the unified bench artifact schema and regression comparator."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    BENCH_SCHEMA_VERSION,
    BenchMetric,
    BenchResult,
    BenchSchemaError,
    BetterDirection,
    RunManifest,
    compare_runs,
    format_comparison,
    load_bench_result,
    write_bench_result,
)


def _result(**metrics):
    return BenchResult(
        bench="demo",
        manifest=RunManifest.capture("bench:demo", seed=1),
        workload={"n": 8},
        metrics=metrics,
        extra={"sweep": [1, 2, 3]},
    )


class TestSchema:
    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        original = _result(
            speed=BenchMetric(2.0, BetterDirection.HIGHER, tolerance=0.2),
            seconds=BenchMetric(0.5, unit="s"),
        )
        write_bench_result(original, path)
        loaded = load_bench_result(path)
        assert loaded.bench == "demo"
        assert loaded.schema_version == BENCH_SCHEMA_VERSION
        assert loaded.manifest == original.manifest
        assert loaded.workload == {"n": 8}
        assert loaded.metrics["speed"] == original.metrics["speed"]
        assert loaded.metrics["seconds"].unit == "s"
        assert loaded.extra == {"sweep": [1, 2, 3]}

    def test_schema_less_json_rejected(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"workload": {}, "speedup_ratio": 1.1}))
        with pytest.raises(BenchSchemaError, match="schema-less"):
            load_bench_result(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        row = _result().to_dict()
        row["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path.write_text(json.dumps(row))
        with pytest.raises(BenchSchemaError, match="schema_version"):
            load_bench_result(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{truncated")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_bench_result(path)

    def test_missing_manifest_rejected(self):
        row = _result().to_dict()
        del row["manifest"]
        with pytest.raises(BenchSchemaError, match="manifest"):
            BenchResult.from_dict(row)

    def test_unknown_direction_rejected(self):
        with pytest.raises(BenchSchemaError, match="direction"):
            BenchMetric.from_dict({"value": 1.0, "direction": "sideways"})

    def test_committed_artifacts_load(self):
        import pathlib

        root = pathlib.Path(__file__).parents[1]
        for name in (
            "BENCH_observability.json",
            "BENCH_context.json",
            "BENCH_corruption.json",
            "BENCH_churn.json",
        ):
            result = load_bench_result(root / name)
            assert result.manifest.command.startswith("bench:")
            assert result.metrics, f"{name} has no gated metrics"


class TestCompareRuns:
    def test_higher_metric_regression(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        fresh = _result(speed=BenchMetric(1.7, BetterDirection.HIGHER))
        report = compare_runs(baseline, fresh)
        assert not report.ok()
        assert report.regressions[0].metric == "speed"
        assert report.regressions[0].relative_change == pytest.approx(-0.15)

    def test_lower_metric_regression(self):
        baseline = _result(overhead=BenchMetric(1.0, BetterDirection.LOWER))
        fresh = _result(overhead=BenchMetric(1.2, BetterDirection.LOWER))
        assert not compare_runs(baseline, fresh).ok()

    def test_within_tolerance_is_ok(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        fresh = _result(speed=BenchMetric(1.85, BetterDirection.HIGHER))
        report = compare_runs(baseline, fresh)  # -7.5% vs default 10%
        assert report.ok()
        assert report.deltas[0].verdict == "ok"

    def test_baseline_tolerance_beats_default(self):
        baseline = _result(
            speed=BenchMetric(2.0, BetterDirection.HIGHER, tolerance=0.01)
        )
        fresh = _result(speed=BenchMetric(1.9, BetterDirection.HIGHER))
        assert not compare_runs(baseline, fresh, default_tolerance=0.5).ok()

    def test_improvement_is_reported_not_failed(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        fresh = _result(speed=BenchMetric(3.0, BetterDirection.HIGHER))
        report = compare_runs(baseline, fresh)
        assert report.ok()
        assert report.improvements[0].metric == "speed"

    def test_neutral_metric_never_gates(self):
        baseline = _result(seconds=BenchMetric(0.1))
        fresh = _result(seconds=BenchMetric(5.0))
        assert compare_runs(baseline, fresh).ok()

    def test_missing_directed_metric_fails(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        report = compare_runs(baseline, _result())
        assert not report.ok()
        assert report.regressions[0].verdict == "missing"

    def test_missing_neutral_metric_is_ok(self):
        baseline = _result(seconds=BenchMetric(0.1))
        assert compare_runs(baseline, _result()).ok()

    def test_zero_baseline_change_is_infinite(self):
        baseline = _result(errs=BenchMetric(0.0, BetterDirection.LOWER))
        fresh = _result(errs=BenchMetric(1.0, BetterDirection.LOWER))
        report = compare_runs(baseline, fresh)
        assert report.deltas[0].relative_change == float("inf")
        assert not report.ok()

    def test_different_benches_refuse_to_compare(self):
        baseline = _result()
        other = BenchResult(
            bench="other",
            manifest=RunManifest.capture("bench:other"),
        )
        with pytest.raises(BenchSchemaError, match="different benchmarks"):
            compare_runs(baseline, other)

    def test_negative_default_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_runs(_result(), _result(), default_tolerance=-0.1)


class TestFormatting:
    def test_format_marks_regressions(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        fresh = _result(speed=BenchMetric(1.0, BetterDirection.HIGHER))
        text = format_comparison(compare_runs(baseline, fresh))
        assert "REGRESSION" in text
        assert "!speed" in text
        assert "-50.0%" in text

    def test_format_ok_run(self):
        text = format_comparison(compare_runs(_result(), _result()))
        assert "OK: no regressions" in text

    def test_report_to_dict_is_json_safe(self):
        baseline = _result(speed=BenchMetric(2.0, BetterDirection.HIGHER))
        payload = compare_runs(baseline, baseline).to_dict()
        json.dumps(payload)
        assert payload["ok"] is True
        assert payload["deltas"][0]["direction"] == "higher"
