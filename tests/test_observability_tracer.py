"""Tests for hop-level tracing: span ordering, sinks, no-op overhead path."""

from __future__ import annotations

import json

import pytest

from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.core import build_scheme
from repro.observability import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    load_events,
    read_trace,
)
from repro.simulator import (
    EventDrivenSimulator,
    Network,
    RetryPolicy,
    flapping_links,
)

TERMINAL = ("deliver", "drop")


@pytest.fixture(scope="module")
def scheme():
    graph = gnp_random_graph(24, seed=0)
    return build_scheme(
        "interval", graph, RoutingModel(Knowledge.II, Labeling.BETA)
    )


def _chaos_sim(scheme, tracer, retries=2):
    schedule = flapping_links(
        scheme.graph, 30, period=8.0, duty=0.5, horizon=60.0, seed=3
    )
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=retries + 1),
        tracer=tracer,
    )
    import random

    clock = random.Random(7)
    for _ in range(80):
        source, destination = clock.sample(sorted(scheme.graph.nodes), 2)
        sim.inject(source, destination, clock.uniform(0.0, 45.0))
    return sim


class TestSpanOrdering:
    def test_network_walk_emits_ordered_span(self, scheme):
        tracer = RecordingTracer()
        network = Network(scheme, tracer=tracer)
        record = network.route(1, 9)
        assert record.delivered
        events = tracer.events_for(0)
        kinds = [event.event for event in events]
        assert kinds[0] == "inject"
        assert kinds[-1] == "deliver"
        assert kinds[1:-1] == ["hop"] * record.hops
        # hop ordinals count up, sequence numbers strictly increase
        assert [e.hop for e in events[1:-1]] == list(range(record.hops))
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        # the walked path is reconstructible from the hop spans
        path = [events[1].node] + [e.next_node for e in events[1:-1]]
        assert tuple(path) == record.path

    def test_event_sim_spans_are_well_formed(self, scheme):
        tracer = RecordingTracer()
        records = _chaos_sim(scheme, tracer).run()
        by_msg = {}
        for event in tracer.events:
            if event.msg_id is not None:
                by_msg.setdefault(event.msg_id, []).append(event)
        assert len(by_msg) == len(records)
        for events in by_msg.values():
            assert events[0].event == "inject"
            # exactly one terminal outcome, nothing after it
            terminals = [e for e in events if e.event in TERMINAL]
            assert len(terminals) == 1
            assert events[-1].event in TERMINAL
            # times never go backwards along the span
            times = [e.time for e in events]
            assert times == sorted(times)

    def test_every_drop_record_has_annotated_drop_span(self, scheme):
        """Acceptance round-trip: drop_breakdown ↔ traced drop spans."""
        from repro.simulator import drop_breakdown

        tracer = RecordingTracer()
        records = _chaos_sim(scheme, tracer).run()
        breakdown = drop_breakdown(records)
        drop_events = [e for e in tracer.events if e.event == "drop"]
        by_reason = {}
        for event in drop_events:
            assert event.reason is not None
            by_reason[event.reason] = by_reason.get(event.reason, 0) + 1
        assert by_reason == {
            reason.name: count for reason, count in breakdown.items()
        }


class TestDisabledPath:
    def test_null_tracer_is_normalised_away(self, scheme):
        assert Network(scheme, tracer=NULL_TRACER)._tracer is None
        assert Network(scheme, tracer=NullTracer())._tracer is None
        assert Network(scheme, tracer=None)._tracer is None
        sim = EventDrivenSimulator(scheme, tracer=NULL_TRACER)
        assert sim._tracer is None

    def test_traced_and_untraced_runs_agree(self, scheme):
        traced = _chaos_sim(scheme, RecordingTracer()).run()
        untraced = _chaos_sim(scheme, None).run()
        assert traced == untraced


class TestSinks:
    def test_jsonl_round_trip(self, scheme, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        _chaos_sim(scheme, tracer).run()
        tracer.close()
        reloaded = read_trace(path)
        assert len(reloaded) == tracer.written > 0
        assert all(isinstance(event, TraceEvent) for event in reloaded)
        # every line is valid standalone JSON with no None values
        for line in path.read_text().splitlines():
            row = json.loads(line)
            assert None not in row.values()

    def test_event_dict_round_trip(self):
        event = TraceEvent(
            event="drop",
            seq=3,
            time=1.5,
            msg_id=9,
            node=2,
            reason="LINK_DOWN",
            subject=("link", "2", "4"),
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_load_events_skips_blank_lines(self):
        rows = ['{"event": "inject", "msg_id": 1}', "", "  "]
        events = load_events(rows)
        assert len(events) == 1
        assert events[0].msg_id == 1

    def test_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.inject(0, 1, 2)
        assert len(read_trace(path)) == 1
