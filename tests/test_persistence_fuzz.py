"""Fuzzing the hardened blob parser (satellite of CORRUPTION).

``unpack_blob`` faces bytes from disk or the wire, so the contract is
strict: any input — truncated, bit-flipped, or pure noise — either parses
or raises :class:`CodecError`.  ``IndexError``, ``UnicodeDecodeError``,
``BitstreamError`` or a hang are all bugs.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import build_scheme
from repro.core.persistence import pack_scheme, unpack_blob
from repro.errors import CodecError
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)


def _packed_blob():
    graph = gnp_random_graph(12, seed=7)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    return scheme, pack_scheme(scheme)


_SCHEME, _BLOB = _packed_blob()


def _parse_or_codec_error(data: bytes) -> None:
    try:
        blob = unpack_blob(data)
    except CodecError:
        return
    # If it parsed, the result must be self-consistent.
    assert blob.n >= 0
    assert set(blob.functions) == set(range(1, blob.n + 1))


def test_round_trip_is_exact():
    blob = unpack_blob(_BLOB)
    assert blob.scheme_name == "full-table"
    assert blob.n == _SCHEME.graph.n
    for u in _SCHEME.graph.nodes:
        assert blob.functions[u] == _SCHEME.encode_function(u)


@given(st.binary(max_size=200))
def test_arbitrary_bytes_never_leak_raw_errors(data):
    _parse_or_codec_error(data)


@given(st.integers(0, len(_BLOB) - 1))
def test_every_truncation_is_rejected_cleanly(cut):
    truncated = _BLOB[:cut]
    with pytest.raises(CodecError):
        unpack_blob(truncated)


@given(
    position=st.integers(0, len(_BLOB) - 1),
    mask=st.integers(1, 255),
)
def test_single_byte_mutations_parse_or_raise_codec_error(position, mask):
    mutated = bytearray(_BLOB)
    mutated[position] ^= mask
    _parse_or_codec_error(bytes(mutated))


@given(st.data())
def test_multi_byte_mutations_parse_or_raise_codec_error(data):
    mutated = bytearray(_BLOB)
    for _ in range(data.draw(st.integers(1, 8))):
        position = data.draw(st.integers(0, len(mutated) - 1))
        mutated[position] ^= data.draw(st.integers(1, 255))
    _parse_or_codec_error(bytes(mutated))


def test_unknown_version_is_rejected_with_context():
    # Byte 4 of the container is the version field (after the 4-byte
    # bit-length header); bump it to an unsupported value.
    mutated = bytearray(_BLOB)
    mutated[5] = 9
    with pytest.raises(CodecError, match="version 9"):
        unpack_blob(bytes(mutated))


def test_bad_magic_is_rejected():
    mutated = bytearray(_BLOB)
    mutated[4] ^= 0xFF
    with pytest.raises(CodecError, match="magic"):
        unpack_blob(bytes(mutated))


def test_trailing_garbage_is_rejected():
    # Extending the payload *and* the length header leaves trailing bits
    # after the last function's prime code.
    bits = int.from_bytes(_BLOB[:4], "big") + 16
    data = bits.to_bytes(4, "big") + _BLOB[4:] + b"\xa5\x5a"
    with pytest.raises(CodecError, match="trailing"):
        unpack_blob(data)
