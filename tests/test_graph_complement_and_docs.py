"""Tests for the complement operation and executable documentation."""

from __future__ import annotations

import pathlib
import re
import textwrap

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import (
    LabeledGraph,
    complete_graph,
    degree_statistics,
    edge_code_length,
    encode_graph,
    gnp_random_graph,
    path_graph,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent


class TestComplement:
    def test_involution(self):
        graph = gnp_random_graph(15, seed=2)
        assert graph.complement().complement() == graph

    def test_edge_counts_sum(self):
        graph = gnp_random_graph(15, seed=2)
        assert (
            graph.edge_count + graph.complement().edge_count
            == edge_code_length(15)
        )

    def test_empty_complement_is_complete(self):
        assert LabeledGraph(6).complement() == complete_graph(6)

    def test_eg_bits_flip(self):
        graph = gnp_random_graph(12, seed=7)
        code = encode_graph(graph)
        flipped = encode_graph(graph.complement())
        assert all(a != b for a, b in zip(code, flipped))

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=100))
    def test_degree_band_symmetric(self, n, seed):
        """G(n, 1/2) and the Lemma 1 band are complement-symmetric."""
        graph = gnp_random_graph(n, seed=seed)
        stats = degree_statistics(graph)
        co_stats = degree_statistics(graph.complement())
        assert stats.max_deviation == co_stats.max_deviation

    def test_path_complement_dense(self):
        graph = path_graph(6)
        assert graph.complement().edge_count == 15 - 5


class TestReadmeSnippets:
    def _python_blocks(self, path: pathlib.Path):
        text = path.read_text()
        return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)

    def test_readme_quickstart_runs(self):
        blocks = self._python_blocks(REPO_ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        namespace: dict = {}
        exec(textwrap.dedent(blocks[0]), namespace)  # noqa: S102

    def test_models_doc_example_runs(self):
        blocks = self._python_blocks(REPO_ROOT / "docs" / "MODELS.md")
        assert blocks
        namespace: dict = {}
        exec(textwrap.dedent(blocks[0]), namespace)  # noqa: S102

    def test_package_docstring_example_runs(self):
        import repro

        match = re.search(r"Quickstart::\n\n(.*)\Z", repro.__doc__ or "",
                          flags=re.DOTALL)
        assert match, "package docstring must keep its quickstart"
        code = textwrap.dedent(match.group(1))
        exec(code, {})  # noqa: S102
