"""CLI surface of the durable store, plus the shared retry flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import _build_parser, _retry_policy, main
from repro.store import JOURNAL_NAME, LocalFilesystem


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "store")


def put(store_dir, *extra):
    return main(["store", "put", "full-table", "16", "--dir", store_dir,
                 "--seed", "7", *extra])


class TestStoreCommands:
    def test_put_then_get(self, store_dir, capsys, tmp_path):
        assert put(store_dir) == 0
        out = capsys.readouterr().out
        assert "stored full-table@1" in out
        assert "active generation 1" in out

        target = tmp_path / "out.blob"
        assert main(["store", "get", "full-table", "--dir", store_dir,
                     "--output", str(target)]) == 0
        assert target.stat().st_size > 0
        assert "written to" in capsys.readouterr().out

    def test_put_hot_swap_switches_active(self, store_dir, capsys):
        assert put(store_dir) == 0
        assert put(store_dir, "--hot-swap") == 0
        out = capsys.readouterr().out
        assert "hot-swapped full-table@2" in out
        assert "active generation 2" in out

    def test_list_json(self, store_dir, capsys):
        assert put(store_dir) == 0
        capsys.readouterr()
        assert main(["store", "list", "--dir", store_dir, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == [{
            "name": "full-table",
            "active_generation": 1,
            "generations": [1],
            "active_blob_bits": rows[0]["active_blob_bits"],
        }]
        assert rows[0]["active_blob_bits"] > 0

    def test_list_empty(self, store_dir, capsys):
        assert main(["store", "list", "--dir", store_dir]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_verify_clean_exit_zero(self, store_dir, capsys):
        assert put(store_dir) == 0
        assert main(["store", "verify", "--dir", store_dir]) == 0
        assert "verified clean" in capsys.readouterr().out

    def test_verify_detects_bit_rot_exit_one(self, store_dir, capsys):
        assert put(store_dir) == 0
        fs = LocalFilesystem(store_dir)
        damaged = bytearray(fs.read(JOURNAL_NAME))
        damaged[80] ^= 0x10
        fs.replace(JOURNAL_NAME, bytes(damaged))
        assert main(["store", "verify", "--dir", store_dir]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out

    def test_recover_writes_report_artifact(self, store_dir, capsys,
                                            tmp_path):
        assert put(store_dir) == 0
        capsys.readouterr()
        report_file = tmp_path / "recovery.json"
        assert main(["store", "recover", "--dir", store_dir,
                     "--report", str(report_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["source"] == "journal"
        artifact = json.loads(report_file.read_text())
        assert artifact["recovery"]["clean"] is True
        assert artifact["manifest"]["command"] == "store-recover"

    def test_recover_from_damaged_journal_still_exits_zero(self, store_dir,
                                                           capsys):
        assert put(store_dir) == 0
        assert put(store_dir) == 0
        fs = LocalFilesystem(store_dir)
        journal = fs.read(JOURNAL_NAME)
        fs.replace(JOURNAL_NAME, journal[: len(journal) - 5])  # torn tail
        assert main(["store", "recover", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "recovered from" in out
        # Degraded recovery self-heals; a fresh verify is clean again.
        assert main(["store", "verify", "--dir", store_dir]) == 0

    def test_compact_creates_snapshot(self, store_dir, capsys):
        assert put(store_dir) == 0
        assert main(["store", "compact", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "compacted into snapshot-" in out
        fs = LocalFilesystem(store_dir)
        assert fs.read(JOURNAL_NAME) == b""
        assert main(["store", "verify", "--dir", store_dir]) == 0


class TestSharedRetryFlags:
    SIMULATORS = {
        "simulate-chaos": ["simulate-chaos", "interval", "16"],
        "simulate-corruption": ["simulate-corruption", "interval", "16"],
        "simulate-churn": ["simulate-churn", "full-table", "16"],
    }

    @pytest.mark.parametrize("command", sorted(SIMULATORS))
    def test_every_simulator_accepts_the_full_retry_surface(self, command):
        parser = _build_parser()
        args = parser.parse_args(
            self.SIMULATORS[command]
            + ["--retries", "3", "--backoff-base", "0.5",
               "--backoff-multiplier", "3.0", "--max-delay", "20.0",
               "--jitter", "0.25"]
        )
        policy = _retry_policy(args)
        assert policy is not None
        assert policy.max_attempts == 4
        assert policy.base_delay == 0.5
        assert policy.multiplier == 3.0
        assert policy.max_delay == 20.0
        assert policy.jitter == 0.25

    @pytest.mark.parametrize("command", sorted(SIMULATORS))
    def test_retries_off_means_no_policy(self, command):
        args = _build_parser().parse_args(self.SIMULATORS[command])
        assert _retry_policy(args) is None

    def test_multiplier_flag_changes_behaviour_end_to_end(self, capsys):
        assert main(
            ["simulate-chaos", "interval", "16", "--messages", "20",
             "--retries", "2", "--backoff-multiplier", "4.0",
             "--max-delay", "5.0", "--jitter", "0.0", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 20
