"""Flow-sensitive lint rules R010–R013, the R014 suppression audit, and
the flow-aware CLI surface (`--no-flow`, `--dump-callgraph`, `--diff`).

Every rule gets at least one positive fixture (the violation fires) and
one negative fixture (the disciplined version stays clean) — the PR's
acceptance criterion.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.lint import lint_paths, lint_source, rule_by_id
from repro.cli import main


def run_flow(source, *, path="tmp/fixture.py", module=None, rules=None):
    """Lint one dedented blob with the flow pass on."""
    active = None if rules is None else [rule_by_id(r) for r in rules]
    return lint_source(
        textwrap.dedent(source),
        path=path,
        module=module,
        active_rules=active,
        flow=True,
    )


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


# -- R010: seed provenance ----------------------------------------------------


def test_r010_fires_on_unseeded_rng_construction():
    result = run_flow(
        """
        import random

        def fresh():
            return random.Random()
        """,
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010"]
    assert "without a seed argument" in result.findings[0].message


def test_r010_fires_on_ambient_seed_through_helper():
    result = run_flow(
        """
        import random
        import time

        def make_rng(seed):
            return random.Random(seed)

        def runner():
            return make_rng(time.time())
        """,
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010"]
    message = result.findings[0].message
    assert "make_rng" in message
    assert "time.time" in message


def test_r010_fires_on_untraceable_seed():
    result = run_flow(
        """
        import random

        def fresh(config):
            return random.Random(config.pick())
        """,
        rules=["R010"],
    )
    assert rule_ids(result) == ["R010"]


def test_r010_clean_on_param_and_constant_seeds():
    result = run_flow(
        """
        import random

        DEFAULT_SEED = 1996

        def from_param(seed):
            return random.Random(seed)

        def from_constant():
            return random.Random(DEFAULT_SEED)

        def derived(seed):
            return random.Random(seed * 2 + 1)
        """,
        rules=["R010"],
    )
    assert result.findings == []


def test_r010_clean_when_seed_threads_through_two_helpers():
    result = run_flow(
        """
        import random

        def make_rng(seed):
            return random.Random(seed)

        def outer(seed):
            return make_rng(seed + 1)
        """,
        rules=["R010"],
    )
    assert result.findings == []


# -- R011: invalidation discipline --------------------------------------------

R011_DIRTY = """
def corrupt(graph, ctx):
    graph._adj_sets = ()
    return ctx.distances()
"""

R011_CLEAN = """
def repaired(graph, ctx):
    graph._adj_sets = ()
    ctx.invalidate()
    return ctx.distances()
"""


def test_r011_fires_on_read_after_unflushed_mutation():
    result = run_flow(R011_DIRTY, module="repro.fake.mutator", rules=["R011"])
    assert rule_ids(result) == ["R011"]
    assert "invalidate" in result.findings[0].message


def test_r011_clean_when_invalidate_precedes_read():
    result = run_flow(R011_CLEAN, module="repro.fake.mutator", rules=["R011"])
    assert result.findings == []


def test_r011_fires_across_function_boundary():
    result = run_flow(
        """
        def mutate(graph):
            graph._adj_sets = ()

        def pipeline(graph, ctx):
            mutate(graph)
            return ctx.distances()
        """,
        module="repro.fake.pipeline",
        rules=["R011"],
    )
    assert "R011" in rule_ids(result)


def test_r011_lazy_cache_fill_is_not_a_mutation():
    result = run_flow(
        """
        class Scheme:
            def __init__(self, ctx):
                self._function_cache = {}
                self._ctx = ctx

            def function(self, u):
                if u not in self._function_cache:
                    self._function_cache[u] = u * 2
                return self._function_cache[u]

            def read(self):
                return self._ctx.distances()
        """,
        module="repro.fake.scheme",
        rules=["R011"],
    )
    assert result.findings == []


# -- R012: bit conservation ---------------------------------------------------


def test_r012_fires_on_float_valued_bits_return():
    result = run_flow(
        """
        import math

        def table_bits(n: int):
            return math.log2(n) + 7
        """,
        rules=["R012"],
    )
    assert rule_ids(result) == ["R012"]
    assert "math.log2" in result.findings[0].message


def test_r012_fires_on_float_call_in_bits_assignment():
    # Plain `/` on a bit-named target is R001's per-file job; the flow
    # rule adds what R001 cannot see — float-valued calls.
    result = run_flow(
        """
        import math

        def report(n: int) -> int:
            header_bits = math.log2(n)
            return int(header_bits)
        """,
        rules=["R012"],
    )
    assert rule_ids(result) == ["R012"]


def test_r012_clean_on_integer_arithmetic_and_annotated_floats():
    result = run_flow(
        """
        import math

        def table_bits(n: int) -> int:
            return n * 3 + len(str(n))

        def ratio_bits(n: int) -> float:
            # Annotated float: a deliberate diagnostic, not a charge.
            return math.log2(n)

        def ceil_bits(n: int) -> int:
            return math.ceil(math.log2(n))
        """,
        rules=["R012"],
    )
    assert result.findings == []


def test_r012_traces_purity_through_project_helpers():
    result = run_flow(
        """
        def half(n: int):
            return n / 2

        def padding_bits(n: int):
            return half(n)
        """,
        rules=["R012"],
    )
    assert rule_ids(result) == ["R012"]


# -- R013: exception boundaries -----------------------------------------------

R013_PRELUDE = """
class ReproError(Exception):
    pass

class BitstreamError(ReproError):
    pass

class CodecError(ReproError):
    pass

def _read_bits(data):
    if not data:
        raise BitstreamError("empty")
    return data
"""

R013_LEAKY = R013_PRELUDE + """
def unpack_blob(data):
    return _read_bits(data)
"""

R013_SHIELDED = R013_PRELUDE + """
def unpack_blob(data):
    try:
        return _read_bits(data)
    except BitstreamError as exc:
        raise CodecError(str(exc)) from exc
"""


def test_r013_fires_when_bitstream_error_escapes_codec_boundary():
    result = run_flow(
        R013_LEAKY,
        path="tmp/repro/core/persistence.py",
        module="repro.core.persistence",
        rules=["R013"],
    )
    assert rule_ids(result) == ["R013"]
    assert "BitstreamError" in result.findings[0].message


def test_r013_clean_when_boundary_translates_to_codec_error():
    result = run_flow(
        R013_SHIELDED,
        path="tmp/repro/core/persistence.py",
        module="repro.core.persistence",
        rules=["R013"],
    )
    assert result.findings == []


def test_r013_subclasses_of_the_allowed_error_are_fine():
    source = R013_PRELUDE + """
class BlobCodecError(CodecError):
    pass

def unpack_blob(data):
    try:
        return _read_bits(data)
    except BitstreamError as exc:
        raise BlobCodecError(str(exc)) from exc
"""
    result = run_flow(
        source,
        path="tmp/repro/core/persistence.py",
        module="repro.core.persistence",
        rules=["R013"],
    )
    assert result.findings == []


# -- R014: stale suppressions -------------------------------------------------


def test_r014_flags_suppression_that_matched_nothing():
    result = lint_source("x = 1  # repro-lint: disable=R001\n")
    assert rule_ids(result) == ["R014"]
    assert "matched no findings" in result.findings[0].message


def test_r014_quiet_when_the_suppression_is_earning_its_keep():
    result = lint_source(
        "total_bits = 10\n"
        "share = total_bits / 2  # repro-lint: disable=R001\n"
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_r014_ignores_docstrings_describing_the_syntax():
    result = lint_source(
        '"""Docs: write `# repro-lint: disable=R001` to mute a line."""\n'
        "x = 1\n"
    )
    assert result.findings == []


def test_r014_not_judged_for_rules_outside_the_active_set():
    # Only R001 runs: a stale R008 suppression cannot be judged fairly.
    result = lint_source(
        "x = 1  # repro-lint: disable=R008\n",
        active_rules=[rule_by_id("R001"), rule_by_id("R014")],
    )
    assert result.findings == []


def test_r014_flow_rule_suppressions_only_judged_when_flow_ran():
    source = "x = 1  # repro-lint: disable=R011\n"
    without_flow = lint_source(source)
    assert without_flow.findings == []
    with_flow = lint_source(source, flow=True)
    assert rule_ids(with_flow) == ["R014"]


def test_flow_findings_respect_suppression_comments():
    source = textwrap.dedent(
        """
        import random

        def fresh():
            return random.Random()  # repro-lint: disable=R010
        """
    )
    result = lint_source(
        source, active_rules=[rule_by_id("R010")], flow=True
    )
    assert result.findings == []
    assert result.suppressed == 1


# -- runner error paths -------------------------------------------------------


def test_unreadable_file_exits_2_with_structured_diagnostic(tmp_path, capsys):
    broken_link = tmp_path / "locked.py"
    broken_link.symlink_to(tmp_path / "does-not-exist")
    assert main(["lint", str(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "R000" in out
    assert "cannot read file" in out


def test_syntax_error_file_exits_2_with_r000(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert main(["lint", str(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "R000" in out and "syntax error" in out


def test_empty_directory_exits_2(tmp_path, capsys):
    assert main(["lint", str(tmp_path)]) == 2
    assert "no Python files found" in capsys.readouterr().err


def test_unparseable_file_still_joins_flow_run(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "fine.py").write_text("import random\n\ndef f():\n    return random.Random()\n")
    result = lint_paths([str(tmp_path)])
    ids = {finding.rule_id for finding in result.findings}
    assert "R000" in ids and "R010" in ids


# -- CLI: --no-flow, --dump-callgraph, --diff ---------------------------------

FLOW_ONLY_VIOLATION = (
    "import random\n"
    "\n"
    "def f() -> random.Random:\n"
    "    return random.Random()\n"
)


def test_cli_no_flow_skips_flow_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(FLOW_ONLY_VIOLATION)
    assert main(["lint", str(bad)]) == 1
    assert "R010" in capsys.readouterr().out
    assert main(["lint", str(bad), "--no-flow"]) == 0


def test_cli_dump_callgraph_writes_json(tmp_path, capsys):
    src = tmp_path / "ok.py"
    src.write_text("def f() -> int:\n    return g()\n\ndef g() -> int:\n    return 0\n")
    out = tmp_path / "callgraph.json"
    assert main(["lint", str(src), "--dump-callgraph", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["version"] == 1
    assert any(f.endswith(".f") for f in payload["functions"])


def test_cli_dump_callgraph_requires_flow(tmp_path, capsys):
    src = tmp_path / "ok.py"
    src.write_text("x = 1\n")
    out = tmp_path / "callgraph.json"
    assert main(
        ["lint", str(src), "--no-flow", "--dump-callgraph", str(out)]
    ) == 2
    assert "--no-flow" in capsys.readouterr().err


def test_cli_diff_restricts_findings_to_changed_files(tmp_path, capsys):
    # The fixture lives outside the repo's diff against HEAD, so its
    # finding is filtered out; the full program was still analysed.
    bad = tmp_path / "bad.py"
    bad.write_text(FLOW_ONLY_VIOLATION)
    assert main(["lint", str(bad)]) == 1
    capsys.readouterr()
    assert main(["lint", str(bad), "--diff", "HEAD"]) == 0


def test_cli_diff_with_bad_ref_exits_2(tmp_path, capsys):
    src = tmp_path / "ok.py"
    src.write_text("x = 1\n")
    assert main(
        ["lint", str(src), "--diff", "no-such-ref-xyz"]
    ) == 2
    assert "cannot resolve --diff" in capsys.readouterr().err


def test_cli_diff_keeps_parse_errors_even_off_diff(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert main(["lint", str(bad), "--diff", "HEAD"]) == 2
    assert "R000" in capsys.readouterr().out


# -- seeded violations through the CLI (CI smoke mirror) ----------------------


@pytest.mark.parametrize(
    "relpath, source, rule",
    [
        ("repro/runner.py", FLOW_ONLY_VIOLATION, "R010"),
        ("repro/fake/mutator.py", textwrap.dedent(R011_DIRTY), "R011"),
        (
            "repro/fake/space.py",
            "import math\n\ndef table_bits(n: int):\n    return math.log2(n)\n",
            "R012",
        ),
        ("repro/core/persistence.py", textwrap.dedent(R013_LEAKY), "R013"),
    ],
)
def test_cli_seeded_flow_violations_fail(tmp_path, relpath, source, rule, capsys):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    assert main(["lint", str(tmp_path), "--select", rule]) == 1
    assert rule in capsys.readouterr().out
