"""Tests for the full-table baseline scheme."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import FullTableScheme, route_message, verify_scheme
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import (
    LabeledGraph,
    PortAssignment,
    cycle_graph,
    gnp_random_graph,
    path_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel


class TestCorrectness:
    def test_shortest_paths_on_random_graph(self, random_graph_32, model_ia_alpha):
        scheme = FullTableScheme(random_graph_32, model_ia_alpha)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_works_on_any_connected_graph(self, model_ia_alpha):
        for graph in (path_graph(9), cycle_graph(7)):
            report = verify_scheme(FullTableScheme(graph, model_ia_alpha))
            assert report.ok()

    def test_disconnected_rejected(self, model_ia_alpha):
        with pytest.raises(SchemeBuildError):
            FullTableScheme(LabeledGraph(4, [(1, 2)]), model_ia_alpha)

    def test_route_trace_is_shortest(self, model_ia_alpha):
        graph = path_graph(6)
        scheme = FullTableScheme(graph, model_ia_alpha)
        trace = route_message(scheme, 1, 6)
        assert trace.path == (1, 2, 3, 4, 5, 6)


class TestPorts:
    def test_respects_adversarial_ports_under_ia(self, model_ia_alpha):
        graph = gnp_random_graph(16, seed=2)
        ports = PortAssignment.shuffled(graph, random.Random(5))
        scheme = FullTableScheme(graph, model_ia_alpha, ports=ports)
        assert scheme.port_assignment is ports
        assert verify_scheme(scheme).ok()

    def test_normalises_ports_under_ib(self, model_ib_alpha):
        graph = gnp_random_graph(16, seed=2)
        ports = PortAssignment.shuffled(graph, random.Random(5))
        scheme = FullTableScheme(graph, model_ib_alpha, ports=ports)
        assert scheme.port_assignment.is_identity()

    def test_neighbor_entries_use_direct_port(self, model_ia_alpha):
        """Shortest path to a neighbour is the direct edge (Theorem 8's hook)."""
        graph = gnp_random_graph(14, seed=8)
        ports = PortAssignment.shuffled(graph, random.Random(1))
        scheme = FullTableScheme(graph, model_ia_alpha, ports=ports)
        for u in graph.nodes:
            function = scheme.function(u)
            for nb in graph.neighbors(u):
                assert function.port_for(nb) == ports.port(u, nb)


class TestEncoding:
    def test_round_trip(self, random_graph_32, model_ia_alpha):
        scheme = FullTableScheme(random_graph_32, model_ia_alpha)
        for u in (1, 16, 32):
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            original = scheme.function(u)
            for w in random_graph_32.nodes:
                if w != u:
                    assert decoded.port_for(w) == original.port_for(w)

    def test_size_is_n_minus_one_entries(self, random_graph_32, model_ia_alpha):
        scheme = FullTableScheme(random_graph_32, model_ia_alpha)
        n = random_graph_32.n
        for u in (3, 20):
            width = scheme.entry_width(u)
            assert len(scheme.encode_function(u)) == (n - 1) * width

    def test_total_size_is_n_squared_log(self, model_ia_alpha):
        """The trivial upper bound the paper quotes: O(n² log n)."""
        graph = gnp_random_graph(64, seed=4)
        total = FullTableScheme(graph, model_ia_alpha).space_report().total_bits
        n = 64
        assert total <= n * n * math.log2(n)
        assert total >= 0.5 * n * (n - 1) * math.log2(n / 2 - 8)

    def test_degree_one_entries_are_free(self, model_ia_alpha):
        graph = path_graph(3)
        scheme = FullTableScheme(graph, model_ia_alpha)
        assert len(scheme.encode_function(1)) == 0  # only one port to name

    def test_missing_entry_raises(self, model_ia_alpha):
        scheme = FullTableScheme(path_graph(3), model_ia_alpha)
        with pytest.raises(RoutingError):
            scheme.function(1).port_for(1)


class TestProperties:
    def test_stretch_bound(self, random_graph_32, model_ia_alpha):
        assert FullTableScheme(random_graph_32, model_ia_alpha).stretch_bound() == 1.0

    def test_least_neighbor_tie_break(self, model_ia_alpha):
        """Among equal shortest next hops the least neighbour is chosen."""
        graph = LabeledGraph(4, [(1, 2), (1, 3), (2, 4), (3, 4)])
        scheme = FullTableScheme(graph, model_ia_alpha)
        assert scheme.function(1).next_hop(4).next_node == 2
