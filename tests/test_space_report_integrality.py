"""SpaceReport totals are integers and additive for every built-in scheme.

The runtime companion of lint rule R001: Table 1 of the paper is an exact
bits-count grid, so every charged quantity must be an `int` (never a bool,
never a float) and the report totals must be exactly the sums of their
per-node parts — no double charging, no silent float drift.
"""

from __future__ import annotations

import pytest

from repro.core import available_schemes, build_scheme
from repro.graphs import gnp_random_graph, path_graph
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.models import Knowledge, Labeling, RoutingModel

# One certified dense graph for the diameter-2 constructions, a chain for
# the chain-comparison scheme (mirrors tests/test_model_scheme_matrix.py).
GRAPH = gnp_random_graph(32, seed=101)
CHAIN = path_graph(12)

# scheme -> a model it must build under (one per scheme is enough here;
# the full matrix is pinned by test_model_scheme_matrix.py).
MODELS = {
    "full-table": RoutingModel(Knowledge.IA, Labeling.ALPHA),
    "full-information": RoutingModel(Knowledge.IA, Labeling.ALPHA),
    "multi-interval": RoutingModel(Knowledge.IA, Labeling.ALPHA),
    "thm1-two-level": RoutingModel(Knowledge.IB, Labeling.ALPHA),
    "thm2-neighbor-labels": RoutingModel(Knowledge.II, Labeling.GAMMA),
    "thm3-centers": RoutingModel(Knowledge.II, Labeling.ALPHA),
    "thm4-hub": RoutingModel(Knowledge.II, Labeling.ALPHA),
    "thm5-probe": RoutingModel(Knowledge.II, Labeling.ALPHA),
    "interval": RoutingModel(Knowledge.II, Labeling.BETA),
    "tree-cover": RoutingModel(Knowledge.II, Labeling.GAMMA),
    "chain-comparison": RoutingModel(Knowledge.II, Labeling.BETA),
}


def exact_int(value):
    """True for real ints only (bool is an int subclass — reject it)."""
    return isinstance(value, int) and not isinstance(value, bool)


def test_every_registered_scheme_is_covered():
    assert set(MODELS) == set(available_schemes())


@pytest.mark.parametrize("scheme_name", sorted(MODELS))
def test_space_report_is_integral_and_additive(scheme_name):
    graph = CHAIN if scheme_name == "chain-comparison" else GRAPH
    scheme = build_scheme(scheme_name, graph, MODELS[scheme_name])
    report = scheme.space_report()

    _assert_integral_and_additive(scheme_name, graph, report)


@pytest.mark.parametrize(
    "policy",
    [FramingPolicy.PARITY, FramingPolicy.CRC8, FramingPolicy.CRC16],
    ids=lambda p: p.value,
)
def test_framed_space_report_is_integral_and_additive(policy):
    # The integrity charge rides the same exactness contract: an integer
    # number of checksum bits per node, additively on its own line.
    scheme = IntegrityWrapper(
        build_scheme("full-table", GRAPH, MODELS["full-table"]), policy
    )
    report = scheme.space_report()
    _assert_integral_and_additive(scheme.scheme_name, GRAPH, report)
    for entry in report.per_node:
        assert entry.integrity_bits == policy.overhead_bits
    assert report.integrity_bits == GRAPH.n * policy.overhead_bits


def _assert_integral_and_additive(scheme_name, graph, report):
    # Every per-node charge is a genuine int.
    assert len(report.per_node) == graph.n
    for entry in report.per_node:
        assert exact_int(entry.routing_bits), (scheme_name, entry)
        assert exact_int(entry.label_bits), (scheme_name, entry)
        assert exact_int(entry.aux_bits), (scheme_name, entry)
        assert exact_int(entry.integrity_bits), (scheme_name, entry)
        assert exact_int(entry.total), (scheme_name, entry)
        assert entry.routing_bits >= 0
        assert entry.label_bits >= 0
        assert entry.aux_bits >= 0
        assert entry.integrity_bits >= 0
        assert entry.total == (
            entry.routing_bits + entry.label_bits + entry.aux_bits
            + entry.integrity_bits
        )

    # Report totals are ints and exactly additive across nodes.
    assert exact_int(report.total_bits)
    assert exact_int(report.routing_bits)
    assert exact_int(report.label_bits)
    assert exact_int(report.aux_bits)
    assert exact_int(report.integrity_bits)
    assert exact_int(report.max_node_bits)
    assert report.total_bits == sum(e.total for e in report.per_node)
    assert report.routing_bits == sum(e.routing_bits for e in report.per_node)
    assert report.label_bits == sum(e.label_bits for e in report.per_node)
    assert report.aux_bits == sum(e.aux_bits for e in report.per_node)
    assert report.integrity_bits == sum(
        e.integrity_bits for e in report.per_node
    )
    assert report.total_bits == (
        report.routing_bits + report.label_bits + report.aux_bits
        + report.integrity_bits
    )
    assert report.max_node_bits == max(e.total for e in report.per_node)
