"""Tests for profile_section / @timed and their registry plumbing."""

from __future__ import annotations

import pytest

from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.core import build_scheme
from repro.incompressibility import Lemma1Codec, evaluate_codec
from repro.observability import (
    MetricsRegistry,
    phase_breakdown,
    profile_section,
    set_registry,
    timed,
)
from repro.observability.profiling import PHASE_COUNTER, PHASE_HISTOGRAM


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestProfileSection:
    def test_records_timing_and_call_count(self, registry):
        with profile_section("unit.block"):
            pass
        with profile_section("unit.block"):
            pass
        hist = registry.histogram(PHASE_HISTOGRAM, phase="unit.block")
        assert hist.count == 2
        assert hist.sum >= 0.0
        assert registry.counter(PHASE_COUNTER, phase="unit.block").value == 2

    def test_explicit_registry_overrides_global(self):
        local = MetricsRegistry()
        with profile_section("unit.local", registry=local):
            pass
        assert local.histogram(PHASE_HISTOGRAM, phase="unit.local").count == 1

    def test_records_even_on_exception(self, registry):
        with pytest.raises(RuntimeError):
            with profile_section("unit.fails"):
                raise RuntimeError("boom")
        assert registry.histogram(PHASE_HISTOGRAM, phase="unit.fails").count == 1


class TestTimedDecorator:
    def test_explicit_phase_name(self, registry):
        @timed("unit.decorated")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert (
            registry.histogram(PHASE_HISTOGRAM, phase="unit.decorated").count
            == 1
        )

    def test_derived_phase_name(self, registry):
        @timed()
        def helper():
            return 42

        helper()
        breakdown = phase_breakdown(registry)
        assert any("helper" in phase for phase in breakdown)


class TestWiredPhases:
    def test_build_scheme_records_phases(self, registry):
        graph = gnp_random_graph(24, seed=0)
        build_scheme(
            "thm1-two-level", graph, RoutingModel(Knowledge.II, Labeling.ALPHA)
        )
        breakdown = phase_breakdown(registry)
        assert breakdown["build.thm1-two-level"]["calls"] == 1
        assert breakdown["build.thm1-two-level.plan"]["calls"] == 1
        assert breakdown["build.thm1-two-level"]["total_s"] >= 0.0

    def test_space_report_publishes_table_bits(self, registry):
        graph = gnp_random_graph(24, seed=0)
        scheme = build_scheme(
            "interval", graph, RoutingModel(Knowledge.II, Labeling.BETA)
        )
        report = scheme.space_report()
        gauge = registry.gauge(
            "repro_scheme_table_bits", scheme="interval", n=24
        )
        assert gauge.value == report.total_bits > 0

    def test_codec_encode_decode_phases(self, registry):
        graph = gnp_random_graph(32, seed=0)
        evaluate_codec(Lemma1Codec(), graph)
        breakdown = phase_breakdown(registry)
        encode_phases = [p for p in breakdown if p.endswith(".encode")]
        decode_phases = [p for p in breakdown if p.endswith(".decode")]
        assert encode_phases and decode_phases

    def test_phase_breakdown_shape(self, registry):
        with profile_section("unit.shape"):
            pass
        entry = phase_breakdown(registry)["unit.shape"]
        assert set(entry) == {"calls", "total_s", "mean_s"}
