"""Unit tests for :class:`repro.graphs.LabeledGraph`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import LabeledGraph, complete_graph, path_graph


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledGraph(3)
        assert graph.n == 3
        assert graph.edge_count == 0
        assert list(graph.edges()) == []

    def test_single_node(self):
        graph = LabeledGraph(1)
        assert graph.degree(1) == 0
        assert graph.is_connected()

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            LabeledGraph(0)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            LabeledGraph(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            LabeledGraph(3, [(1, 4)])

    def test_duplicate_edges_collapse(self):
        graph = LabeledGraph(3, [(1, 2), (2, 1), (1, 2)])
        assert graph.edge_count == 1

    def test_edges_sorted_lexicographically(self):
        graph = LabeledGraph(4, [(3, 4), (1, 3), (1, 2)])
        assert list(graph.edges()) == [(1, 2), (1, 3), (3, 4)]


class TestAccess:
    def test_neighbors_sorted(self):
        graph = LabeledGraph(5, [(3, 5), (3, 1), (3, 4)])
        assert graph.neighbors(3) == (1, 4, 5)

    def test_neighbor_set(self):
        graph = LabeledGraph(4, [(1, 2), (1, 3)])
        assert graph.neighbor_set(1) == frozenset({2, 3})

    def test_degree(self):
        graph = path_graph(4)
        assert graph.degree(1) == 1
        assert graph.degree(2) == 2

    def test_has_edge_symmetric(self):
        graph = LabeledGraph(3, [(1, 2)])
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(1, 3)

    def test_non_neighbors(self):
        graph = LabeledGraph(5, [(1, 2), (1, 4)])
        assert graph.non_neighbors(1) == (3, 5)

    def test_non_neighbors_excludes_self(self):
        graph = complete_graph(4)
        assert graph.non_neighbors(2) == ()

    def test_node_range_check(self):
        graph = LabeledGraph(3)
        with pytest.raises(GraphError):
            graph.degree(0)
        with pytest.raises(GraphError):
            graph.neighbors(4)


class TestMatrix:
    def test_adjacency_matrix_symmetric(self):
        graph = LabeledGraph(3, [(1, 2), (2, 3)])
        matrix = graph.adjacency_matrix()
        assert matrix[0, 1] and matrix[1, 0]
        assert matrix[1, 2] and matrix[2, 1]
        assert not matrix[0, 2]
        assert not matrix.diagonal().any()

    def test_matrix_cached(self):
        graph = LabeledGraph(3, [(1, 2)])
        assert graph.adjacency_matrix() is graph.adjacency_matrix()


class TestTransformations:
    def test_relabel_identity(self):
        graph = path_graph(4)
        same = graph.relabel({u: u for u in graph.nodes})
        assert same == graph

    def test_relabel_swap(self):
        graph = LabeledGraph(3, [(1, 2)])
        swapped = graph.relabel({1: 3, 2: 2, 3: 1})
        assert swapped.has_edge(3, 2)
        assert not swapped.has_edge(1, 2)

    def test_relabel_rejects_non_permutation(self):
        graph = path_graph(3)
        with pytest.raises(GraphError):
            graph.relabel({1: 1, 2: 1, 3: 3})

    def test_relabel_preserves_degree_multiset(self):
        graph = LabeledGraph(4, [(1, 2), (1, 3), (1, 4)])
        relabeled = graph.relabel({1: 4, 2: 3, 3: 2, 4: 1})
        assert sorted(relabeled.degree(u) for u in relabeled.nodes) == sorted(
            graph.degree(u) for u in graph.nodes
        )

    def test_without_edge(self):
        graph = path_graph(3)
        cut = graph.without_edge(1, 2)
        assert not cut.has_edge(1, 2)
        assert cut.has_edge(2, 3)

    def test_without_edge_rejects_missing(self):
        with pytest.raises(GraphError):
            path_graph(3).without_edge(1, 3)


class TestConnectivity:
    def test_path_connected(self):
        assert path_graph(5).is_connected()

    def test_disconnected(self):
        assert not LabeledGraph(4, [(1, 2)]).is_connected()

    def test_complete_connected(self):
        assert complete_graph(6).is_connected()


class TestEquality:
    def test_equality_by_structure(self):
        a = LabeledGraph(3, [(1, 2), (2, 3)])
        b = LabeledGraph(3, [(2, 3), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_different_edges(self):
        assert LabeledGraph(3, [(1, 2)]) != LabeledGraph(3, [(1, 3)])

    def test_inequality_different_n(self):
        assert LabeledGraph(3, [(1, 2)]) != LabeledGraph(4, [(1, 2)])


@given(
    st.integers(min_value=2, max_value=12).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=1, max_value=n),
                    st.integers(min_value=1, max_value=n),
                ).filter(lambda e: e[0] != e[1]),
                max_size=30,
            ),
        )
    )
)
def test_degree_sum_is_twice_edges(case):
    n, edges = case
    graph = LabeledGraph(n, edges)
    assert sum(graph.degree(u) for u in graph.nodes) == 2 * graph.edge_count
