"""Property tests for the table-corruption axis (satellite of CORRUPTION).

Two invariants beyond what ``test_chaos_property`` already pins:

* A node that is simultaneously crashed (``node_down``) and
  table-corrupt starts delivering again only after *both* conditions
  clear — recovery alone leaves the quarantine in force, healing alone
  leaves the node dead.
* Mixing timed corruption events into arbitrary chaos schedules never
  makes the engine raise, and it still emits exactly one record per
  injected message.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import build_scheme
from repro.graphs import gnp_random_graph, path_graph
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import (
    EventDrivenSimulator,
    FaultEvent,
    FaultSchedule,
    MutationKind,
    Network,
    RetryPolicy,
    TableMutation,
    table_corruption,
)

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)
IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)

# Mutations CRC-8 framing is *guaranteed* to catch at decode time: any
# single bit flip and any burst no wider than the checksum.  (Truncation
# is only probabilistically caught, which would make the double-fault
# property flaky.)
_DETECTABLE_MUTATIONS = st.one_of(
    st.builds(
        TableMutation,
        kind=st.just(MutationKind.BIT_FLIP),
        offsets=st.tuples(st.integers(0, 1 << 16)),
    ),
    st.builds(
        TableMutation,
        kind=st.just(MutationKind.BURST),
        offsets=st.tuples(st.integers(0, 1 << 16)),
        span=st.integers(1, 8),
    ),
)


@given(
    mutation=_DETECTABLE_MUTATIONS,
    clear_down_first=st.booleans(),
)
def test_doubly_faulted_node_needs_both_conditions_cleared(
    mutation, clear_down_first
):
    """node_down + table-corrupt: delivery resumes only after both clear."""
    graph = path_graph(5)
    scheme = IntegrityWrapper(
        build_scheme("full-table", graph, IA_ALPHA), FramingPolicy.CRC8
    )
    network = Network(scheme)
    network.corrupt_table(3, mutation)
    network.fail_node(3)
    # The cut vertex is both crashed and corrupt: nothing crosses.
    assert not network.route(1, 5).delivered

    if clear_down_first:
        network.restore_node(3)
    else:
        network.heal_table(3)
    # One condition cleared: the path through node 3 still cannot carry
    # (either the node is still down, or its first decode after the
    # restart detects the damage and quarantines it).
    assert not network.route(1, 5).delivered

    if clear_down_first:
        network.heal_table(3)
    else:
        network.restore_node(3)
    assert network.route(1, 5).delivered
    assert network.quarantined_nodes == set()


@st.composite
def corruption_chaos_cases(draw):
    graph_seed = draw(st.integers(0, 5))
    graph = gnp_random_graph(12, seed=graph_seed)
    corrupt_count = draw(st.integers(0, 6))
    corruption = table_corruption(
        graph,
        corrupt_count,
        horizon=30.0,
        seed=draw(st.integers(0, 50)),
        kinds=tuple(MutationKind),
        flips=draw(st.integers(1, 4)),
        burst_span=draw(st.integers(1, 12)),
        truncate_bits=draw(st.integers(1, 8)),
    )
    events = []
    for _ in range(draw(st.integers(0, 10))):
        node = draw(st.integers(1, graph.n))
        time = draw(st.floats(0.0, 30.0, allow_nan=False))
        ctor = (
            FaultEvent.node_down if draw(st.booleans()) else FaultEvent.node_up
        )
        events.append(ctor(time, node))
    schedule = corruption + FaultSchedule(events)
    messages = []
    for _ in range(draw(st.integers(1, 10))):
        source = draw(st.integers(1, graph.n))
        destination = draw(
            st.integers(1, graph.n).filter(lambda d: d != source)
        )
        messages.append(
            (source, destination, draw(st.floats(0.0, 25.0, allow_nan=False)))
        )
    policy = draw(st.sampled_from(list(FramingPolicy)))
    repair_delay = draw(
        st.one_of(st.none(), st.floats(0.5, 10.0, allow_nan=False))
    )
    retry = draw(st.booleans())
    return graph, schedule, messages, policy, repair_delay, retry


@given(corruption_chaos_cases())
def test_corruption_chaos_never_raises(case):
    graph, schedule, messages, policy, repair_delay, retry = case
    scheme = build_scheme("full-table", graph, II_ALPHA)
    if policy is not FramingPolicy.NONE:
        scheme = IntegrityWrapper(scheme, policy)
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=(
            RetryPolicy(max_attempts=3, base_delay=0.5) if retry else None
        ),
        repair_delay=repair_delay,
    )
    for source, destination, at_time in messages:
        sim.inject(source, destination, at_time)
    records = sim.run()
    assert len(records) == len(messages)
    for record in records:
        assert record.path[0] == record.source
        for u, v in zip(record.path, record.path[1:]):
            assert graph.has_edge(u, v)
        if record.delivered:
            assert record.path[-1] == record.destination
        else:
            assert record.drop_reason is not None
    stats = sim.network.corruption_summary()
    # A single corruption can legitimately be counted undetected (it
    # decoded cleanly) and *later* detected at runtime, so the two
    # counters bound `injected` separately, not jointly.
    assert stats["detected"] <= stats["injected"]
    assert stats["undetected"] <= stats["injected"]
    assert stats["healed"] <= stats["injected"]
