"""Unit and property tests for BitWriter/BitReader and the paper's codes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import BitstreamError

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=80)


class TestPrimitives:
    def test_write_read_bits(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bit(0)
        writer.write_bit(1)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(3)] == [1, 0, 1]

    def test_write_bit_rejects_non_bit(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bit(2)

    def test_uint_round_trip(self):
        writer = BitWriter()
        writer.write_uint(42, 7)
        assert BitReader(writer.getvalue()).read_uint(7) == 42

    def test_uint_rejects_overflow(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_uint(4, 2)

    def test_uint_zero_width(self):
        writer = BitWriter()
        writer.write_uint(0, 0)
        assert len(writer.getvalue()) == 0

    def test_read_past_end(self):
        reader = BitReader(BitArray.from01("1"))
        reader.read_bit()
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_position_and_remaining(self):
        reader = BitReader(BitArray.from01("1010"))
        assert reader.remaining == 4
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.remaining == 1
        assert not reader.at_end()
        reader.read_bit()
        assert reader.at_end()

    def test_bit_length_tracks_writes(self):
        writer = BitWriter()
        writer.write_uint(3, 5)
        assert writer.bit_length == 5
        assert len(writer) == 5


class TestUnary:
    def test_unary_zero(self):
        writer = BitWriter()
        writer.write_unary(0)
        assert writer.getvalue().to01() == "0"

    def test_unary_value(self):
        writer = BitWriter()
        writer.write_unary(3)
        assert writer.getvalue().to01() == "1110"

    def test_unary_rejects_negative(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_unary(-1)

    @given(st.integers(min_value=0, max_value=500))
    def test_unary_round_trip(self, value):
        writer = BitWriter()
        writer.write_unary(value)
        assert BitReader(writer.getvalue()).read_unary() == value

    @given(st.integers(min_value=0, max_value=200))
    def test_unary_length_is_value_plus_one(self, value):
        writer = BitWriter()
        writer.write_unary(value)
        assert len(writer.getvalue()) == value + 1


class TestHatCode:
    """The paper's ``ẑ = 1^|z| 0 z`` (Definition 4)."""

    def test_example_from_paper(self):
        # x̄y with x = 110, y = 11 gives 111011011.
        writer = BitWriter()
        writer.write_hat(BitArray.from01("110"))
        writer.write_bits(BitArray.from01("11"))
        assert writer.getvalue().to01() == "111011011"

    def test_decode_example_from_paper(self):
        reader = BitReader(BitArray.from01("111011011"))
        assert reader.read_hat().to01() == "110"
        assert reader.read_bits(2).to01() == "11"

    @given(bit_lists)
    def test_round_trip(self, bits):
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_hat(payload)
        assert BitReader(writer.getvalue()).read_hat() == payload

    @given(bit_lists)
    def test_length_is_2z_plus_1(self, bits):
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_hat(payload)
        assert len(writer.getvalue()) == 2 * len(payload) + 1


class TestPrimeCode:
    """The paper's shorter self-delimiting ``z'`` code."""

    @given(bit_lists)
    def test_round_trip(self, bits):
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_prime(payload)
        assert BitReader(writer.getvalue()).read_prime() == payload

    @given(bit_lists, bit_lists)
    def test_concatenation_parses_unambiguously(self, first, second):
        a, b = BitArray(first), BitArray(second)
        writer = BitWriter()
        writer.write_prime(a)
        writer.write_prime(b)
        reader = BitReader(writer.getvalue())
        assert reader.read_prime() == a
        assert reader.read_prime() == b
        assert reader.at_end()

    @given(bit_lists)
    def test_length_bound(self, bits):
        """``|z'| = |z| + 2⌈log(|z|+1)⌉ + 1`` up to the ceiling convention."""
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_prime(payload)
        z = len(payload)
        assert len(writer.getvalue()) == z + 2 * z.bit_length() + 1


class TestElias:
    @given(st.integers(min_value=0, max_value=10**6))
    def test_gamma_round_trip(self, value):
        writer = BitWriter()
        writer.write_gamma(value)
        assert BitReader(writer.getvalue()).read_gamma() == value

    @given(st.integers(min_value=0, max_value=10**6))
    def test_delta_round_trip(self, value):
        writer = BitWriter()
        writer.write_delta(value)
        assert BitReader(writer.getvalue()).read_delta() == value

    def test_gamma_zero_is_one_bit(self):
        writer = BitWriter()
        writer.write_gamma(0)
        assert writer.getvalue().to01() == "0"

    @given(st.integers(min_value=1, max_value=10**6))
    def test_gamma_length(self, value):
        writer = BitWriter()
        writer.write_gamma(value)
        assert len(writer.getvalue()) == 2 * (value + 1).bit_length() - 1

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=30))
    def test_gamma_stream(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_gamma() for _ in values] == values
        assert reader.at_end()

    def test_gamma_rejects_negative(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_gamma(-1)


class TestMixedStreams:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["bit", "uint", "unary", "gamma"]),
                      st.integers(min_value=0, max_value=255)),
            max_size=40,
        )
    )
    def test_heterogeneous_round_trip(self, operations):
        writer = BitWriter()
        for kind, value in operations:
            if kind == "bit":
                writer.write_bit(value & 1)
            elif kind == "uint":
                writer.write_uint(value, 8)
            elif kind == "unary":
                writer.write_unary(value % 32)
            else:
                writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        for kind, value in operations:
            if kind == "bit":
                assert reader.read_bit() == value & 1
            elif kind == "uint":
                assert reader.read_uint(8) == value
            elif kind == "unary":
                assert reader.read_unary() == value % 32
            else:
                assert reader.read_gamma() == value
        assert reader.at_end()
