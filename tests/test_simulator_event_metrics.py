"""Tests for the event-driven simulator, failure sampling and metrics."""

from __future__ import annotations

import math

import pytest

from repro.core import build_scheme
from repro.errors import GraphError, RoutingError
from repro.graphs import gnp_random_graph, path_graph, star_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import (
    EventDrivenSimulator,
    Network,
    sample_incident_failures,
    sample_link_failures,
    summarize,
)


class TestEventDrivenSimulator:
    def test_latency_counts_hops(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(5), model_ia_alpha)
        sim = EventDrivenSimulator(scheme, link_latency=2.0)
        sim.inject(1, 5, at_time=0.0)
        (record,) = sim.run()
        assert record.delivered
        assert record.hops == 4
        assert record.latency == pytest.approx(8.0)

    def test_injection_time_offsets(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        sim = EventDrivenSimulator(scheme)
        sim.inject(1, 3, at_time=10.0)
        (record,) = sim.run()
        assert record.latency == pytest.approx(2.0)

    def test_many_messages_all_delivered(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        sim = EventDrivenSimulator(build_scheme("thm4-hub", graph, model_ii_alpha))
        pairs = [(u, 24 - u) for u in range(1, 12)]
        for i, (u, w) in enumerate(pairs):
            sim.inject(u, w, at_time=float(i))
        records = sim.run()
        assert len(records) == len(pairs)
        assert all(r.delivered for r in records)

    def test_rejects_nonpositive_latency(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        with pytest.raises(RoutingError):
            EventDrivenSimulator(scheme, link_latency=0.0)

    def test_stateful_probe_messages(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=32)
        sim = EventDrivenSimulator(build_scheme("thm5-probe", graph, model_ii_alpha))
        target = graph.non_neighbors(1)[0]
        sim.inject(1, target)
        (record,) = sim.run()
        assert record.delivered
        assert record.latency == pytest.approx(float(record.hops))

    def test_run_drains_queue(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        sim = EventDrivenSimulator(scheme)
        sim.inject(1, 3)
        assert len(sim.run()) == 1
        assert sim.run() == []


class TestFailureSampling:
    def test_requested_count(self):
        graph = gnp_random_graph(20, seed=2)
        failures = sample_link_failures(graph, 12, seed=1)
        assert len(failures) == 12
        assert all(graph.has_edge(*tuple(link)) for link in failures)

    def test_deterministic(self):
        graph = gnp_random_graph(20, seed=2)
        assert sample_link_failures(graph, 5, seed=4) == sample_link_failures(
            graph, 5, seed=4
        )

    def test_keeps_connectivity(self):
        graph = gnp_random_graph(20, seed=2)
        failures = sample_link_failures(graph, 30, seed=3)
        survivor = graph
        for link in failures:
            survivor = survivor.without_edge(*tuple(link))
        assert survivor.is_connected()

    def test_star_cannot_lose_links(self):
        with pytest.raises(GraphError):
            sample_link_failures(star_graph(6), 2, seed=0)

    def test_too_many_failures_rejected(self):
        with pytest.raises(GraphError):
            sample_link_failures(path_graph(4), 5, seed=0)

    def test_incident_failures(self):
        graph = gnp_random_graph(20, seed=2)
        failures = sample_incident_failures(graph, node=1, count=3, seed=5)
        assert len(failures) == 3
        assert all(1 in link for link in failures)

    def test_incident_spares_named_link(self):
        graph = gnp_random_graph(20, seed=2)
        nb = graph.neighbors(1)[0]
        failures = sample_incident_failures(
            graph, node=1, count=graph.degree(1) - 1, seed=5, spare=(1, nb)
        )
        assert frozenset((1, nb)) not in failures


class TestMetrics:
    def test_summary_of_perfect_run(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        network = Network(build_scheme("thm1-two-level", graph, model_ii_alpha))
        records = [network.route(1, w) for w in range(2, 25)]
        metrics = summarize(records, graph)
        assert metrics.delivered_fraction == 1.0
        assert metrics.max_stretch == 1.0
        assert metrics.mean_hops <= 2.0
        assert not metrics.drop_reasons

    def test_summary_with_drops(self, model_ia_alpha):
        network = Network(build_scheme("full-table", path_graph(4), model_ia_alpha))
        network.fail_link(2, 3)
        records = [network.route(1, 4), network.route(1, 2)]
        metrics = summarize(records, path_graph(4))
        assert metrics.messages == 2
        assert metrics.delivered == 1
        assert metrics.delivered_fraction == 0.5
        assert sum(metrics.drop_reasons.values()) == 1

    def test_empty_batch(self):
        metrics = summarize([], path_graph(3))
        assert metrics.messages == 0
        assert metrics.delivered_fraction == 0.0
        assert math.isnan(metrics.mean_stretch)

    def test_p95_between_mean_and_max(self, model_ii_alpha):
        graph = gnp_random_graph(32, seed=8)
        network = Network(build_scheme("thm4-hub", graph, model_ii_alpha))
        records = [
            network.route(u, w)
            for u in range(1, 9)
            for w in range(9, 33)
        ]
        metrics = summarize(records, graph)
        assert metrics.mean_stretch <= metrics.p95_stretch <= metrics.max_stretch
