"""Tests for the metrics registry and its exposition formats."""

from __future__ import annotations

import json
import math

import pytest

from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    sanitize_metric_name,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_and_adjust(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.5, 1.5, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(4.0)
        assert hist.mean == pytest.approx(4.0 / 3)
        snap = hist.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 2.0

    def test_empty_histogram_mean_is_nan(self):
        hist = MetricsRegistry().histogram("h")
        assert math.isnan(hist.mean)
        assert math.isnan(hist.quantile(0.5))

    def test_cumulative_buckets_end_at_inf(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        buckets = hist.cumulative_buckets()
        assert buckets[0] == (1.0, 1)
        assert buckets[1] == (10.0, 2)
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 3

    def test_quantile_is_bucket_resolution(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 10.0, 100.0])
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(50.0)
        assert hist.quantile(0.5) == 1.0
        # p100 is clamped to the observed max, not the bucket bound
        assert hist.quantile(1.0) == 50.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1) is registry.counter("x", a=1)
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_and_json(self):
        registry = MetricsRegistry()
        registry.counter("repro_messages_routed_total").inc(7)
        registry.gauge("bits", scheme="interval").set(1234)
        payload = json.loads(registry.to_json())
        assert payload["repro_messages_routed_total"][0]["value"] == 7
        entry = payload["bits"][0]
        assert entry["labels"] == {"scheme": "interval"}
        assert entry["kind"] == "gauge"

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.metrics() == []
        assert registry.counter("x").value == 0


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_drops_total", reason="LINK_DOWN").inc(3)
        registry.gauge("repro_scheme_table_bits", scheme="interval").set(99)
        text = registry.to_prometheus()
        assert "# TYPE repro_drops_total counter" in text
        assert 'repro_drops_total{reason="LINK_DOWN"} 3' in text
        assert "# TYPE repro_scheme_table_bits gauge" in text
        assert 'repro_scheme_table_bits{scheme="interval"} 99' in text
        assert text.endswith("\n")

    def test_histogram_exposition_has_buckets_sum_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=[1.0, 2.0], phase="x")
        hist.observe(0.5)
        hist.observe(1.5)
        text = registry.to_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{phase="x",le="1"} 1' in text
        assert 'lat_bucket{phase="x",le="2"} 2' in text
        assert 'lat_bucket{phase="x",le="+Inf"} 2' in text
        assert 'lat_sum{phase="x"} 2' in text
        assert 'lat_count{phase="x"} 2' in text

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1).inc()
        registry.counter("c", a=2).inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE c counter") == 1

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("build.thm1-two-level") == (
            "build_thm1_two_level"
        )
        assert sanitize_metric_name("9lives").startswith("_")


class TestHelpAndEscaping:
    def test_golden_exposition(self):
        """Full exposition text of a small registry, byte for byte."""
        registry = MetricsRegistry()
        registry.counter("repro_drops_total", reason="LINK_DOWN").inc(3)
        registry.gauge("repro_scheme_table_bits", scheme="interval").set(99)
        assert registry.to_prometheus() == (
            "# HELP repro_drops_total Messages dropped, labelled by "
            "DropReason.\n"
            "# TYPE repro_drops_total counter\n"
            'repro_drops_total{reason="LINK_DOWN"} 3\n'
            "# HELP repro_scheme_table_bits Total routing-table bits of "
            "the built scheme.\n"
            "# TYPE repro_scheme_table_bits gauge\n"
            'repro_scheme_table_bits{scheme="interval"} 99\n'
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", detail='path\\to "x"\nnext').inc()
        text = registry.to_prometheus()
        assert 'detail="path\\\\to \\"x\\"\\nnext"' in text
        assert "\n\n" not in text  # the raw newline never leaks

    def test_describe_overrides_well_known_help(self):
        registry = MetricsRegistry()
        registry.counter("repro_drops_total").inc()
        registry.describe("repro_drops_total", "Custom text.")
        assert "# HELP repro_drops_total Custom text." in (
            registry.to_prometheus()
        )

    def test_help_text_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.describe("c", "slash \\ and\nnewline")
        assert "# HELP c slash \\\\ and\\nnewline\n" in (
            registry.to_prometheus()
        )

    def test_unknown_metric_has_no_help_line(self):
        registry = MetricsRegistry()
        registry.counter("mystery_total").inc()
        text = registry.to_prometheus()
        assert "# HELP" not in text
        assert "# TYPE mystery_total counter" in text

    def test_help_line_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("repro_drops_total", reason="a").inc()
        registry.counter("repro_drops_total", reason="b").inc()
        assert registry.to_prometheus().count("# HELP repro_drops_total") == 1


class TestGlobalRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
