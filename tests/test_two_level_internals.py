"""Deep unit tests for the Theorem 1 construction internals."""

from __future__ import annotations

import math

import pytest

from repro.core import TwoLevelScheme, route_message, verify_scheme
from repro.core.two_level import split_threshold
from repro.bitio import BitReader
from repro.graphs import (
    common_neighbors,
    complete_graph,
    gnp_random_graph,
    min_common_neighbors,
)
from repro.models import Knowledge, Labeling, RoutingModel


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(64, seed=77)


@pytest.fixture(scope="module")
def scheme(graph, model_ii_alpha=None):
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    return TwoLevelScheme(graph, model)


class TestTableStructure:
    def test_header_parses(self, graph, scheme):
        for u in (1, 30, 64):
            reader = BitReader(scheme.encode_function(u))
            assert reader.read_bit() == 0  # least strategy
            m = reader.read_gamma()
            assert m == len(scheme.covering_sequence_of(u))

    def test_unary_entries_bounded_by_sequence(self, graph, scheme):
        """Every unary index refers into the covering sequence."""
        for u in (5, 40):
            reader = BitReader(scheme.encode_function(u))
            reader.read_bit()
            m = reader.read_gamma()
            zero_entries = 0
            for _ in graph.non_neighbors(u):
                t = reader.read_unary()
                if t == 0:
                    zero_entries += 1
                else:
                    assert 1 <= t <= m
            width = max(m - 1, 0).bit_length()
            for _ in range(zero_entries):
                assert reader.read_uint(width) <= m - 1
            assert reader.at_end()

    def test_table1_size_within_claim1_budget(self, graph, scheme):
        """Claim 1's geometric decay keeps the unary table ≤ 4n whp."""
        n = graph.n
        for u in graph.nodes:
            reader = BitReader(scheme.encode_function(u))
            reader.read_bit()
            m = reader.read_gamma()
            table1_bits = 0
            zero_entries = 0
            for _ in graph.non_neighbors(u):
                t = reader.read_unary()
                table1_bits += t + 1
                if t == 0:
                    zero_entries += 1
            assert table1_bits <= 4 * n
            # Table 2 holds at most n / log n entries (the split rule).
            assert zero_entries <= split_threshold(n, "log") + 1

    def test_intermediates_are_least_covering(self, graph, scheme):
        """The stored index is the *first* covering neighbour in the
        sequence — the paper's 'least intermediate node'."""
        u = 9
        sequence = scheme.covering_sequence_of(u)
        function = scheme.function(u)
        for w in graph.non_neighbors(u):
            chosen = function.intermediate_for(w)
            position = sequence.index(chosen)
            for earlier in sequence[:position]:
                assert not graph.has_edge(earlier, w)


class TestDegenerateGraphs:
    def test_two_node_graph(self):
        from repro.graphs import LabeledGraph

        model = RoutingModel(Knowledge.II, Labeling.ALPHA)
        scheme = TwoLevelScheme(LabeledGraph(2, [(1, 2)]), model)
        assert verify_scheme(scheme).ok()
        assert len(scheme.encode_function(1)) <= 4

    def test_complete_graph_empty_tables(self):
        model = RoutingModel(Knowledge.II, Labeling.ALPHA)
        scheme = TwoLevelScheme(complete_graph(6), model)
        for u in range(1, 7):
            assert scheme.covering_sequence_of(u) == ()
            trace = route_message(scheme, u, (u % 6) + 1)
            assert trace.hops == 1


class TestRedundancyContext:
    def test_common_neighbors_support_theorem1(self, graph):
        """Every non-adjacent pair has at least one intermediary — the
        structural fact the whole construction stands on."""
        assert min_common_neighbors(graph) >= 1

    def test_common_neighbors_are_intermediary_candidates(self, graph, scheme):
        u = 3
        function = scheme.function(u)
        for w in graph.non_neighbors(u)[:10]:
            assert function.intermediate_for(w) in common_neighbors(graph, u, w)

    def test_redundancy_scales_like_quarter_n(self):
        """|N(u) ∩ N(v)| concentrates near n/4 (binomial(n−2, 1/4))."""
        graph = gnp_random_graph(128, seed=3)
        worst = min_common_neighbors(graph)
        assert worst >= 128 / 4 - 4 * math.sqrt(128 * 3 / 16)
