"""Tests for the Claim 1 coverage codec."""

from __future__ import annotations

import math

import pytest

from repro.errors import CodecError
from repro.graphs import LabeledGraph, gnp_random_graph
from repro.incompressibility import (
    Claim1Codec,
    coverage_deviation,
    evaluate_codec,
)


def skewed_coverage_graph(n: int = 30) -> LabeledGraph:
    """Node 1 whose second covering neighbour covers the whole remainder.

    1 — 2 and 1 — 3; v₁ = 2 covers only node 4, v₂ = 3 covers everything
    else, so the t = 2 step has |A_t| = m_{t-1} — maximally skewed.
    """
    edges = [(1, 2), (1, 3), (2, 4)]
    edges += [(3, w) for w in range(4, n + 1)]
    # Background edges among the far nodes keep it non-trivial.
    edges += [(w, w + 1) for w in range(5, n, 2)]
    return LabeledGraph(n, edges)


class TestRoundTrip:
    @pytest.mark.parametrize("node,step", [(1, 1), (1, 3), (7, 2), (20, 1)])
    def test_random_graph_round_trip(self, node, step):
        graph = gnp_random_graph(36, seed=9)
        report = evaluate_codec(Claim1Codec(node, step), graph)
        assert report.round_trip_ok

    def test_skewed_graph_round_trip(self):
        graph = skewed_coverage_graph()
        report = evaluate_codec(Claim1Codec(1, 2), graph)
        assert report.round_trip_ok

    def test_invalid_step_rejected(self):
        graph = gnp_random_graph(20, seed=2)
        with pytest.raises(CodecError):
            Claim1Codec(1, 0).encode(graph)
        with pytest.raises(CodecError):
            Claim1Codec(1, graph.degree(1) + 1).encode(graph)


class TestClaim1Inequality:
    def test_random_steps_are_balanced(self):
        """Claim 1: coverage deviation stays near 1/2 ± 1/6 on random graphs."""
        n = 128
        graph = gnp_random_graph(n, seed=11)
        threshold = n / math.log2(math.log2(n))
        for u in (1, 50, 100):
            remainder = len(graph.non_neighbors(u))
            t = 1
            while remainder > threshold:
                assert coverage_deviation(graph, u, t) <= 1.0 / 6.0 + 0.05
                covered = len(
                    set(graph.non_neighbors(u))
                    & graph.neighbor_set(graph.neighbors(u)[t - 1])
                )
                # advance manually (approximation fine for the loop guard)
                remainder -= covered
                t += 1
                if t > 6:
                    break

    def test_skewed_step_detected(self):
        graph = skewed_coverage_graph()
        assert coverage_deviation(graph, 1, 2) > 0.4

    def test_skewed_step_compresses(self):
        """A maximally skewed A_t yields real savings (m - O(log))."""
        graph = skewed_coverage_graph()
        codec = Claim1Codec(1, 2)
        report = evaluate_codec(codec, graph)
        # m_{t-1} = 26 literal bits collapse to a 0-bit enumerative code;
        # the log-scale header leaves single-digit net savings at n = 30.
        assert report.savings >= 5
        assert codec.expected_code_width(graph) == 0  # C(m, m) = 1

    def test_random_step_saves_little(self):
        graph = gnp_random_graph(64, seed=21)
        report = evaluate_codec(Claim1Codec(1, 1), graph)
        # Balanced block: the enumerative code ≈ m − ½ log m bits,
        # against the log-n-scale header — no real compression.
        assert report.savings <= 2 * math.log2(64)

    def test_enumerative_width_vs_literal(self):
        graph = gnp_random_graph(64, seed=21)
        codec = Claim1Codec(1, 1)
        remainder = len(graph.non_neighbors(1))
        assert codec.expected_code_width(graph) <= remainder
