"""Trace I/O round-trips: unicode, causal links, manifests, torn writes."""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    JsonlTracer,
    RecordingTracer,
    RunManifest,
    TraceDecodeError,
    TraceEvent,
    iter_trace,
    load_events,
    read_trace,
    read_trace_manifest,
)


def _write_trace(path, manifest=None):
    tracer = JsonlTracer(path, manifest=manifest)
    inject = tracer.inject(1, 0, 5, time=0.0)
    hop = tracer.hop(1, 0, 3, 0, time=0.5)
    tracer.deliver(1, 5, time=1.0, hop=1)
    tracer.close()
    return inject, hop


class TestRoundTrip:
    def test_events_and_links_survive(self, tmp_path):
        path = tmp_path / "t.jsonl"
        inject_seq, hop_seq = _write_trace(path)
        events = read_trace(path)
        assert [e.event for e in events] == ["inject", "hop", "deliver"]
        assert events[1].parent == inject_seq
        assert events[2].parent == hop_seq

    def test_unicode_payloads(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.drop(
            1, 3, "LINK_DOWN", time=1.0,
            detail="связь → ∅ (café “quote”)",
            subject=("link", "1", "3"),
        )
        tracer.close()
        events = read_trace(path)
        assert events[0].detail == "связь → ∅ (café “quote”)"
        assert events[0].subject == ("link", "1", "3")

    def test_cause_links_survive(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        corrupt = tracer.corrupt(4, time=1.0, detail="BIT_FLIP")
        tracer.quarantine(4, time=2.0, cause=corrupt)
        tracer.close()
        events = read_trace(path)
        assert events[1].cause == corrupt

    def test_iter_trace_streams_same_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, manifest=RunManifest.capture("build"))
        assert list(iter_trace(path)) == read_trace(path)

    def test_none_fields_elided_in_rows(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        first = json.loads(path.read_text().splitlines()[0])
        assert "reason" not in first
        assert "cause" not in first


class TestManifestRow:
    def test_manifest_written_first_and_recoverable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        manifest = RunManifest.capture("simulate-chaos", seed=9)
        _write_trace(path, manifest=manifest)
        first = json.loads(path.read_text().splitlines()[0])
        assert set(first) == {"manifest"}
        assert read_trace_manifest(path) == manifest

    def test_readers_skip_the_manifest_row(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path, manifest=RunManifest.capture("simulate"))
        assert [e.event for e in read_trace(path)] == [
            "inject", "hop", "deliver",
        ]

    def test_manifest_row_not_counted_as_written(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path, manifest=RunManifest.capture("build"))
        tracer.close()
        assert tracer.written == 0

    def test_manifest_less_trace_reads_fine(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        assert read_trace_manifest(path) is None
        assert len(read_trace(path)) == 3


class TestTornWrites:
    def test_truncated_final_line_names_the_location(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        whole = path.read_text()
        path.write_text(whole[:-20])  # tear the last row mid-object
        with pytest.raises(TraceDecodeError) as err:
            read_trace(path)
        assert err.value.line == 3
        assert err.value.source.endswith("t.jsonl")
        assert "not valid JSON" in err.value.problem

    def test_iter_trace_raises_on_torn_row_too(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(path)
        path.write_text(path.read_text()[:-20])
        with pytest.raises(TraceDecodeError):
            list(iter_trace(path))

    def test_non_object_row_rejected(self):
        with pytest.raises(TraceDecodeError, match="expected an object"):
            load_events(['[1, 2, 3]'])

    def test_unknown_shape_rejected(self):
        with pytest.raises(TraceDecodeError, match="neither"):
            load_events(['{"foo": 1}'])

    def test_unknown_event_key_rejected(self):
        row = json.dumps({"event": "hop", "seq": 1, "warp": 9})
        with pytest.raises(TraceDecodeError, match="bad trace event"):
            load_events([row])

    def test_blank_lines_skipped(self):
        rows = ["", json.dumps(TraceEvent("inject", seq=0).to_dict()), "  "]
        assert len(load_events(rows)) == 1


class TestRecordingParentChain:
    def test_retry_chain_reuses_message_parent(self):
        tracer = RecordingTracer()
        inject = tracer.inject(7, 0, 3, time=0.0)
        retry = tracer.retry(7, 0, attempt=1, time=1.0, reason="LINK_DOWN")
        hop = tracer.hop(7, 0, 1, 0, time=1.5, attempt=1)
        deliver = tracer.deliver(7, 3, time=2.0, attempt=1)
        by_seq = {e.seq: e for e in tracer.events}
        assert by_seq[retry].parent == inject
        assert by_seq[hop].parent == retry
        assert by_seq[deliver].parent == hop

    def test_terminal_event_closes_the_chain(self):
        tracer = RecordingTracer()
        tracer.inject(1, 0, 2)
        tracer.deliver(1, 2)
        fresh = tracer.inject(1, 0, 2)  # msg_id reuse starts a new tree
        assert tracer.events[-1].parent is None
        assert tracer.events[-1].seq == fresh
