"""Tests for scaling fits, sweeps and the Table 1 renderer."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    GROWTH_LAWS,
    PAPER_TABLE1,
    Table1Entry,
    best_law,
    fit_power_law,
    format_table1,
    mean_total_bits,
    run_size_sweep,
)
from repro.errors import AnalysisError
from repro.models import Knowledge, Labeling, RoutingModel


class TestPowerLaw:
    def test_exact_square(self):
        ns = [16, 32, 64, 128]
        fit = fit_power_law(ns, [7 * n * n for n in ns])
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(7.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noise_tolerated(self):
        ns = [16, 32, 64, 128, 256]
        values = [3 * n**1.5 * (1 + 0.02 * (-1) ** i) for i, n in enumerate(ns)]
        fit = fit_power_law(ns, values)
        assert fit.exponent == pytest.approx(1.5, abs=0.1)

    def test_rejects_short_input(self):
        with pytest.raises(AnalysisError):
            fit_power_law([4], [16])

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            fit_power_law([4, 8], [16, -2])


class TestBestLaw:
    def test_identifies_n_squared(self):
        ns = [32, 64, 128, 256]
        fits = best_law(ns, [3 * n * n for n in ns])
        assert fits[0].law == "n^2"
        assert fits[0].constant == pytest.approx(3.0)
        assert fits[0].relative_rms_error < 1e-9

    def test_identifies_n_log_n(self):
        ns = [64, 128, 256, 512, 1024]
        fits = best_law(ns, [5 * n * math.log2(n) for n in ns])
        assert fits[0].law == "n log n"

    def test_distinguishes_n2_from_n2_log(self):
        ns = [64, 128, 256, 512, 1024]
        fits = best_law(ns, [n * n * math.log2(n) for n in ns],
                        candidates=["n^2", "n^2 log n"])
        assert fits[0].law == "n^2 log n"

    def test_unknown_candidate_rejected(self):
        with pytest.raises(AnalysisError):
            best_law([2, 4], [1, 2], candidates=["n^9"])

    def test_all_laws_evaluable(self):
        for law, fn in GROWTH_LAWS.items():
            assert fn(128) > 0


class TestSweep:
    def test_sweep_is_reproducible(self, model_ii_alpha):
        a = run_size_sweep("thm5-probe", model_ii_alpha, ns=[24], seeds=(0,),
                           verify_pairs=None)
        b = run_size_sweep("thm5-probe", model_ii_alpha, ns=[24], seeds=(0,),
                           verify_pairs=None)
        assert a == b

    def test_sweep_verifies_schemes(self, model_ii_alpha):
        points = run_size_sweep(
            "thm4-hub", model_ii_alpha, ns=[24, 32], seeds=(0, 1),
            verify_pairs=60,
        )
        assert len(points) == 4
        assert all(p.verified_max_stretch <= 2.0 for p in points)

    def test_mean_total_bits(self, model_ii_alpha):
        points = run_size_sweep(
            "thm5-probe", model_ii_alpha, ns=[24, 32], seeds=(0, 1),
            verify_pairs=None,
        )
        means = mean_total_bits(points)
        assert means == {24: 24.0, 32: 32.0}


class TestTable1:
    def test_paper_cells_present(self):
        assert len(PAPER_TABLE1) == 11

    def test_render_with_measured_entry(self):
        entry = Table1Entry(
            section="avg-upper",
            knowledge=Knowledge.II,
            labeling=Labeling.ALPHA,
            paper_bound="O(n²)",
            measured="1.45 n² (fit)",
        )
        text = format_table1([entry])
        assert "1.45 n² (fit)" in text
        assert "average case — upper bounds" in text
        assert "neighbours known (II)" in text

    def test_unmeasured_paper_cells_shown(self):
        text = format_table1([])
        assert "(not measured)" in text
        assert "Ω(n² log n)" in text

    def test_empty_cells_are_dashes(self):
        text = format_table1([])
        assert "—" in text
