"""Tests for the Theorem 3 routing-centre scheme (stretch 1.5)."""

from __future__ import annotations

import math

import pytest

from repro.core import CenterScheme, route_message, verify_scheme
from repro.core.centers import RelayFunction
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import gnp_random_graph
from repro.models import minimal_label_bits


class TestStructure:
    def test_centers_contain_anchor_and_cover(self, random_graph_32, model_ii_alpha):
        scheme = CenterScheme(random_graph_32, model_ii_alpha, anchor=1)
        assert 1 in scheme.centers
        assert len(scheme.centers) <= 1 + 3 * 6 * math.log2(32)

    def test_every_node_adjacent_to_a_center(self, random_graph_32, model_ii_alpha):
        scheme = CenterScheme(random_graph_32, model_ii_alpha)
        for v in random_graph_32.nodes:
            if v in scheme.centers:
                continue
            assert scheme.centers & random_graph_32.neighbor_set(v)

    def test_relay_function_validates_adjacency(self):
        with pytest.raises(RoutingError):
            RelayFunction(1, (2, 3), center=4)

    def test_requires_neighbors_known(self, model_ib_alpha):
        with pytest.raises(Exception):
            CenterScheme(gnp_random_graph(24, seed=2), model_ib_alpha)


class TestCorrectness:
    def test_stretch_at_most_1_5(self, model_ii_alpha):
        graph = gnp_random_graph(48, seed=33)
        scheme = CenterScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch <= 1.5

    def test_neighbors_routed_directly(self, random_graph_32, model_ii_alpha):
        scheme = CenterScheme(random_graph_32, model_ii_alpha)
        for u in (2, 18):
            for w in random_graph_32.neighbors(u):
                assert route_message(scheme, u, w).hops == 1

    def test_paths_at_most_three_hops(self, model_ii_alpha):
        graph = gnp_random_graph(40, seed=12)
        scheme = CenterScheme(graph, model_ii_alpha)
        for u in (1, 20, 40):
            for w in graph.nodes:
                if w != u:
                    assert route_message(scheme, u, w).hops <= 3

    def test_stretch_1_5_actually_occurs(self, model_ii_alpha):
        """On diameter-2 graphs 1.5 is the only stretch strictly in (1, 2)."""
        found = False
        for seed in range(6):
            graph = gnp_random_graph(40, seed=seed * 11)
            try:
                scheme = CenterScheme(graph, model_ii_alpha)
            except SchemeBuildError:
                continue
            if verify_scheme(scheme).max_stretch == 1.5:
                found = True
                break
        assert found


class TestEncoding:
    def test_non_center_stores_log_n_bits(self, random_graph_32, model_ii_alpha):
        scheme = CenterScheme(random_graph_32, model_ii_alpha)
        for v in random_graph_32.nodes:
            if v not in scheme.centers:
                assert len(scheme.encode_function(v)) == minimal_label_bits(32)

    def test_round_trip_both_roles(self, random_graph_32, model_ii_alpha):
        scheme = CenterScheme(random_graph_32, model_ii_alpha)
        center = min(scheme.centers)
        non_center = next(
            v for v in random_graph_32.nodes if v not in scheme.centers
        )
        for u in (center, non_center):
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in random_graph_32.nodes:
                if w != u:
                    assert (
                        decoded.next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )

    def test_total_is_order_n_log_n(self, model_ii_alpha):
        """Theorem 3: less than (6c + 20) n log n total bits with c = 3."""
        for n in (64, 128):
            graph = gnp_random_graph(n, seed=n + 5)
            total = CenterScheme(graph, model_ii_alpha).space_report().total_bits
            assert total <= 38 * n * math.log2(n)

    def test_much_smaller_than_theorem1(self, model_ii_alpha):
        from repro.core import TwoLevelScheme

        graph = gnp_random_graph(96, seed=41)
        centers_total = CenterScheme(graph, model_ii_alpha).space_report().total_bits
        full_total = TwoLevelScheme(graph, model_ii_alpha).space_report().total_bits
        assert centers_total < full_total / 3
