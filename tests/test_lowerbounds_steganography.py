"""Tests for the footnote-1 port steganography channel."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitArray
from repro.core import FullTableScheme
from repro.errors import ReproError
from repro.graphs import PortAssignment, gnp_random_graph, path_graph, star_graph
from repro.lowerbounds import (
    embed_bits_in_ports,
    extract_bits_from_ports,
    node_port_capacity,
    total_port_capacity,
)
from repro.models import Knowledge, Labeling, RoutingModel


class TestCapacity:
    def test_tiny_degrees(self):
        assert node_port_capacity(0) == 0
        assert node_port_capacity(1) == 0
        assert node_port_capacity(2) == 1  # 2! = 2 permutations = 1 bit
        assert node_port_capacity(3) == 2  # 3! = 6 → 2 bits

    def test_matches_floor_log_factorial(self):
        for d in range(2, 40):
            assert node_port_capacity(d) == int(
                math.floor(math.log2(math.factorial(d)))
            )

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            node_port_capacity(-1)

    def test_total_capacity_scale(self):
        """Footnote 1's point: the channel holds Θ(n² log n) bits."""
        n = 64
        graph = gnp_random_graph(n, seed=2)
        capacity = total_port_capacity(graph)
        assert capacity >= 0.5 * (n / 2) * math.log2(n / 2) * n * 0.5

    def test_channel_is_constant_fraction_of_table(self, model_ia_alpha):
        """Free ports would hand out a constant fraction of the full table
        (both are Θ(n² log n)) — uncharged, hence the model exclusion."""
        graph = gnp_random_graph(64, seed=2)
        table_bits = FullTableScheme(graph, model_ia_alpha).space_report().total_bits
        assert total_port_capacity(graph) >= 0.25 * table_bits


class TestEmbedding:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, payload_bits, seed):
        graph = gnp_random_graph(20, seed=seed)
        rng = random.Random(payload_bits)
        payload = BitArray(rng.getrandbits(1) for _ in range(payload_bits))
        if len(payload) > total_port_capacity(graph):
            return
        ports, embedded = embed_bits_in_ports(graph, payload)
        assert embedded == len(payload)
        assert extract_bits_from_ports(ports, len(payload)) == payload

    def test_empty_payload_gives_identityish_ports(self):
        graph = gnp_random_graph(12, seed=1)
        ports, _ = embed_bits_in_ports(graph, BitArray())
        # Rank 0 = identity permutation at every node.
        assert ports.is_identity()

    def test_assignment_is_valid(self):
        graph = gnp_random_graph(16, seed=3)
        payload = BitArray([1, 0] * 40)
        ports, _ = embed_bits_in_ports(graph, payload)
        assert isinstance(ports, PortAssignment)
        for u in graph.nodes:
            for nb in graph.neighbors(u):
                assert ports.neighbor(u, ports.port(u, nb)) == nb

    def test_oversized_payload_rejected(self):
        graph = path_graph(4)  # capacity: only degree-2 middles, 1 bit each
        with pytest.raises(ReproError):
            embed_bits_in_ports(graph, BitArray([1] * 100))

    def test_star_leaves_carry_nothing(self):
        graph = star_graph(8)
        assert total_port_capacity(graph) == node_port_capacity(7)

    def test_extraction_length_checked(self):
        graph = gnp_random_graph(12, seed=1)
        ports, _ = embed_bits_in_ports(graph, BitArray([1, 0, 1]))
        with pytest.raises(ReproError):
            extract_bits_from_ports(ports, 10**6)

    def test_random_assignment_detected_as_non_payload(self):
        """A shuffled assignment almost surely violates the rank bound."""
        graph = gnp_random_graph(24, seed=7)
        ports = PortAssignment.shuffled(graph, random.Random(5))
        length = total_port_capacity(graph)
        with pytest.raises(ReproError):
            extract_bits_from_ports(ports, length)
