"""Tests for graph generators, especially the Figure 1 family."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    diameter,
    gnp_random_graph,
    lower_bound_graph,
    lower_bound_inner_nodes,
    lower_bound_middle_nodes,
    lower_bound_outer_nodes,
    path_graph,
    random_graph_stream,
    random_tree,
    star_graph,
)


class TestGnp:
    def test_seed_determinism(self):
        assert gnp_random_graph(20, seed=4) == gnp_random_graph(20, seed=4)

    def test_different_seeds_differ(self):
        assert gnp_random_graph(20, seed=4) != gnp_random_graph(20, seed=5)

    def test_p_zero_empty(self):
        assert gnp_random_graph(10, p=0.0, seed=1).edge_count == 0

    def test_p_one_complete(self):
        graph = gnp_random_graph(10, p=1.0, seed=1)
        assert graph == complete_graph(10)

    def test_rejects_bad_p(self):
        with pytest.raises(GraphError):
            gnp_random_graph(10, p=1.5)

    def test_edge_density_near_half(self):
        graph = gnp_random_graph(60, seed=8)
        expected = 60 * 59 / 4
        assert abs(graph.edge_count - expected) < 0.15 * expected

    def test_stream_is_reproducible(self):
        a = list(random_graph_stream(12, 3, seed=9))
        b = list(random_graph_stream(12, 3, seed=9))
        assert a == b

    def test_stream_distinct_samples(self):
        a, b, c = random_graph_stream(12, 3, seed=9)
        assert a != b and b != c


class TestLowerBoundGraph:
    def test_node_count(self):
        assert lower_bound_graph(5).n == 15

    def test_layer_helpers(self):
        assert list(lower_bound_inner_nodes(4)) == [1, 2, 3, 4]
        assert list(lower_bound_middle_nodes(4)) == [5, 6, 7, 8]
        assert list(lower_bound_outer_nodes(4)) == [9, 10, 11, 12]

    def test_inner_adjacent_to_all_middles(self):
        k = 4
        graph = lower_bound_graph(k)
        for inner in lower_bound_inner_nodes(k):
            assert set(graph.neighbors(inner)) == set(lower_bound_middle_nodes(k))

    def test_outer_are_pendants(self):
        k = 4
        graph = lower_bound_graph(k)
        for outer in lower_bound_outer_nodes(k):
            assert graph.degree(outer) == 1

    def test_default_assignment_is_identity(self):
        k = 3
        graph = lower_bound_graph(k)
        for i in range(1, k + 1):
            assert graph.has_edge(k + i, 2 * k + i)

    def test_custom_assignment(self):
        k = 3
        graph = lower_bound_graph(k, outer_assignment=[9, 7, 8])
        assert graph.has_edge(4, 9)
        assert graph.has_edge(5, 7)
        assert graph.has_edge(6, 8)

    def test_rejects_bad_assignment(self):
        with pytest.raises(GraphError):
            lower_bound_graph(3, outer_assignment=[7, 7, 8])

    def test_inner_outer_distance_is_two(self):
        """The forced shortest path of Theorem 9."""
        from repro.graphs import distance_matrix

        k = 4
        graph = lower_bound_graph(k)
        dist = distance_matrix(graph)
        for i in range(1, k + 1):
            for j in range(2 * k + 1, 3 * k + 1):
                assert dist[i - 1, j - 1] == 2

    def test_edge_count(self):
        k = 6
        assert lower_bound_graph(k).edge_count == k * k + k


class TestDeterministicFamilies:
    def test_path(self):
        graph = path_graph(5)
        assert graph.edge_count == 4
        assert diameter(graph) == 4

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.edge_count == 6
        assert all(graph.degree(u) == 2 for u in graph.nodes)

    def test_cycle_rejects_tiny(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.edge_count == 10
        assert diameter(graph) == 1

    def test_star(self):
        graph = star_graph(6)
        assert graph.degree(1) == 5
        assert all(graph.degree(u) == 1 for u in range(2, 7))


class TestRandomTree:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=50))
    def test_is_tree(self, n, seed):
        tree = random_tree(n, seed=seed)
        assert tree.edge_count == n - 1 or n == 1
        assert tree.is_connected()

    def test_deterministic(self):
        assert random_tree(15, seed=3) == random_tree(15, seed=3)

    def test_two_nodes(self):
        assert random_tree(2).has_edge(1, 2)
