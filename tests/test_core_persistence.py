"""Tests for whole-scheme packing/unpacking."""

from __future__ import annotations

import pytest

from repro.core import (
    build_scheme,
    pack_scheme,
    restore_scheme,
    unpack_blob,
    verify_scheme,
)
from repro.errors import CodecError
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(28, seed=43)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name", ["full-table", "thm1-two-level", "thm3-centers", "thm4-hub"]
    )
    def test_pack_unpack_restore(self, name, graph, model_ii_alpha):
        scheme = build_scheme(name, graph, model_ii_alpha)
        blob = pack_scheme(scheme)
        restored = restore_scheme(blob, graph, model_ii_alpha)
        assert restored.scheme_name == name
        report = verify_scheme(restored)
        assert report.ok()
        for u in graph.nodes:
            for w in graph.nodes:
                if w != u:
                    assert (
                        restored.function(u).next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )

    def test_blob_metadata(self, graph, model_ii_alpha):
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        blob = unpack_blob(pack_scheme(scheme))
        assert blob.scheme_name == "thm1-two-level"
        assert blob.n == graph.n
        assert set(blob.functions) == set(graph.nodes)

    def test_packed_function_bits_match_report(self, graph, model_ii_alpha):
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        blob = unpack_blob(pack_scheme(scheme))
        assert blob.total_function_bits == scheme.space_report().routing_bits

    def test_pack_is_deterministic(self, graph, model_ii_alpha):
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        assert pack_scheme(scheme) == pack_scheme(scheme)


class TestErrors:
    def test_truncated_blob_rejected(self, graph, model_ii_alpha):
        blob = pack_scheme(build_scheme("thm4-hub", graph, model_ii_alpha))
        with pytest.raises(CodecError):
            unpack_blob(blob[: len(blob) // 2])

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            unpack_blob(b"\x00\x00\x00\x10\xff\xff")

    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            unpack_blob(b"\x00")

    def test_wrong_graph_size_rejected(self, graph, model_ii_alpha):
        blob = pack_scheme(build_scheme("thm4-hub", graph, model_ii_alpha))
        other = gnp_random_graph(30, seed=1)
        with pytest.raises(CodecError):
            restore_scheme(blob, other, model_ii_alpha)

    def test_declared_n_vs_functions_present_mismatch(self, graph,
                                                      model_ii_alpha):
        # A blob whose length header is *consistent* with its (short)
        # payload but which holds fewer functions than its declared n
        # must be reported as that structural lie, not as a leaked
        # bitstream exhaustion from deep inside a prime code.
        blob = pack_scheme(build_scheme("full-table", graph, model_ii_alpha))
        cut = len(blob) // 2
        tampered = (8 * (cut - 4)).to_bytes(4, "big") + blob[4:cut]
        with pytest.raises(CodecError, match=r"declares n=28 but holds only"):
            unpack_blob(tampered)

    def test_corrupt_header_length(self, graph, model_ii_alpha):
        blob = pack_scheme(build_scheme("thm4-hub", graph, model_ii_alpha))
        corrupted = (2**31).to_bytes(4, "big") + blob[4:]
        with pytest.raises(CodecError):
            unpack_blob(corrupted)
