"""Tests for the Theorem 1 two-level scheme — the paper's core construction."""

from __future__ import annotations

import math

import pytest

from repro.core import TwoLevelScheme, verify_scheme
from repro.core.two_level import decode_two_level_function, split_threshold
from repro.errors import SchemeBuildError
from repro.graphs import complete_graph, gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel


class TestModelRestrictions:
    def test_rejected_under_ia(self, model_ia_alpha):
        """Theorem 1 needs IB ∨ II."""
        with pytest.raises(SchemeBuildError):
            TwoLevelScheme(gnp_random_graph(16, seed=0), model_ia_alpha)

    def test_accepted_under_ib_and_ii(self, model_ib_alpha, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        TwoLevelScheme(graph, model_ib_alpha)
        TwoLevelScheme(graph, model_ii_alpha)

    def test_unknown_strategy_rejected(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError):
            TwoLevelScheme(gnp_random_graph(16, seed=0), model_ii_alpha,
                           strategy="best")

    def test_diameter_three_graph_rejected(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError):
            TwoLevelScheme(path_graph(8), model_ii_alpha)


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["least", "greedy"])
    def test_shortest_path_routing(self, strategy, model_ii_alpha):
        graph = gnp_random_graph(48, seed=21)
        scheme = TwoLevelScheme(graph, model_ii_alpha, strategy=strategy)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_complete_graph_trivial(self, model_ii_alpha):
        scheme = TwoLevelScheme(complete_graph(8), model_ii_alpha)
        assert verify_scheme(scheme).ok()

    def test_intermediate_is_common_neighbor(self, random_graph_32, model_ii_alpha):
        scheme = TwoLevelScheme(random_graph_32, model_ii_alpha)
        for u in (1, 15, 32):
            function = scheme.function(u)
            for w in random_graph_32.non_neighbors(u):
                v = function.intermediate_for(w)
                assert random_graph_32.has_edge(u, v)
                assert random_graph_32.has_edge(v, w)

    def test_covering_sequence_exposed(self, random_graph_32, model_ii_alpha):
        scheme = TwoLevelScheme(random_graph_32, model_ii_alpha)
        sequence = scheme.covering_sequence_of(1)
        assert sequence == random_graph_32.neighbors(1)[: len(sequence)]


class TestEncoding:
    @pytest.mark.parametrize("strategy", ["least", "greedy"])
    def test_round_trip_via_scheme(self, strategy, model_ii_alpha):
        graph = gnp_random_graph(40, seed=31)
        scheme = TwoLevelScheme(graph, model_ii_alpha, strategy=strategy)
        for u in graph.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            original = scheme.function(u)
            for w in graph.nodes:
                if w != u:
                    assert (
                        decoded.next_hop(w).next_node
                        == original.next_hop(w).next_node
                    )

    def test_standalone_decoder(self, random_graph_32, model_ii_alpha):
        scheme = TwoLevelScheme(random_graph_32, model_ii_alpha)
        u = 7
        function = decode_two_level_function(
            u,
            random_graph_32.n,
            random_graph_32.neighbors(u),
            scheme.encode_function(u),
        )
        for w in random_graph_32.non_neighbors(u):
            assert function.intermediate_for(w) == scheme.function(
                u
            ).intermediate_for(w)


class TestSizeBounds:
    def test_theorem1_six_n_bits_per_node(self, model_ii_alpha):
        """The headline claim: ≤ 6n bits per local function on random graphs."""
        for n in (32, 64, 128):
            graph = gnp_random_graph(n, seed=n + 1)
            scheme = TwoLevelScheme(graph, model_ii_alpha)
            worst = max(len(scheme.encode_function(u)) for u in graph.nodes)
            assert worst <= 6 * n

    def test_refined_three_n_bits_per_node(self, model_ii_alpha):
        """The paper's refined remark: the n/log n split gives ≤ 3n bits."""
        for n in (64, 128):
            graph = gnp_random_graph(n, seed=n + 2)
            scheme = TwoLevelScheme(graph, model_ii_alpha, split_rule="log")
            worst = max(len(scheme.encode_function(u)) for u in graph.nodes)
            assert worst <= 3 * n

    def test_total_is_order_n_squared(self, model_ii_alpha):
        graph = gnp_random_graph(96, seed=7)
        total = TwoLevelScheme(graph, model_ii_alpha).space_report().total_bits
        assert total <= 6 * 96 * 96

    def test_ib_charges_interconnection_vector(self, model_ib_alpha, model_ii_alpha):
        graph = gnp_random_graph(32, seed=3)
        ib_report = TwoLevelScheme(graph, model_ib_alpha).space_report()
        ii_report = TwoLevelScheme(graph, model_ii_alpha).space_report()
        assert ib_report.aux_bits == 32 * 31
        assert ii_report.aux_bits == 0
        assert ib_report.total_bits == ii_report.total_bits + 32 * 31


class TestSplitRules:
    def test_split_threshold_values(self):
        assert split_threshold(1024, "log") == pytest.approx(1024 / 10)
        assert split_threshold(1024, "loglog") < split_threshold(1024, "log") * 4
        with pytest.raises(SchemeBuildError):
            split_threshold(64, "sqrt")

    def test_both_rules_route_correctly(self, model_ii_alpha):
        graph = gnp_random_graph(40, seed=17)
        for rule in ("log", "loglog"):
            scheme = TwoLevelScheme(graph, model_ii_alpha, split_rule=rule)
            assert verify_scheme(scheme, sample_pairs=300).ok()

    def test_greedy_not_larger_tables(self, model_ii_alpha):
        """Greedy covering shortens the unary table (the DESIGN ablation)."""
        graph = gnp_random_graph(64, seed=23)
        least = TwoLevelScheme(graph, model_ii_alpha, strategy="least")
        greedy = TwoLevelScheme(graph, model_ii_alpha, strategy="greedy")
        assert len(greedy.covering_sequence_of(1)) <= len(
            least.covering_sequence_of(1)
        )
