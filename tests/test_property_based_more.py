"""Second property-based batch: trees, codecs, prefix codes, determinism."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bitio import BitArray, BitReader, BitWriter
from repro.core import IntervalRoutingScheme, verify_scheme
from repro.graphs import (
    decode_graph,
    edge_code_length,
    encode_graph,
    gnp_random_graph,
    random_tree,
)
from repro.incompressibility import Lemma1Codec, Lemma2Codec, evaluate_codec
from repro.errors import CodecError
from repro.models import Knowledge, Labeling, RoutingModel

II_BETA = RoutingModel(Knowledge.II, Labeling.BETA)


class TestIntervalOnRandomTrees:
    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_routing_everywhere(self, n, seed):
        tree = random_tree(n, seed=seed)
        scheme = IntervalRoutingScheme(tree, II_BETA)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=100),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_root_works(self, n, seed, data):
        tree = random_tree(n, seed=seed)
        root = data.draw(st.integers(min_value=1, max_value=n))
        scheme = IntervalRoutingScheme(tree, II_BETA, root=root)
        assert verify_scheme(scheme).all_delivered


class TestPrefixCodeStreams:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["hat", "prime"]),
                st.lists(st.integers(min_value=0, max_value=1), max_size=24),
            ),
            max_size=12,
        )
    )
    def test_interleaved_self_delimiting_codes(self, chunks):
        """Definition 4: 'the self-delimiting form x'...y'z allows the
        concatenated binary sub-descriptions to be parsed and unpacked'."""
        writer = BitWriter()
        for kind, bits in chunks:
            payload = BitArray(bits)
            if kind == "hat":
                writer.write_hat(payload)
            else:
                writer.write_prime(payload)
        reader = BitReader(writer.getvalue())
        for kind, bits in chunks:
            payload = BitArray(bits)
            if kind == "hat":
                assert reader.read_hat() == payload
            else:
                assert reader.read_prime() == payload
        assert reader.at_end()


class TestCodecsAcrossDensities:
    @given(
        st.integers(min_value=6, max_value=24),
        st.sampled_from([0.15, 0.35, 0.5, 0.75, 0.9]),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lemma1_round_trips_every_density(self, n, p, seed):
        graph = gnp_random_graph(n, p=p, seed=seed)
        assert evaluate_codec(Lemma1Codec(), graph).round_trip_ok

    @given(
        st.integers(min_value=6, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_lemma2_consistent_with_distance(self, n, seed):
        """The codec applies iff a distant pair exists — never both ways."""
        graph = gnp_random_graph(n, p=0.25, seed=seed)
        from repro.incompressibility import find_distant_pair

        pair = find_distant_pair(graph)
        if pair is None:
            with pytest.raises(CodecError):
                Lemma2Codec().encode(graph)
        else:
            assert evaluate_codec(Lemma2Codec(), graph).round_trip_ok


class TestDeterminism:
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
    def test_gnp_bitwise_deterministic(self, n, seed):
        assert encode_graph(gnp_random_graph(n, seed=seed)) == encode_graph(
            gnp_random_graph(n, seed=seed)
        )

    @given(st.integers(min_value=2, max_value=14), st.data())
    def test_graph_equality_matches_code_equality(self, n, data):
        length = edge_code_length(n)
        code_a = data.draw(st.integers(min_value=0, max_value=2**length - 1))
        code_b = data.draw(st.integers(min_value=0, max_value=2**length - 1))
        graph_a = decode_graph(BitArray.from_int(code_a, length), n)
        graph_b = decode_graph(BitArray.from_int(code_b, length), n)
        assert (graph_a == graph_b) == (code_a == code_b)
