"""Tests for the command-line interface."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import main, parse_model
from repro.models import Knowledge, Labeling


class TestParseModel:
    def test_parses_all_nine(self):
        for knowledge in ("IA", "IB", "II"):
            for labeling in ("alpha", "beta", "gamma"):
                model = parse_model(f"{knowledge}.{labeling}")
                assert model.knowledge == Knowledge[knowledge]
                assert model.labeling == Labeling[labeling.upper()]

    def test_case_insensitive(self):
        model = parse_model("ii.GAMMA")
        assert model.knowledge is Knowledge.II
        assert model.labeling is Labeling.GAMMA

    def test_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_model("fancy-model")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_model("IA.delta")


class TestCommands:
    def test_schemes_lists_registry(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "thm1-two-level" in out
        assert "full-information" in out

    def test_certify_random_graph(self, capsys):
        assert main(["certify", "48", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "True" in out

    def test_certify_flags_structured_failure(self, capsys):
        # Seed picked so the small sample has diameter 3 → not certified.
        code = main(["certify", "10", "--seed", "1"])
        out = capsys.readouterr().out
        assert ("False" in out) == (code == 1)

    def test_build_prints_report(self, capsys):
        assert main(["build", "thm1-two-level", "48", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "bits total" in out

    def test_build_saves_blob(self, tmp_path, capsys):
        target = tmp_path / "scheme.blob"
        assert main(
            ["build", "thm4-hub", "32", "--seed", "0", "--save", str(target)]
        ) == 0
        assert target.exists()
        from repro.core import restore_scheme, verify_scheme
        from repro.graphs import gnp_random_graph
        from repro.models import RoutingModel

        graph = gnp_random_graph(32, seed=0)
        model = RoutingModel(Knowledge.II, Labeling.ALPHA)
        scheme = restore_scheme(target.read_bytes(), graph, model)
        assert verify_scheme(scheme, sample_pairs=100).ok()

    def test_route_prints_path(self, capsys):
        assert main(["route", "full-table", "24", "1", "20", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "hops" in out
        assert out.strip().splitlines()[0].startswith("1 ")

    def test_verify_reports_ok(self, capsys):
        assert main(
            ["verify", "thm3-centers", "48", "--pairs", "100", "--seed", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "ok: True" in out

    def test_simulate_uniform(self, capsys):
        assert main(
            ["simulate", "thm1-two-level", "32", "--messages", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_simulate_with_failures(self, capsys):
        assert main(
            ["simulate", "full-information", "32", "--messages", "40",
             "--failures", "30"]
        ) == 0

    def test_simulate_workloads(self, capsys):
        for workload in ("hotspot", "all-to-one", "one-to-all", "permutation"):
            assert main(
                ["simulate", "thm4-hub", "24", "--workload", workload]
            ) == 0

    def test_codec_on_structured_graph(self, capsys):
        assert main(["codec", "lemma2", "16", "--graph", "path"]) == 0
        out = capsys.readouterr().out
        assert "round trip   : True" in out

    def test_codec_refusal_is_reported(self, capsys):
        code = main(["codec", "lemma2", "48", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "inapplicable" in out

    def test_model_override(self, capsys):
        assert main(
            ["build", "thm1-two-level", "32", "--model", "IB.alpha"]
        ) == 0
        out = capsys.readouterr().out
        assert "IB" in out

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["build", "no-such-scheme", "16"])


class TestObservabilityFlags:
    def test_simulate_json_output(self, capsys):
        assert main(
            ["simulate", "thm1-two-level", "32", "--messages", "40", "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 40
        assert payload["scheme"] == "thm1-two-level"
        assert "drop_breakdown" in payload
        assert "retry_histogram" in payload
        assert payload["retry_histogram"] == {"0": 40}

    def test_simulate_chaos_json_output(self, capsys):
        assert main(
            ["simulate-chaos", "interval", "24", "--messages", "60",
             "--retries", "2", "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["messages"] == 60
        assert set(payload["drop_breakdown"]) <= {
            "ENDPOINT_DOWN", "LINK_DOWN", "NODE_DOWN", "HOP_LIMIT",
            "NO_ROUTE", "INVALID_FORWARD", "QUEUE_OVERFLOW",
        }
        assert sum(payload["retry_histogram"].values()) == 60

    def test_trace_out_and_trace_report_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["simulate-chaos", "interval", "24", "--messages", "60",
             "--retries", "1", "--trace-out", str(trace),
             "--metrics-out", str(metrics), "--json"]
        ) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        assert rows, "trace file must not be empty"
        # the run ledger rides along: first row of the trace, a key in the
        # metrics dump and the summary, all naming the same invocation
        assert "manifest" in rows[0]
        assert rows[0]["manifest"]["command"] == "simulate-chaos"
        assert payload["manifest"]["run_id"] == rows[0]["manifest"]["run_id"]
        drops = [row for row in rows if row.get("event") == "drop"]
        # acceptance: every drop in drop_breakdown has an annotated span
        assert len(drops) == sum(payload["drop_breakdown"].values())
        assert all("reason" in row for row in drops)
        registry_dump = json.loads(metrics.read_text())
        assert registry_dump["manifest"]["run_id"] == payload["manifest"]["run_id"]
        assert "repro_messages_routed_total" in registry_dump["metrics"]

        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "hot nodes" in out

        assert main(["trace-report", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["dropped"] == len(drops)
        assert summary["span_violations"] == 0

    def test_trace_report_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_build_metrics_out_json(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(
            ["build", "interval", "24", "--metrics-out", str(target)]
        ) == 0
        import json

        payload = json.loads(target.read_text())
        assert "repro_scheme_table_bits" in payload["metrics"]
        assert "repro_phase_seconds" in payload["metrics"]
        from repro.observability import embedded_manifest

        manifest = embedded_manifest(payload)
        assert manifest.command == "build"
        assert manifest.n == 24
        assert manifest.wall_time_s is not None

    def test_build_metrics_out_prometheus(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert main(
            ["build", "thm4-hub", "32", "--metrics-out", str(target)]
        ) == 0
        text = target.read_text()
        assert text.startswith("# manifest: ")
        import json

        from repro.observability import RunManifest

        manifest = RunManifest.from_dict(
            json.loads(text.splitlines()[0][len("# manifest: "):])
        )
        assert manifest.scheme == "thm4-hub"
        assert "# TYPE repro_scheme_table_bits gauge" in text
        assert "# HELP repro_scheme_table_bits" in text
        assert 'scheme="thm4-hub"' in text


class TestBenchReport:
    """The regression gate: `repro bench-report` exit codes and output."""

    @staticmethod
    def _result(value, tolerance=0.10):
        from repro.observability import (
            BenchMetric,
            BenchResult,
            BetterDirection,
            RunManifest,
        )

        return BenchResult(
            bench="context_reuse",
            manifest=RunManifest.capture("bench:context_reuse", seed=0),
            workload={"n": 256},
            metrics={
                "speedup_ratio": BenchMetric(
                    value, BetterDirection.HIGHER, tolerance
                ),
                "best_seconds": BenchMetric(0.25),
            },
        )

    def test_clean_run_passes(self, tmp_path, capsys):
        from repro.observability import write_bench_result

        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        write_bench_result(self._result(1.10), baseline)
        write_bench_result(self._result(1.08), fresh)
        assert main(
            ["bench-report", "--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 0
        out = capsys.readouterr().out
        assert "OK: no regressions" in out

    def test_doctored_regression_fails(self, tmp_path, capsys):
        # acceptance: a >10% speedup_ratio regression exits non-zero
        from repro.observability import write_bench_result

        baseline = tmp_path / "baseline.json"
        doctored = tmp_path / "doctored.json"
        write_bench_result(self._result(1.10), baseline)
        write_bench_result(self._result(1.10 * 0.85), doctored)
        assert main(
            ["bench-report", "--baseline", str(baseline),
             "--fresh", str(doctored)]
        ) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "speedup_ratio" in out

    def test_doctored_committed_baseline_fails(self, tmp_path, capsys):
        # The same check against the real committed BENCH_context.json.
        import json
        import pathlib

        committed = pathlib.Path(__file__).parents[1] / "BENCH_context.json"
        row = json.loads(committed.read_text())
        row["metrics"]["speedup_ratio"]["value"] *= 0.85
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(row))
        assert main(
            ["bench-report", "--baseline", str(committed),
             "--fresh", str(doctored)]
        ) == 1
        assert "speedup_ratio" in capsys.readouterr().out

    def test_missing_gated_metric_fails(self, tmp_path, capsys):
        from repro.observability import write_bench_result

        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        write_bench_result(self._result(1.10), baseline)
        gutted = self._result(1.10)
        del gutted.metrics["speedup_ratio"]
        write_bench_result(gutted, fresh)
        assert main(
            ["bench-report", "--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 1

    def test_schema_less_json_rejected(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "baseline.json"
        legacy = tmp_path / "legacy.json"
        from repro.observability import write_bench_result

        write_bench_result(self._result(1.10), baseline)
        legacy.write_text(json.dumps({"workload": {}, "speedup_ratio": 1.0}))
        assert main(
            ["bench-report", "--baseline", str(baseline),
             "--fresh", str(legacy)]
        ) == 2
        assert "schema" in capsys.readouterr().err

    def test_json_and_output_embed_manifest(self, tmp_path, capsys):
        import json

        from repro.observability import embedded_manifest, write_bench_result

        baseline = tmp_path / "baseline.json"
        out_file = tmp_path / "comparison.json"
        write_bench_result(self._result(1.10), baseline)
        assert main(
            ["bench-report", "--baseline", str(baseline),
             "--fresh", str(baseline), "--json", "--output", str(out_file)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert embedded_manifest(payload).command == "bench-report"
        written = json.loads(out_file.read_text())
        assert embedded_manifest(written).command == "bench-report"
        assert written["deltas"] == payload["deltas"]

    def test_missing_file_exits_2(self, capsys):
        assert main(
            ["bench-report", "--baseline", "/nonexistent/b.json",
             "--fresh", "/nonexistent/f.json"]
        ) == 2
        assert "not found" in capsys.readouterr().err
