"""Tests for the dynamic fault schedule engine and the drop taxonomy."""

from __future__ import annotations

import pytest

from repro.core import build_scheme
from repro.errors import GraphError
from repro.graphs import cycle_graph, gnp_random_graph, path_graph
from repro.simulator import (
    DropReason,
    EventDrivenSimulator,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    flapping_links,
    regional_failures,
    renewal_faults,
    summarize,
    uniform_pairs,
)


class TestFaultEvents:
    def test_constructors_and_accessors(self):
        down = FaultEvent.link_down(3.0, 1, 2)
        assert down.kind is FaultKind.LINK_DOWN
        assert down.link == frozenset((1, 2))
        assert down.node is None
        crash = FaultEvent.node_down(1.0, 7)
        assert crash.node == 7
        assert crash.link is None

    def test_rejects_negative_time(self):
        with pytest.raises(GraphError):
            FaultEvent.link_up(-1.0, 1, 2)

    def test_rejects_wrong_subject_arity(self):
        with pytest.raises(GraphError):
            FaultEvent(0.0, FaultKind.LINK_DOWN, (1,))
        with pytest.raises(GraphError):
            FaultEvent(0.0, FaultKind.NODE_UP, (1, 2))


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            [
                FaultEvent.link_down(5.0, 1, 2),
                FaultEvent.node_down(1.0, 3),
                FaultEvent.link_up(3.0, 1, 2),
            ]
        )
        assert [e.time for e in schedule] == [1.0, 3.0, 5.0]
        assert schedule.horizon == 5.0
        assert len(schedule) == 3

    def test_merge_and_shift(self):
        a = FaultSchedule([FaultEvent.link_down(1.0, 1, 2)])
        b = FaultSchedule([FaultEvent.link_up(0.5, 1, 2)])
        merged = a + b
        assert [e.time for e in merged] == [0.5, 1.0]
        shifted = merged.shifted(10.0)
        assert [e.time for e in shifted] == [10.5, 11.0]

    def test_state_replay(self):
        schedule = FaultSchedule(
            [
                FaultEvent.link_down(1.0, 1, 2),
                FaultEvent.node_down(2.0, 4),
                FaultEvent.link_up(3.0, 1, 2),
                FaultEvent.node_up(4.0, 4),
            ]
        )
        links, nodes = schedule.state_at(2.5)
        assert links == {frozenset((1, 2))}
        assert nodes == {4}
        links, nodes = schedule.state_at(10.0)
        assert not links and not nodes

    def test_validate_against_graph(self):
        graph = path_graph(4)
        FaultSchedule([FaultEvent.link_down(0.0, 1, 2)]).validate(graph)
        with pytest.raises(GraphError):
            FaultSchedule([FaultEvent.link_down(0.0, 1, 4)]).validate(graph)
        with pytest.raises(GraphError):
            FaultSchedule([FaultEvent.node_down(0.0, 9)]).validate(graph)


class TestGenerators:
    def test_flapping_is_deterministic_and_paired(self):
        graph = gnp_random_graph(16, seed=2)
        a = flapping_links(graph, 10, period=5.0, horizon=30.0, seed=7)
        b = flapping_links(graph, 10, period=5.0, horizon=30.0, seed=7)
        assert a.events == b.events
        a.validate(graph)
        downs = sum(1 for e in a if e.kind is FaultKind.LINK_DOWN)
        ups = sum(1 for e in a if e.kind is FaultKind.LINK_UP)
        assert downs == ups > 0
        # At the horizon every flapped link has recovered.
        links, nodes = a.state_at(30.0)
        assert not links and not nodes

    def test_flapping_rejects_bad_parameters(self):
        graph = path_graph(4)
        with pytest.raises(GraphError):
            flapping_links(graph, 99)
        with pytest.raises(GraphError):
            flapping_links(graph, 1, period=0.0)
        with pytest.raises(GraphError):
            flapping_links(graph, 1, duty=1.0)

    def test_renewal_process(self):
        graph = gnp_random_graph(16, seed=2)
        schedule = renewal_faults(
            graph, horizon=50.0, seed=3, link_count=6, node_count=2
        )
        schedule.validate(graph)
        assert schedule
        assert all(e.time <= 50.0 for e in schedule)
        # Same seed, same process.
        again = renewal_faults(
            graph, horizon=50.0, seed=3, link_count=6, node_count=2
        )
        assert again.events == schedule.events

    def test_regional_failures_cover_a_ball(self):
        graph = cycle_graph(10)
        schedule = regional_failures(
            graph, regions=1, radius=1, duration=5.0, horizon=20.0, seed=1
        )
        crashed = {
            e.node for e in schedule if e.kind is FaultKind.NODE_DOWN
        }
        # A radius-1 ball in a cycle is exactly 3 nodes.
        assert len(crashed) == 3
        # Every crash has a matching recovery.
        recovered = {
            e.node for e in schedule if e.kind is FaultKind.NODE_UP
        }
        assert crashed == recovered

    def test_regional_respects_protection(self):
        graph = cycle_graph(6)
        schedule = regional_failures(
            graph, regions=3, radius=2, duration=5.0, horizon=20.0, seed=4,
            protect=[1],
        )
        assert all(e.node != 1 for e in schedule)


class TestChaosRuns:
    def test_link_flap_drops_then_heals(self, model_ia_alpha):
        """A message sent during the outage drops; after recovery it lands."""
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        schedule = FaultSchedule(
            [
                FaultEvent.link_down(0.0, 2, 3),
                FaultEvent.link_up(10.0, 2, 3),
            ]
        )
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        sim.inject(1, 4, at_time=0.0)
        sim.inject(1, 4, at_time=11.0)
        early, late = sorted(sim.run(), key=lambda r: r.msg_id)
        assert not early.delivered
        assert early.drop_reason is DropReason.LINK_DOWN
        assert late.delivered

    def test_fault_applies_before_message_at_same_time(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        schedule = FaultSchedule([FaultEvent.link_down(1.0, 2, 3)])
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        # The message reaches node 2 at exactly t=1.0, as the link dies.
        sim.inject(1, 3, at_time=0.0)
        (record,) = sim.run()
        assert not record.delivered
        assert record.drop_reason is DropReason.LINK_DOWN

    def test_node_crash_kills_held_messages(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        schedule = FaultSchedule([FaultEvent.node_down(1.5, 3)])
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        sim.inject(1, 4, at_time=0.0)
        (record,) = sim.run()
        assert not record.delivered
        assert record.drop_reason in (
            DropReason.NODE_DOWN,
            DropReason.ENDPOINT_DOWN,
        )

    def test_crashed_source_reports_endpoint_down(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        schedule = FaultSchedule([FaultEvent.node_down(0.0, 1)])
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        sim.inject(1, 3, at_time=1.0)
        (record,) = sim.run()
        assert not record.delivered
        assert record.drop_reason is DropReason.ENDPOINT_DOWN

    def test_full_information_rides_through_churn(
        self, model_ii_alpha, random_graph_32
    ):
        """Full-info delivery >= single-path delivery on one schedule."""
        graph = random_graph_32
        schedule = flapping_links(
            graph, 120, period=8.0, duty=0.5, horizon=40.0, seed=5
        )
        pairs = uniform_pairs(graph, 120, seed=3)
        outcomes = {}
        for name in ("full-information", "thm1-two-level"):
            scheme = build_scheme(name, graph, model_ii_alpha)
            sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
            for i, (s, t) in enumerate(pairs):
                sim.inject(s, t, at_time=(i * 37) % 30)
            outcomes[name] = summarize(sim.run(), graph)
        full, single = outcomes["full-information"], outcomes["thm1-two-level"]
        assert full.delivered_fraction >= single.delivered_fraction
        assert full.delivered_fraction > 0.5
        if full.delivered:
            assert full.max_stretch == 1.0

    def test_taxonomy_keys_are_drop_reasons(
        self, model_ii_alpha, random_graph_32
    ):
        graph = random_graph_32
        schedule = flapping_links(graph, 150, period=6.0, horizon=30.0, seed=2)
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        for i, (s, t) in enumerate(uniform_pairs(graph, 80, seed=6)):
            sim.inject(s, t, at_time=(i * 13) % 25)
        metrics = summarize(sim.run(), graph)
        assert metrics.drop_reasons  # this much churn certainly drops some
        assert all(
            isinstance(reason, DropReason) for reason in metrics.drop_reasons
        )
        # The str mixin keeps legacy substring checks working.
        assert "down" in DropReason.LINK_DOWN

    def test_run_without_messages_is_empty(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(3), model_ia_alpha)
        schedule = FaultSchedule([FaultEvent.link_down(1.0, 1, 2)])
        sim = EventDrivenSimulator(scheme, fault_schedule=schedule)
        assert sim.run() == []
