"""Journal record framing and the defensive scan semantics."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store import (
    RecordKind,
    encode_put,
    encode_swap,
    scan_journal,
)

MANIFEST = {"command": "test", "seed": 7}


def put_record(name="ft", generation=1, blob=b"\x01\x02\x03\x04"):
    return encode_put(name, generation, MANIFEST, blob)


class TestEncoding:
    def test_put_roundtrips_through_scan(self):
        record = put_record(blob=b"payload-bytes")
        scan = scan_journal(record)
        assert scan.clean
        [rec] = scan.records
        assert rec.kind is RecordKind.PUT
        assert rec.name == "ft"
        assert rec.generation == 1
        assert rec.manifest == MANIFEST
        assert rec.blob == b"payload-bytes"
        assert rec.offset == 0
        assert rec.length == len(record)

    def test_swap_roundtrips_through_scan(self):
        scan = scan_journal(encode_swap("ft", 3))
        assert scan.clean
        [rec] = scan.records
        assert rec.kind is RecordKind.SWAP
        assert (rec.name, rec.generation) == ("ft", 3)
        assert rec.blob is None and rec.manifest is None

    def test_multiple_records_scan_in_order(self):
        data = put_record(generation=1) + put_record(generation=2) + \
            encode_swap("ft", 2)
        scan = scan_journal(data)
        assert scan.clean
        assert [r.generation for r in scan.records] == [1, 2, 2]
        assert scan.records[1].offset == len(put_record(generation=1))

    def test_rejects_nonpositive_generation(self):
        with pytest.raises(StoreError, match="generation"):
            encode_put("ft", 0, {}, b"")
        with pytest.raises(StoreError, match="generation"):
            encode_swap("ft", -1)

    def test_empty_journal_is_clean(self):
        scan = scan_journal(b"")
        assert scan.clean
        assert scan.records == []


class TestDamage:
    def test_torn_tail_stops_scan_without_quarantine(self):
        whole = put_record(generation=1)
        for cut in (1, 5, len(whole) // 2, len(whole) - 1):
            scan = scan_journal(whole[:cut])
            assert scan.records == []
            assert scan.quarantined == []
            assert scan.torn_tail_bytes == cut

    def test_torn_tail_after_good_record_keeps_the_prefix(self):
        good = put_record(generation=1)
        torn = put_record(generation=2)[:-3]
        scan = scan_journal(good + torn)
        assert [r.generation for r in scan.records] == [1]
        assert scan.torn_tail_bytes == len(torn)
        assert not scan.quarantined

    def test_single_bit_flip_quarantines_exactly_that_record(self):
        first = put_record(generation=1)
        second = put_record(generation=2)
        data = bytearray(first + second)
        # Flip one payload bit of the first record.
        data[10] ^= 0x04
        scan = scan_journal(bytes(data))
        assert [r.generation for r in scan.records] == [2]
        [damage] = scan.quarantined
        assert damage.offset == 0
        assert damage.length == len(first)
        assert "CRC-16" in damage.reason

    def test_crc_flip_detected_too(self):
        record = bytearray(put_record())
        record[-1] ^= 0x01  # flip inside the stored checksum itself
        scan = scan_journal(bytes(record))
        assert scan.records == []
        assert len(scan.quarantined) == 1

    def test_bad_magic_quarantines_the_tail(self):
        good = put_record(generation=1)
        scan = scan_journal(good + b"\x00garbage-follows-here")
        assert [r.generation for r in scan.records] == [1]
        [damage] = scan.quarantined
        assert damage.offset == len(good)
        assert "bad magic" in damage.reason

    def test_implausible_length_quarantines_the_tail(self):
        record = bytearray(put_record())
        record[2] = 0xFF  # payload length now ~4 GiB
        record += b"\x00" * 64
        scan = scan_journal(bytes(record))
        assert scan.records == []
        [damage] = scan.quarantined
        assert "implausible" in damage.reason

    def test_every_single_bit_flip_is_detected(self):
        # The CRC-16 frame must catch a flip at *any* position: no record
        # may survive, and nothing may parse as a different valid record.
        record = put_record(blob=b"\x55" * 8)
        for bit in range(8 * len(record)):
            data = bytearray(record)
            data[bit // 8] ^= 1 << (7 - bit % 8)
            scan = scan_journal(bytes(data))
            assert scan.records == [] and not scan.clean, (
                f"flip at bit {bit} went undetected"
            )

    def test_quarantine_range_is_json_ready(self):
        data = bytearray(put_record())
        data[8] ^= 0x10
        [damage] = scan_journal(bytes(data)).quarantined
        as_dict = damage.to_dict()
        assert set(as_dict) == {"offset", "length", "reason"}
