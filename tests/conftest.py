"""Shared fixtures: graphs and models reused across the suite.

Also registers the hypothesis profiles the fuzz tests run under:
``dev`` (the default — no deadline, so slow scheme builds never flake)
and ``ci`` (derandomized with a fixed example budget, selected by
exporting ``HYPOTHESIS_PROFILE=ci`` in the workflow).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def random_graph_32():
    """A certified-random-sized G(32, 1/2) sample (session-cached)."""
    return gnp_random_graph(32, seed=101)


@pytest.fixture(scope="session")
def random_graph_64():
    """A G(64, 1/2) sample (session-cached)."""
    return gnp_random_graph(64, seed=202)


@pytest.fixture(scope="session")
def model_ii_alpha():
    """Model II ∧ α: neighbours known, no relabelling."""
    return RoutingModel(Knowledge.II, Labeling.ALPHA)


@pytest.fixture(scope="session")
def model_ii_gamma():
    """Model II ∧ γ: neighbours known, charged free relabelling."""
    return RoutingModel(Knowledge.II, Labeling.GAMMA)


@pytest.fixture(scope="session")
def model_ii_beta():
    """Model II ∧ β: neighbours known, permutation relabelling."""
    return RoutingModel(Knowledge.II, Labeling.BETA)


@pytest.fixture(scope="session")
def model_ib_alpha():
    """Model IB ∧ α: free port assignment, no relabelling."""
    return RoutingModel(Knowledge.IB, Labeling.ALPHA)


@pytest.fixture(scope="session")
def model_ia_alpha():
    """Model IA ∧ α: the fully static adversarial model."""
    return RoutingModel(Knowledge.IA, Labeling.ALPHA)
