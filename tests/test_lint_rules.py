"""One positive and one negative fixture per lint rule (R001–R009)."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source, rule_by_id


def findings_for(rule_id, source, module="repro.fixture"):
    result = lint_source(
        textwrap.dedent(source),
        path="fixture.py",
        active_rules=[rule_by_id(rule_id)],
        module=module,
    )
    return result.findings


# -- R001: bit accounting stays integral -------------------------------------


def test_r001_flags_true_division_on_bit_identifier():
    findings = findings_for(
        "R001",
        """
        total_bits = 10
        half = total_bits / 2
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "R001"
    assert findings[0].line == 3
    assert "total_bits" in findings[0].message


def test_r001_flags_attribute_operands_float_literals_and_annotations():
    findings = findings_for(
        "R001",
        """
        report.routing_bits /= 4
        label_bits = 3.5
        aux_bits: float = 0
        mean = report.total_bits / report.n
        """,
    )
    assert [f.line for f in findings] == [2, 3, 4, 5]


def test_r001_allows_integer_arithmetic_and_unrelated_division():
    findings = findings_for(
        "R001",
        """
        total_bits = 10
        half = total_bits // 2
        ratio = latency / 2.0
        label_bits = header.bit_length()
        """,
    )
    assert findings == []


# -- R002: DropReason dispatches are exhaustive ------------------------------


def test_r002_flags_incomplete_if_elif_chain_without_default():
    findings = findings_for(
        "R002",
        """
        def bucket(reason):
            if reason == DropReason.LINK_DOWN:
                return "link"
            elif reason == DropReason.NODE_DOWN:
                return "node"
        """,
    )
    assert len(findings) == 1
    assert "HOP_LIMIT" in findings[0].message
    assert "QUEUE_OVERFLOW" in findings[0].message


def test_r002_accepts_chain_with_default_or_full_coverage():
    defaulted = findings_for(
        "R002",
        """
        def bucket(reason):
            if reason == DropReason.LINK_DOWN:
                return "link"
            elif reason == DropReason.NODE_DOWN:
                return "node"
            else:
                return "other"
        """,
    )
    assert defaulted == []
    complete = findings_for(
        "R002",
        """
        def bucket(reason):
            if reason in (DropReason.LINK_DOWN, DropReason.NODE_DOWN,
                          DropReason.ENDPOINT_DOWN, DropReason.TABLE_CORRUPT):
                return "fault"
            elif reason in (DropReason.HOP_LIMIT, DropReason.NO_ROUTE,
                            DropReason.INVALID_FORWARD,
                            DropReason.ROUTING_LOOP,
                            DropReason.QUEUE_OVERFLOW):
                return "routing"
        """,
    )
    assert complete == []


def test_r002_flags_dispatch_missing_table_corrupt():
    # Seeded violation for the corruption drop reason specifically: a chain
    # covering every *other* member must be flagged, and the finding must
    # name the missing TABLE_CORRUPT member.
    findings = findings_for(
        "R002",
        """
        def bucket(reason):
            if reason in (DropReason.LINK_DOWN, DropReason.NODE_DOWN,
                          DropReason.ENDPOINT_DOWN):
                return "fault"
            elif reason in (DropReason.HOP_LIMIT, DropReason.NO_ROUTE,
                            DropReason.INVALID_FORWARD,
                            DropReason.QUEUE_OVERFLOW):
                return "routing"
        """,
    )
    assert len(findings) == 1
    assert "TABLE_CORRUPT" in findings[0].message


def test_r002_flags_dispatch_missing_routing_loop():
    # Seeded violation for the churn loop-detection reason: the full
    # pre-churn vocabulary is no longer exhaustive.
    findings = findings_for(
        "R002",
        """
        def bucket(reason):
            if reason in (DropReason.LINK_DOWN, DropReason.NODE_DOWN,
                          DropReason.ENDPOINT_DOWN, DropReason.TABLE_CORRUPT):
                return "fault"
            elif reason in (DropReason.HOP_LIMIT, DropReason.NO_ROUTE,
                            DropReason.INVALID_FORWARD,
                            DropReason.QUEUE_OVERFLOW):
                return "routing"
        """,
    )
    assert len(findings) == 1
    assert "ROUTING_LOOP" in findings[0].message


def test_r002_flags_incomplete_fault_kind_dispatch():
    # Seeded violation over the chaos taxonomy: `is` comparisons count as
    # dispatch branches, and the finding names the taxonomy.
    findings = findings_for(
        "R002",
        """
        def apply(event):
            if event.kind is FaultKind.LINK_DOWN:
                return "down"
            elif event.kind is FaultKind.LINK_UP:
                return "up"
            elif event.kind is FaultKind.NODE_DOWN:
                return "crash"
            elif event.kind is FaultKind.NODE_UP:
                return "recover"
        """,
    )
    assert len(findings) == 1
    assert "FaultKind" in findings[0].message
    assert "TABLE_CORRUPT" in findings[0].message
    assert "TABLE_REPAIR" in findings[0].message


def test_r002_flags_incomplete_topology_mutation_dispatch():
    # Seeded violation over the churn taxonomy.
    findings = findings_for(
        "R002",
        """
        def apply(mutation):
            if mutation.kind is TopologyMutationKind.EDGE_ADD:
                return "add"
            elif mutation.kind is TopologyMutationKind.EDGE_REMOVE:
                return "remove"
        """,
    )
    assert len(findings) == 1
    assert "TopologyMutationKind" in findings[0].message
    assert "NODE_JOIN" in findings[0].message
    assert "NODE_LEAVE" in findings[0].message


def test_r002_flags_incomplete_store_fault_kind_dispatch():
    # Seeded violation over the storage-fault taxonomy: a handler that
    # forgets BIT_ROT would never check for post-hoc corruption.
    findings = findings_for(
        "R002",
        """
        def inject(fault):
            if fault.kind is StoreFaultKind.TORN_WRITE:
                return "tear"
            elif fault.kind is StoreFaultKind.SHORT_WRITE:
                return "truncate"
            elif fault.kind is StoreFaultKind.LOST_FSYNC:
                return "forget"
            elif fault.kind is StoreFaultKind.RENAME_FAIL:
                return "refuse"
        """,
    )
    assert len(findings) == 1
    assert "StoreFaultKind" in findings[0].message
    assert "BIT_ROT" in findings[0].message


def test_r002_flags_incomplete_record_kind_dispatch():
    # Seeded violation over the journal record taxonomy: a `match` that
    # replays only PUTs drops every active-pointer switch on recovery.
    findings = findings_for(
        "R002",
        """
        def replay(record):
            match record.kind:
                case RecordKind.PUT:
                    return "put"
        """,
    )
    assert len(findings) == 1
    assert "RecordKind" in findings[0].message
    assert "SWAP" in findings[0].message


def test_r002_accepts_complete_store_fault_kind_dispatch():
    findings = findings_for(
        "R002",
        """
        def inject(fault):
            if fault.kind is StoreFaultKind.TORN_WRITE:
                return "tear"
            elif fault.kind is StoreFaultKind.SHORT_WRITE:
                return "truncate"
            elif fault.kind is StoreFaultKind.LOST_FSYNC:
                return "forget"
            elif fault.kind is StoreFaultKind.RENAME_FAIL:
                return "refuse"
            elif fault.kind is StoreFaultKind.BIT_ROT:
                return "rot"
        """,
    )
    assert findings == []


def test_r002_flags_incomplete_better_direction_dispatch():
    # Seeded violation over the bench-gating taxonomy: a comparator that
    # forgets NEUTRAL would gate on wall-clock seconds.
    findings = findings_for(
        "R002",
        """
        def gate(metric):
            if metric.direction is BetterDirection.HIGHER:
                return "regress-if-lower"
            elif metric.direction is BetterDirection.LOWER:
                return "regress-if-higher"
        """,
    )
    assert len(findings) == 1
    assert "BetterDirection" in findings[0].message
    assert "NEUTRAL" in findings[0].message


def test_r002_accepts_complete_better_direction_dispatch():
    findings = findings_for(
        "R002",
        """
        def gate(metric):
            if metric.direction is BetterDirection.HIGHER:
                return "regress-if-lower"
            elif metric.direction is BetterDirection.LOWER:
                return "regress-if-higher"
            elif metric.direction is BetterDirection.NEUTRAL:
                return "informational"
        """,
    )
    assert findings == []


def test_r002_accepts_complete_mutation_kind_match():
    findings = findings_for(
        "R002",
        """
        def label(kind):
            match kind:
                case MutationKind.BIT_FLIP:
                    return "flip"
                case MutationKind.BURST:
                    return "burst"
                case MutationKind.TRUNCATE:
                    return "truncate"
        """,
    )
    assert findings == []


def test_r002_mixed_taxonomy_chain_is_not_a_dispatch():
    # A chain comparing against two different taxonomies is heuristically
    # not a single-vocabulary dispatch and must not be flagged.
    findings = findings_for(
        "R002",
        """
        def weird(event):
            if event.kind is FaultKind.LINK_DOWN:
                return "fault"
            elif event.reason is DropReason.LINK_DOWN:
                return "drop"
        """,
    )
    assert findings == []


def test_r002_single_membership_test_is_not_a_dispatch():
    findings = findings_for(
        "R002",
        """
        def is_link(reason):
            if reason == DropReason.LINK_DOWN:
                return True
            return False
        """,
    )
    assert findings == []


def test_r002_match_statement_needs_wildcard_or_full_coverage():
    findings = findings_for(
        "R002",
        """
        def bucket(reason):
            match reason:
                case DropReason.LINK_DOWN:
                    return "link"
                case DropReason.NODE_DOWN:
                    return "node"
        """,
    )
    assert len(findings) == 1
    assert "case _" in findings[0].message
    covered = findings_for(
        "R002",
        """
        def bucket(reason):
            match reason:
                case DropReason.LINK_DOWN:
                    return "link"
                case _:
                    return "other"
        """,
    )
    assert covered == []


def test_r002_flags_incomplete_taxonomy_dict_literal():
    # The batch kernel builds lookup tables as dict literals; a partial
    # table silently mis-buckets the members it omits.
    findings = findings_for(
        "R002",
        """
        WEIGHTS = {
            DropReason.NO_ROUTE: 1.0,
            DropReason.LINK_DOWN: 2.0,
        }
        """,
    )
    assert len(findings) == 1
    assert "omits" in findings[0].message
    assert "HOP_LIMIT" in findings[0].message


def test_r002_complete_or_spread_dict_literals_are_clean():
    members = ", ".join(
        f"DropReason.{name}: 0"
        for name in (
            "ENDPOINT_DOWN", "LINK_DOWN", "NODE_DOWN", "HOP_LIMIT",
            "NO_ROUTE", "INVALID_FORWARD", "QUEUE_OVERFLOW",
            "TABLE_CORRUPT", "ROUTING_LOOP",
        )
    )
    assert findings_for("R002", f"FULL = {{{members}}}") == []
    # A ** spread may supply the rest; not statically decidable.
    assert (
        findings_for(
            "R002",
            """
            PARTIAL = {
                DropReason.NO_ROUTE: 1.0,
                DropReason.LINK_DOWN: 2.0,
                **EXTRA,
            }
            """,
        )
        == []
    )
    # Non-taxonomy and mixed-taxonomy dicts are not dispatch tables.
    assert (
        findings_for(
            "R002",
            """
            MIXED = {
                DropReason.NO_ROUTE: 1.0,
                FaultKind.LINK_DOWN: 2.0,
            }
            """,
        )
        == []
    )


# -- R003: nullable-tracer idiom in hot paths --------------------------------


def test_r003_flags_unguarded_span_call_in_simulator():
    findings = findings_for(
        "R003",
        """
        def route(tracer, msg):
            tracer.hop(msg, 1, 2, 0)
        """,
        module="repro.simulator.fake",
    )
    assert len(findings) == 1
    assert "tracer.hop" in findings[0].message


def test_r003_flags_unguarded_sample_and_slo_spans():
    # Seeded violations for the sampling-protocol span names: the summary
    # and breach spans are hot-path emissions like any other.
    findings = findings_for(
        "R003",
        """
        def finish(self):
            self._tracer.sample(0.01, 100, 1, time=9.0)
            self._tracer.slo(7, time=9.0)
        """,
        module="repro.simulator.fake",
    )
    assert len(findings) == 2
    assert "tracer.sample" in findings[0].message
    assert "tracer.slo" in findings[1].message


def test_r003_accepts_guard_early_return_and_and_guard():
    findings = findings_for(
        "R003",
        """
        def route(tracer, msg):
            if tracer is not None:
                tracer.hop(msg, 1, 2, 0)

        def finish(self, msg):
            tracer = self._tracer
            if tracer is None:
                return None
            tracer.deliver(msg, 3)

        def fault(self, event):
            if self._tracer is not None and self._tracer.enabled:
                self._tracer.fault("link", ("link", "1", "2"), 0.0)
        """,
        module="repro.simulator.fake",
    )
    assert findings == []


def test_r003_guard_does_not_cross_function_boundaries():
    findings = findings_for(
        "R003",
        """
        def outer(tracer, msg):
            if tracer is not None:
                def inner():
                    tracer.drop(msg, 1, "NO_ROUTE")
                inner()
        """,
        module="repro.core.fake",
    )
    assert len(findings) == 1


def test_r003_out_of_scope_packages_are_ignored():
    findings = findings_for(
        "R003",
        """
        def report(tracer, msg):
            tracer.emit(msg)
        """,
        module="repro.observability.fake",
    )
    assert findings == []


def test_r003_flags_unguarded_store_spans_in_store_package():
    # Seeded violations for the durable-store spans: persist, reject,
    # recover and swap are hot-path emissions, and repro.store is in
    # the rule's scanned package set.
    findings = findings_for(
        "R003",
        """
        def put(self, record):
            self.tracer.persist("put", "ft@1", time=0.0, duration=0.1)

        def quarantine(self, damage):
            self.tracer.reject("crc mismatch", "offset 40", time=0.0)

        def reopen(self):
            self.tracer.recover("journal", time=0.0, duration=0.2)
            self.tracer.swap("ft@2", time=0.0, cause="hot-swap")
        """,
        module="repro.store.fake",
    )
    assert [f.message.split("`")[1] for f in findings] == [
        "self.tracer.persist(...)",
        "self.tracer.reject(...)",
        "self.tracer.recover(...)",
        "self.tracer.swap(...)",
    ]


def test_r003_accepts_guarded_store_spans():
    findings = findings_for(
        "R003",
        """
        def put(self, record):
            if self.tracer is not None:
                self.tracer.persist("put", "ft@1", time=0.0, duration=0.1)
        """,
        module="repro.store.fake",
    )
    assert findings == []


def test_r003_covers_the_batch_kernel_module():
    # Seeded violation: the kernel module lives in repro.simulator, so an
    # unguarded span in a kernel-shaped fast path cannot slip past R003.
    findings = findings_for(
        "R003",
        """
        def _step_cohort(self, batch, now):
            tracer = self._tracer
            for i in batch.rows:
                tracer.hop(int(batch.msg_id[i]), 1, 2, now)
        """,
        module="repro.simulator.kernel",
    )
    assert len(findings) == 1
    assert "tracer.hop" in findings[0].message
    guarded = findings_for(
        "R003",
        """
        def _step_cohort(self, batch, now):
            tracer = self._tracer
            for i in batch.rows:
                if tracer is not None:
                    tracer.hop(int(batch.msg_id[i]), 1, 2, now)
        """,
        module="repro.simulator.kernel",
    )
    assert guarded == []


# -- R004: explicit seeded RNGs ----------------------------------------------


def test_r004_flags_module_level_random_and_from_imports():
    findings = findings_for(
        "R004",
        """
        import random
        from random import shuffle

        def sample():
            return random.randint(1, 6)
        """,
    )
    assert len(findings) == 2
    assert any("from random import shuffle" in f.message for f in findings)
    assert any("random.randint" in f.message for f in findings)


def test_r004_flags_global_numpy_draws_but_allows_generators():
    findings = findings_for(
        "R004",
        """
        import numpy as np

        def bad(n):
            return np.random.rand(n)

        def good(n, seed):
            rng = np.random.default_rng(seed)
            return rng.random(n)
        """,
    )
    assert len(findings) == 1
    assert "np.random.rand" in findings[0].message


def test_r004_accepts_threaded_seeded_generator():
    findings = findings_for(
        "R004",
        """
        import random

        def sample(seed):
            rng = random.Random(seed)
            return rng.randint(1, 6)
        """,
    )
    assert findings == []


# -- R005: the RoutingScheme contract ----------------------------------------


def test_r005_flags_missing_contract_methods_and_bad_arity():
    findings = findings_for(
        "R005",
        """
        class BrokenScheme(RoutingScheme):
            def _build_function(self, u):
                return None

            def encode_function(self, u, extra):
                return None
        """,
    )
    messages = "\n".join(f.message for f in findings)
    assert "decode_function" in messages
    assert "stretch_bound" in messages
    assert "encode_function takes 3 positional args" in messages


def test_r005_accepts_full_contract_and_skips_abstract_intermediates():
    findings = findings_for(
        "R005",
        """
        import abc

        class GoodScheme(RoutingScheme):
            def _build_function(self, u):
                return None

            def encode_function(self, u):
                return None

            def decode_function(self, u, bits):
                return None

            def stretch_bound(self):
                return 1.0

        class Intermediate(RoutingScheme):
            @abc.abstractmethod
            def flavour(self):
                ...
        """,
    )
    assert findings == []


def test_r005_flags_reshaped_overridable_hooks():
    findings = findings_for(
        "R005",
        """
        class ReshapedScheme(RoutingScheme):
            def _build_function(self, u):
                return None

            def encode_function(self, u):
                return None

            def decode_function(self, u, bits):
                return None

            def stretch_bound(self):
                return 1.0

            def label_bits(self):
                return 0
        """,
    )
    assert len(findings) == 1
    assert "label_bits" in findings[0].message


# -- R006: no silent exception swallowing ------------------------------------


def test_r006_flags_bare_except_and_silent_broad_handler():
    findings = findings_for(
        "R006",
        """
        def f():
            try:
                risky()
            except:
                pass

        def g():
            try:
                risky()
            except Exception:
                pass
        """,
    )
    assert len(findings) == 2


def test_r006_accepts_narrow_or_handled_exceptions():
    findings = findings_for(
        "R006",
        """
        def f():
            try:
                risky()
            except ValueError:
                pass

        def g():
            try:
                risky()
            except Exception as exc:
                record_drop(exc)
                raise
        """,
    )
    assert findings == []


# -- R007: typed public API ---------------------------------------------------


def test_r007_flags_unannotated_public_functions():
    findings = findings_for(
        "R007",
        """
        def public(x):
            return x

        class Thing:
            def method(self, value) -> None:
                self.value = value
        """,
    )
    messages = "\n".join(f.message for f in findings)
    assert "public has unannotated parameter(s): x" in messages
    assert "public has no return annotation" in messages
    assert "method has unannotated parameter(s): value" in messages


def test_r007_skips_private_nested_and_fully_annotated():
    findings = findings_for(
        "R007",
        """
        def _private(x):
            return x

        def public(x: int, *args, **kwargs) -> int:
            def nested(y):
                return y
            return nested(x)

        class Thing:
            @staticmethod
            def build(n: int) -> "Thing":
                return Thing()
        """,
    )
    assert findings == []


# -- R008: no mutable defaults ------------------------------------------------


def test_r008_flags_mutable_default_values():
    findings = findings_for(
        "R008",
        """
        def f(items=[]):
            return items

        def g(*, table={}, tags=set()):
            return table, tags
        """,
    )
    assert len(findings) == 3


def test_r008_accepts_none_and_immutable_defaults():
    findings = findings_for(
        "R008",
        """
        def f(items=None, pair=(), name="x", count=0):
            return items or []
        """,
    )
    assert findings == []


# -- R009: derived computations go through the GraphContext -------------------


def test_r009_flags_raw_derivation_calls_outside_graphs():
    findings = findings_for(
        "R009",
        """
        from repro.graphs import distance_matrix

        def eccentricities(graph):
            dist = distance_matrix(graph)
            tree = bootstrap._bfs_tree(graph, 1)
            return dist.max(axis=1), tree
        """,
        module="repro.simulator.fixture",
    )
    assert [f.line for f in findings] == [5, 6]
    assert all(f.rule_id == "R009" for f in findings)
    assert "once per graph" in findings[0].message


def test_r009_allows_context_accessors_and_graphs_internals():
    findings = findings_for(
        "R009",
        """
        def eccentricities(graph):
            ctx = get_context(graph)
            return ctx.distances().max(axis=1), ctx.bfs_tree(1)
        """,
        module="repro.simulator.fixture",
    )
    assert findings == []

    # Inside the graphs package the raw call IS the implementation.
    findings = findings_for(
        "R009",
        """
        def helper(graph):
            return distance_matrix(graph)
        """,
        module="repro.graphs.properties",
    )
    assert findings == []
