"""Tests for the interval-routing extension."""

from __future__ import annotations

import pytest

from repro.core import IntervalRoutingScheme, route_message, verify_scheme
from repro.errors import SchemeBuildError
from repro.graphs import (
    LabeledGraph,
    gnp_random_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.models import Knowledge, Labeling, RoutingModel, minimal_label_bits


class TestModel:
    def test_requires_relabeling(self, model_ii_alpha):
        with pytest.raises(Exception):
            IntervalRoutingScheme(random_tree(10, seed=1), model_ii_alpha)

    def test_accepts_beta(self, model_ii_beta):
        IntervalRoutingScheme(random_tree(10, seed=1), model_ii_beta)

    def test_rejects_disconnected(self, model_ii_beta):
        with pytest.raises(SchemeBuildError):
            IntervalRoutingScheme(LabeledGraph(4, [(1, 2)]), model_ii_beta)


class TestOnTrees:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_exact_routing_on_random_trees(self, seed, model_ii_beta):
        tree = random_tree(24, seed=seed)
        scheme = IntervalRoutingScheme(tree, model_ii_beta)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    def test_path_routing(self, model_ii_beta):
        scheme = IntervalRoutingScheme(path_graph(8), model_ii_beta)
        trace = route_message(scheme, 1, 8)
        assert trace.hops == 7

    def test_star_routing(self, model_ii_beta):
        scheme = IntervalRoutingScheme(star_graph(9), model_ii_beta)
        assert route_message(scheme, 2, 9).hops == 2
        assert route_message(scheme, 1, 5).hops == 1

    def test_stretch_bound_on_trees_is_one(self, model_ii_beta):
        scheme = IntervalRoutingScheme(random_tree(16, seed=4), model_ii_beta)
        assert scheme.stretch_bound() == 1.0


class TestAddressing:
    def test_addresses_are_dfs_numbers(self, model_ii_beta):
        tree = random_tree(12, seed=2)
        scheme = IntervalRoutingScheme(tree, model_ii_beta)
        numbers = sorted(scheme.address_of(u) for u in tree.nodes)
        assert numbers == list(range(1, 13))

    def test_address_inversion(self, model_ii_beta):
        tree = random_tree(12, seed=2)
        scheme = IntervalRoutingScheme(tree, model_ii_beta)
        for u in tree.nodes:
            assert scheme.node_of_address(scheme.address_of(u)) == u

    def test_root_address_is_one(self, model_ii_beta):
        scheme = IntervalRoutingScheme(random_tree(12, seed=2), model_ii_beta, root=3)
        assert scheme.address_of(3) == 1


class TestOnGeneralGraphs:
    def test_routes_along_spanning_tree(self, model_ii_beta):
        graph = gnp_random_graph(32, seed=10)
        scheme = IntervalRoutingScheme(graph, model_ii_beta)
        report = verify_scheme(scheme)
        assert report.all_delivered
        assert report.max_stretch <= scheme.stretch_bound()

    def test_tree_depth_bound(self, model_ii_beta):
        graph = gnp_random_graph(32, seed=10)
        scheme = IntervalRoutingScheme(graph, model_ii_beta)
        worst = max(scheme.tree_depth(u) for u in graph.nodes)
        assert scheme.stretch_bound() == max(2 * worst, 1)


class TestEncoding:
    def test_round_trip(self, model_ii_beta):
        tree = random_tree(20, seed=9)
        scheme = IntervalRoutingScheme(tree, model_ii_beta)
        for u in tree.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in tree.nodes:
                if w != u:
                    address = scheme.address_of(w)
                    assert (
                        decoded.next_hop(address).next_node
                        == scheme.function(u).next_hop(address).next_node
                    )

    def test_size_is_degree_times_log(self, model_ii_beta):
        tree = random_tree(30, seed=5)
        scheme = IntervalRoutingScheme(tree, model_ii_beta)
        width = minimal_label_bits(30)
        for u in tree.nodes:
            # Child intervals dominate: ≲ (2 width + γ-index) per child.
            children = sum(
                1 for v in tree.neighbors(u) if scheme.tree_parent(v) == u
            )
            assert len(scheme.encode_function(u)) <= children * (2 * width + 12) + 14

    def test_total_on_tree_is_n_log_n(self, model_ii_beta):
        tree = random_tree(64, seed=6)
        total = IntervalRoutingScheme(tree, model_ii_beta).space_report().total_bits
        assert total <= 64 * 3 * minimal_label_bits(64)
