"""Tests for the exception hierarchy and the networkx adapter."""

from __future__ import annotations

import pytest

from repro.errors import (
    AnalysisError,
    BitstreamError,
    CodecError,
    GraphError,
    ModelError,
    PortAssignmentError,
    ReproError,
    RoutingError,
    SchemeBuildError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            AnalysisError,
            BitstreamError,
            CodecError,
            GraphError,
            ModelError,
            PortAssignmentError,
            RoutingError,
            SchemeBuildError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_port_error_is_graph_error(self):
        assert issubclass(PortAssignmentError, GraphError)

    def test_one_except_catches_all(self):
        from repro.graphs import LabeledGraph

        with pytest.raises(ReproError):
            LabeledGraph(0)

    def test_library_never_raises_bare_exceptions_for_bad_graphs(self):
        from repro.graphs import LabeledGraph, diameter

        try:
            diameter(LabeledGraph(3, [(1, 2)]))
        except ReproError:
            pass  # the only acceptable failure mode
        else:
            pytest.fail("expected a ReproError")


class TestNetworkxAdapter:
    def test_round_trip(self):
        pytest.importorskip("networkx")
        from repro.graphs import gnp_random_graph
        from repro.graphs.nxadapter import from_networkx, to_networkx

        graph = gnp_random_graph(18, seed=4)
        assert from_networkx(to_networkx(graph)) == graph

    def test_node_and_edge_counts(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs import gnp_random_graph
        from repro.graphs.nxadapter import to_networkx

        graph = gnp_random_graph(18, seed=4)
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 18
        assert nx_graph.number_of_edges() == graph.edge_count

    def test_rejects_wrong_labels(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.nxadapter import from_networkx

        bad = networkx.Graph()
        bad.add_edge("a", "b")
        with pytest.raises(GraphError):
            from_networkx(bad)

    def test_rejects_zero_based_labels(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.nxadapter import from_networkx

        bad = networkx.path_graph(4)  # nodes 0..3
        with pytest.raises(GraphError):
            from_networkx(bad)

    def test_isolated_nodes_preserved(self):
        pytest.importorskip("networkx")
        from repro.graphs import LabeledGraph
        from repro.graphs.nxadapter import from_networkx, to_networkx

        graph = LabeledGraph(5, [(1, 2)])
        assert from_networkx(to_networkx(graph)) == graph

    def test_diameter_cross_check(self):
        networkx = pytest.importorskip("networkx")
        from repro.graphs import diameter, gnp_random_graph
        from repro.graphs.nxadapter import to_networkx

        for seed in (1, 2):
            graph = gnp_random_graph(20, seed=seed)
            if graph.is_connected():
                assert diameter(graph) == networkx.diameter(to_networkx(graph))
