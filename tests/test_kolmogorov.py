"""Tests for the Kolmogorov-complexity surrogates and counting bounds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitio import BitArray
from repro.kolmogorov import (
    COMPRESSORS,
    best_estimate,
    binomial_band_count,
    chernoff_tail,
    compressed_length_bits,
    delta_random_fraction,
    estimate_complexity,
    incompressible_fraction,
    lemma1_deviation_bound,
)


class TestEstimators:
    def test_all_compressors_available(self):
        assert set(COMPRESSORS) == {"zlib", "bz2", "lzma"}

    def test_unknown_compressor_rejected(self):
        with pytest.raises(KeyError):
            compressed_length_bits(b"abc", "zip9000")

    def test_repetitive_data_compresses(self):
        bits = BitArray.zeros(80_000)
        estimate = estimate_complexity(bits)
        assert estimate.bits < 0.05 * len(bits)
        assert estimate.deficiency > 0.9 * len(bits)

    def test_random_data_does_not_compress(self):
        import random

        rng = random.Random(1)
        bits = BitArray(rng.getrandbits(1) for _ in range(80_000))
        estimate = best_estimate(bits)
        assert estimate.bits > 0.95 * len(bits)
        assert estimate.ratio > 0.95

    def test_best_estimate_is_minimum(self):
        bits = BitArray.zeros(4096)
        best = best_estimate(bits)
        assert all(
            best.bits <= estimate_complexity(bits, name).bits
            for name in COMPRESSORS
        )

    def test_empty_input(self):
        estimate = estimate_complexity(BitArray())
        assert estimate.original_bits == 0
        assert estimate.ratio == 1.0

    def test_deficiency_clamped(self):
        import random

        rng = random.Random(2)
        bits = BitArray(rng.getrandbits(1) for _ in range(256))
        assert estimate_complexity(bits).deficiency >= 0


class TestCounting:
    @given(st.integers(min_value=0, max_value=40))
    def test_incompressible_fraction_monotone(self, c):
        # c ≤ 40 keeps 2^-c well above double-precision rounding.
        assert 0.0 <= incompressible_fraction(c) < 1.0
        if c:
            assert incompressible_fraction(c) > incompressible_fraction(c - 1)

    def test_incompressible_fraction_examples(self):
        """Section 3: 50% lose at most 1 bit, 75% at most 2 bits."""
        assert incompressible_fraction(1) == pytest.approx(0.5)
        assert incompressible_fraction(2) == pytest.approx(0.75)

    def test_incompressible_rejects_negative(self):
        with pytest.raises(ValueError):
            incompressible_fraction(-1)

    def test_delta_random_fraction(self):
        """The paper's 'fraction 1 - 1/n^c of all graphs'."""
        assert delta_random_fraction(10, c=3.0) == pytest.approx(1 - 1e-3)
        assert delta_random_fraction(100, c=2.0) == pytest.approx(1 - 1e-4)

    def test_chernoff_decreases_in_k(self):
        values = [chernoff_tail(100, 0.5, k) for k in (0, 5, 10, 20, 40)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_chernoff_matches_formula(self):
        n, p, k = 200, 0.5, 15.0
        expected = 2 * math.exp(-(k * k) / (4 * n * p * (1 - p)))
        assert chernoff_tail(n, p, k) == pytest.approx(expected)

    def test_chernoff_capped_at_one(self):
        assert chernoff_tail(100, 0.5, 0) == 1.0

    def test_chernoff_rejects_degenerate(self):
        with pytest.raises(ValueError):
            chernoff_tail(100, 0.0, 1)
        with pytest.raises(ValueError):
            chernoff_tail(0, 0.5, 1)


class TestBinomialBand:
    def test_full_band_counts_everything(self):
        assert binomial_band_count(10, 0) == 2**9

    def test_band_shrinks(self):
        counts = [binomial_band_count(20, k) for k in range(0, 10, 2)]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_eq2_log_bound(self):
        """Eq. (2): log m ≤ (n-1) - k²/(n-1) · log e."""
        n, k = 101, 20
        m = binomial_band_count(n, k)
        assert math.log2(m) <= (n - 1) - (k * k / (n - 1)) * math.log2(math.e)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            binomial_band_count(1, 0)


class TestLemma1Bound:
    def test_scales_with_sqrt_n(self):
        small = lemma1_deviation_bound(100, 10.0)
        large = lemma1_deviation_bound(400, 10.0)
        assert large == pytest.approx(2 * small, rel=0.1)

    def test_zero_for_tiny_n(self):
        assert lemma1_deviation_bound(1, 5.0) == 0.0
