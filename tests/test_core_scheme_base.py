"""Tests for the scheme abstractions, registry and verification harness."""

from __future__ import annotations

import pytest

from repro.core import (
    SCHEME_BUILDERS,
    StaticFunction,
    available_schemes,
    build_scheme,
    route_message,
    verify_scheme,
)
from repro.core.scheme import HopDecision
from repro.errors import RoutingError, SchemeBuildError
from repro.graphs import gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel


class TestStaticFunction:
    def test_table_lookup(self):
        function = StaticFunction(1, {2: 5, 3: 6})
        assert function.next_hop(2).next_node == 5
        assert function.next_hop(3).next_node == 6

    def test_default_fallback(self):
        function = StaticFunction(1, {2: 5}, default=9)
        assert function.next_hop(4).next_node == 9

    def test_missing_raises(self):
        function = StaticFunction(1, {2: 5})
        with pytest.raises(RoutingError):
            function.next_hop(4)

    def test_as_table_copy(self):
        function = StaticFunction(1, {2: 5})
        table = function.as_table()
        table[2] = 99
        assert function.next_hop(2).next_node == 5

    def test_node_property(self):
        assert StaticFunction(7, {}).node == 7

    def test_hop_decision_defaults(self):
        decision = HopDecision(4)
        assert decision.next_node == 4
        assert decision.state is None


class TestRegistry:
    def test_known_schemes(self):
        names = available_schemes()
        assert "thm1-two-level" in names
        assert "thm2-neighbor-labels" in names
        assert "thm3-centers" in names
        assert "thm4-hub" in names
        assert "thm5-probe" in names
        assert "full-table" in names
        assert "full-information" in names
        assert "interval" in names

    def test_names_sorted(self):
        names = available_schemes()
        assert list(names) == sorted(names)

    def test_registry_names_match_classes(self):
        for name, cls in SCHEME_BUILDERS.items():
            assert cls.scheme_name == name

    def test_build_dispatches(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=6)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        assert scheme.scheme_name == "thm4-hub"
        assert scheme.graph is graph
        assert scheme.model is model_ii_alpha

    def test_build_passes_params(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=6)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha, hub=3)
        assert scheme.hub == 3

    def test_unknown_name(self, model_ii_alpha):
        with pytest.raises(SchemeBuildError, match="unknown scheme"):
            build_scheme("magic", gnp_random_graph(8, seed=0), model_ii_alpha)


class TestVerification:
    def test_route_message_trace(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        trace = route_message(scheme, 1, 4)
        assert trace.delivered
        assert trace.hops == 3
        assert trace.source == 1 and trace.destination == 4

    def test_verify_counts_all_ordered_pairs(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(5), model_ia_alpha)
        report = verify_scheme(scheme)
        assert report.pairs_checked == 5 * 4
        assert report.all_delivered

    def test_sampled_verification(self, model_ii_alpha):
        graph = gnp_random_graph(30, seed=15)
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        report = verify_scheme(scheme, sample_pairs=50, seed=1)
        assert report.pairs_checked == 50

    def test_violations_reported(self, model_ii_alpha):
        """A scheme advertising an impossible stretch gets flagged."""
        graph = gnp_random_graph(24, seed=6)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        scheme.stretch_bound = lambda: 1.0  # lie about the guarantee
        report = verify_scheme(scheme)
        if report.max_stretch > 1.0:
            assert report.violations
            assert not report.ok()

    def test_mean_stretch_between_one_and_max(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=6)
        report = verify_scheme(build_scheme("thm3-centers", graph, model_ii_alpha))
        assert 1.0 <= report.mean_stretch <= report.max_stretch

    def test_repr_mentions_model(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=6)
        scheme = build_scheme("thm5-probe", graph, model_ii_alpha)
        assert "II" in repr(scheme)
