"""Tests for the Theorem 5 probe scheme (O(n) bits, stretch O(log n))."""

from __future__ import annotations

import math

import pytest

from repro.core import ProbeScheme, ProbeState, route_message, verify_scheme
from repro.errors import RoutingError
from repro.graphs import gnp_random_graph, star_graph
from repro.models import Knowledge, Labeling, RoutingModel


class TestCorrectness:
    def test_all_pairs_delivered(self, model_ii_alpha):
        graph = gnp_random_graph(40, seed=25)
        scheme = ProbeScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.all_delivered

    def test_neighbors_one_hop(self, random_graph_32, model_ii_alpha):
        scheme = ProbeScheme(random_graph_32, model_ii_alpha)
        for w in random_graph_32.neighbors(1):
            assert route_message(scheme, 1, w).hops == 1

    def test_hop_bound_logarithmic(self, model_ii_alpha):
        """Theorem 5: ≤ 2(c+3) log n traversals on certified random graphs."""
        n = 128
        graph = gnp_random_graph(n, seed=62)
        scheme = ProbeScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch <= 6 * math.log2(n)

    def test_probe_walk_shape(self, model_ii_alpha):
        """A probe path alternates origin → vᵢ → origin → ... → target."""
        graph = gnp_random_graph(32, seed=71)
        scheme = ProbeScheme(graph, model_ii_alpha)
        source = 1
        target = graph.non_neighbors(source)[0]
        trace = route_message(scheme, source, target)
        assert trace.path[0] == source
        assert trace.path[-1] == target
        # Every even position is back at the origin.
        for i in range(0, len(trace.path) - 1, 2):
            assert trace.path[i] == source
        assert trace.hops % 2 == 0  # probes come in pairs, final hop delivers

    def test_star_center_probe(self, model_ii_alpha):
        """On a star every leaf pair routes via one probe of the centre."""
        graph = star_graph(12)
        scheme = ProbeScheme(graph, model_ii_alpha)
        trace = route_message(scheme, 2, 9)
        assert trace.path == (2, 1, 9)


class TestState:
    def test_probe_state_travels_in_header(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=13)
        scheme = ProbeScheme(graph, model_ii_alpha)
        u = 1
        target = graph.non_neighbors(u)[0]
        decision = scheme.function(u).next_hop(target, None)
        assert isinstance(decision.state, ProbeState)
        assert decision.state.origin == u
        assert decision.state.index == 0
        assert not decision.state.returning

    def test_bounce_returns_to_origin(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=13)
        scheme = ProbeScheme(graph, model_ii_alpha)
        u = 1
        target = graph.non_neighbors(u)[0]
        first = scheme.function(u).next_hop(target, None)
        probed = first.next_node
        if target not in graph.neighbor_set(probed):
            bounce = scheme.function(probed).next_hop(target, first.state)
            assert bounce.next_node == u
            assert bounce.state.returning

    def test_exhausted_probes_raise(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=13)
        scheme = ProbeScheme(graph, model_ii_alpha)
        u = 1
        target = graph.non_neighbors(u)[0]
        state = ProbeState(origin=u, index=graph.degree(u) - 1, returning=True)
        with pytest.raises(RoutingError):
            scheme.function(u).next_hop(target, state)


class TestAccounting:
    def test_one_bit_per_node(self, model_ii_alpha):
        graph = gnp_random_graph(64, seed=4)
        scheme = ProbeScheme(graph, model_ii_alpha)
        report = scheme.space_report()
        assert report.total_bits == 64
        assert report.max_node_bits == 1

    def test_linear_total_by_construction(self, model_ii_alpha):
        """Theorem 5's O(n): the total is exactly n marker bits."""
        for n in (32, 128):
            graph = gnp_random_graph(n, seed=n)
            assert ProbeScheme(graph, model_ii_alpha).space_report().total_bits == n

    def test_decode_round_trip(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=13)
        scheme = ProbeScheme(graph, model_ii_alpha)
        decoded = scheme.decode_function(2, scheme.encode_function(2))
        target = graph.neighbors(2)[0]
        assert decoded.next_hop(target).next_node == target

    def test_requires_model_ii(self, model_ib_alpha):
        with pytest.raises(Exception):
            ProbeScheme(gnp_random_graph(16, seed=0), model_ib_alpha)
