"""Tests for sampled tracing: determinism, anomaly retention, ring buffer."""

from __future__ import annotations

import pytest

from repro.observability import (
    RecordingTracer,
    RingBufferTracer,
    SamplingTracer,
)


def _drive_clean(tracer, msg_id, hops=3):
    """One clean message through the standalone (non-engine) interface."""
    tracer.inject(msg_id, 0, 9, time=0.0)
    for h in range(hops):
        tracer.hop(msg_id, h, h + 1, h, time=float(h))
    tracer.deliver(msg_id, 9, time=float(hops), hop=hops)


class TestDeterminism:
    def test_same_seed_same_keeps(self):
        keeps = []
        for _ in range(2):
            sampler = SamplingTracer(RecordingTracer(), rate=0.2, seed=13)
            for mid in range(200):
                _drive_clean(sampler, mid)
            keeps.append(
                {e.msg_id for e in sampler._sink.events if e.event == "inject"}
            )
        assert keeps[0] == keeps[1]
        assert 0 < len(keeps[0]) < 200

    def test_different_seeds_differ(self):
        keeps = []
        for seed in (1, 2):
            sampler = SamplingTracer(RecordingTracer(), rate=0.2, seed=seed)
            for mid in range(200):
                _drive_clean(sampler, mid)
            keeps.append(
                {e.msg_id for e in sampler._sink.events if e.event == "inject"}
            )
        assert keeps[0] != keeps[1]

    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            SamplingTracer(RecordingTracer(), rate=1.5)
        with pytest.raises(ValueError):
            SamplingTracer(RecordingTracer(), rate=-0.1)

    def test_rate_one_keeps_everything(self):
        sampler = SamplingTracer(RecordingTracer(), rate=1.0, seed=0)
        for mid in range(50):
            _drive_clean(sampler, mid)
        assert sampler.kept_sampled == 50
        assert sampler.suppressed_events == 0

    def test_rate_zero_suppresses_clean_traffic(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=0)
        for mid in range(50):
            _drive_clean(sampler, mid)
        assert sampler.kept_sampled == 0
        assert sampler._sink.events == []


class TestAnomalyRetention:
    def _suppressed_id(self, sampler):
        mid = 0
        while sampler._keep(mid):
            mid += 1
        return mid

    def test_drop_promotes_with_synthetic_inject(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        mid = self._suppressed_id(sampler)
        sampler.inject(mid, 4, 8, time=1.5)
        sampler.hop(mid, 4, 5, 0, time=2.0)
        sampler.drop(mid, 5, "LINK_DOWN", time=3.0)
        events = sampler._sink.events
        assert [e.event for e in events] == ["inject", "drop"]
        # The synthetic inject replays the breadcrumb facts.
        assert events[0].source == 4
        assert events[0].destination == 8
        assert events[0].time == 1.5
        # And the drop chains to it.
        assert events[1].parent == events[0].seq
        assert sampler.promoted == 1
        assert sampler.summary()["slo_breaches"] == 0

    def test_retry_promotes_then_streams(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        mid = self._suppressed_id(sampler)
        sampler.inject(mid, 1, 7, time=0.0)
        sampler.retry(mid, 1, attempt=1, time=2.0, reason="LINK_DOWN")
        sampler.hop(mid, 1, 2, 0, time=3.0, attempt=1)
        sampler.deliver(mid, 7, time=4.0, attempt=1)
        assert [e.event for e in sampler._sink.events] == [
            "inject", "retry", "hop", "deliver",
        ]

    def test_stale_delivery_promotes(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        mid = self._suppressed_id(sampler)
        sampler.inject(mid, 2, 6, time=0.0)
        sampler.hop(mid, 2, 6, 0, time=1.0)
        sampler.deliver(mid, 6, time=2.0, detail="stale")
        events = sampler._sink.events
        assert [e.event for e in events] == ["inject", "deliver"]
        assert events[-1].detail == "stale"
        assert sampler.promoted == 1

    def test_clean_delivery_stays_suppressed(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        mid = self._suppressed_id(sampler)
        _drive_clean(sampler, mid)
        assert sampler._sink.events == []
        assert sampler.promoted == 0

    def test_anomaly_without_inject_flags_slo(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        mid = self._suppressed_id(sampler)
        sampler.drop(mid, 5, "NODE_DOWN", time=1.0)
        events = [e.event for e in sampler._sink.events]
        assert "slo" in events
        assert sampler.summary()["slo_breaches"] == 1

    def test_control_plane_always_passes(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        sampler.fault(kind="link_down", subject=("link", "1", "2"), time=0.5)
        sampler.corrupt(3, time=1.0, detail="BIT_FLIP")
        assert [e.event for e in sampler._sink.events] == ["fault", "corrupt"]


class TestEngineProtocol:
    def test_wants_is_memoised_and_tallied(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.5, seed=11)
        first = [sampler.wants(mid) for mid in range(100)]
        again = [sampler.wants(mid) for mid in range(100)]
        assert first == again
        assert sampler.messages == 100  # re-queries don't recount
        assert sampler.kept_sampled == sum(first)

    def test_promote_emits_synthetic_inject_once(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        assert not sampler.wants(7)
        sampler.promote(7, 1, 9, inject_time=0.25)
        sampler.promote(7, 1, 9, inject_time=0.25)  # idempotent
        events = sampler._sink.events
        assert [e.event for e in events] == ["inject"]
        assert events[0].time == 0.25
        assert sampler.promoted == 1
        # Later spans now stream.
        sampler.hop(7, 1, 2, 0, time=0.5)
        assert sampler._sink.events[-1].event == "hop"

    def test_base_tracer_wants_everything(self):
        tracer = RecordingTracer()
        assert tracer.wants(42)
        tracer.promote(42, 0, 1)  # no-op, must not emit
        assert tracer.events == []


class TestClose:
    def test_close_emits_sample_summary(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        for mid in range(10):
            _drive_clean(sampler, mid)
        sampler.close(time=9.0)
        last = sampler._sink.events[-1]
        assert last.event == "sample"
        assert "messages=10" in last.detail
        assert "rate=0.0" in last.detail

    def test_close_is_idempotent(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        sampler.close()
        sampler.close()
        assert [e.event for e in sampler._sink.events] == ["sample"]

    def test_close_reports_slo_breaches(self):
        sampler = SamplingTracer(RecordingTracer(), rate=0.0, seed=3)
        sampler.drop(5, 1, "NODE_DOWN", time=1.0)  # no breadcrumb
        sampler.close()
        assert [e.event for e in sampler._sink.events].count("slo") == 2


class TestRingBuffer:
    def test_bounded_retention(self):
        ring = RingBufferTracer(capacity=5)
        for mid in range(12):
            ring.inject(mid, 0, 1)
        assert ring.seen == 12
        assert len(ring.events) == 5
        assert [e.msg_id for e in ring.events] == list(range(7, 12))

    def test_events_for_filters_by_message(self):
        ring = RingBufferTracer(capacity=10)
        _drive_clean(ring, 1, hops=2)
        _drive_clean(ring, 2, hops=1)
        assert all(e.msg_id == 1 for e in ring.events_for(1))
        assert len(ring.events_for(2)) == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferTracer(capacity=0)

    def test_as_sampler_sink(self):
        sampler = SamplingTracer(RingBufferTracer(capacity=8), rate=1.0)
        for mid in range(4):
            _drive_clean(sampler, mid, hops=1)
        assert sampler._sink.seen == 12
        assert len(sampler._sink.events) == 8
