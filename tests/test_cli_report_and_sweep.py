"""Tests for the report CLI command and sweep summaries."""

from __future__ import annotations

import pytest

from repro.analysis import SweepSummary, run_size_sweep, summarize_sweep
from repro.cli import main
from repro.models import Knowledge, Labeling, RoutingModel


class TestReportCommand:
    def test_aggregates_result_files(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "alpha.txt").write_text("alpha numbers")
        (results / "beta.txt").write_text("beta numbers")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "## alpha" in out
        assert "beta numbers" in out
        assert out.index("## alpha") < out.index("## beta")

    def test_writes_to_file(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "only.txt").write_text("content")
        target = tmp_path / "report.md"
        assert main(
            ["report", "--results-dir", str(results), "--output", str(target)]
        ) == 0
        assert "content" in target.read_text()
        assert target.read_text().startswith("# Reproduction report")

    def test_missing_dir_fails(self, tmp_path, capsys):
        assert main(
            ["report", "--results-dir", str(tmp_path / "nope")]
        ) == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_dir_fails(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        assert main(["report", "--results-dir", str(results)]) == 2


class TestSweepSummary:
    def test_mean_and_stderr(self, model_ii_alpha):
        points = run_size_sweep(
            "thm5-probe", model_ii_alpha, ns=[24, 32], seeds=(0, 1, 2),
            verify_pairs=None,
        )
        summaries = summarize_sweep(points)
        assert [s.n for s in summaries] == [24, 32]
        for summary in summaries:
            assert summary.samples == 3
            # probe scheme size is deterministic (= n): zero spread.
            assert summary.stderr == 0.0
            assert summary.mean == summary.n

    def test_single_sample_stderr_zero(self, model_ii_alpha):
        points = run_size_sweep(
            "thm5-probe", model_ii_alpha, ns=[24], seeds=(0,),
            verify_pairs=None,
        )
        (summary,) = summarize_sweep(points)
        assert summary.stderr == 0.0

    def test_str_is_readable(self):
        summary = SweepSummary(n=64, samples=3, mean=1234.5, stderr=12.3)
        text = str(summary)
        assert "n=64" in text and "±" in text

    def test_nonzero_spread_measured(self, model_ii_alpha):
        points = run_size_sweep(
            "thm1-two-level", model_ii_alpha, ns=[48], seeds=(0, 1, 2),
            verify_pairs=None,
        )
        (summary,) = summarize_sweep(points)
        assert summary.stderr > 0.0
        assert summary.mean > 0


class TestBootstrapCommand:
    def test_bootstrap_prints_costs(self, capsys):
        from repro.cli import main

        assert main(["bootstrap", "thm4-hub", "32", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "bit-hops" in out
        assert "makespan" in out

    def test_bootstrap_custom_root_and_rate(self, capsys):
        from repro.cli import main

        assert main(
            ["bootstrap", "full-table", "24", "--root", "5",
             "--rate", "1000"]
        ) == 0
