"""Edge-case tests for the verifier and scheme base plumbing."""

from __future__ import annotations

import pytest

from repro.core import build_scheme, route_message, verify_scheme
from repro.core.scheme import HopDecision, LocalRoutingFunction, RoutingScheme
from repro.bitio import BitArray
from repro.errors import RoutingError
from repro.graphs import LabeledGraph, gnp_random_graph, path_graph
from repro.models import Knowledge, Labeling, RoutingModel


class _LoopingFunction(LocalRoutingFunction):
    """Deliberately broken: ping-pongs between two nodes."""

    def __init__(self, node, partner):
        super().__init__(node)
        self._partner = partner

    def next_hop(self, destination, state=None):
        return HopDecision(self._partner)


class _LoopingScheme(RoutingScheme):
    """A pathological scheme for exercising the loop detector."""

    scheme_name = "looping"

    def _build_function(self, u):
        partner = 2 if u == 1 else 1
        return _LoopingFunction(u, partner)

    def encode_function(self, u):
        return BitArray()

    def decode_function(self, u, bits):
        return self._build_function(u)

    def stretch_bound(self):
        return 1.0


class _TeleportScheme(_LoopingScheme):
    """Forwards to a non-adjacent node: must be caught immediately."""

    scheme_name = "teleporting"

    def _build_function(self, u):
        return _LoopingFunction(u, 4)


class TestWalkerDefenses:
    def test_loop_detected(self, model_ii_alpha):
        graph = path_graph(3)
        scheme = _LoopingScheme(graph, model_ii_alpha)
        with pytest.raises(RoutingError, match="hop limit"):
            route_message(scheme, 1, 3)

    def test_non_adjacent_forward_detected(self, model_ii_alpha):
        graph = path_graph(5)
        scheme = _TeleportScheme(graph, model_ii_alpha)
        with pytest.raises(RoutingError, match="non-adjacent"):
            route_message(scheme, 1, 5)

    def test_verify_collects_failures_instead_of_raising(self, model_ii_alpha):
        graph = path_graph(3)
        scheme = _LoopingScheme(graph, model_ii_alpha)
        report = verify_scheme(scheme)
        assert report.failures
        assert not report.ok()
        assert report.delivered < report.pairs_checked

    def test_worst_pair_recorded(self, model_ii_alpha):
        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm4-hub", graph, model_ii_alpha)
        report = verify_scheme(scheme)
        if report.max_stretch > 1.0:
            assert report.worst_pair is not None
            u, w = report.worst_pair
            trace = route_message(scheme, u, w)
            from repro.graphs import distance_matrix

            dist = distance_matrix(graph)
            assert trace.hops / dist[u - 1, w - 1] == pytest.approx(
                report.max_stretch
            )

    def test_zero_sample_pairs(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        scheme = build_scheme("full-table", graph, model_ii_alpha)
        report = verify_scheme(scheme, sample_pairs=0)
        assert report.pairs_checked == 0
        assert report.mean_stretch == 0.0
        assert report.ok()

    def test_trace_fields(self, model_ia_alpha):
        scheme = build_scheme("full-table", path_graph(4), model_ia_alpha)
        trace = route_message(scheme, 2, 4)
        assert trace.source == 2
        assert trace.destination == 4
        assert trace.delivered
        assert trace.hops == len(trace.path) - 1


class TestSchemeBasePlumbing:
    def test_function_cache(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        scheme = build_scheme("full-table", graph, model_ii_alpha)
        assert scheme.function(3) is scheme.function(3)

    def test_default_addressing_is_identity(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        scheme = build_scheme("full-table", graph, model_ii_alpha)
        assert scheme.address_of(5) == 5
        assert scheme.node_of_address(5) == 5

    def test_node_of_address_rejects_garbage(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        scheme = build_scheme("full-table", graph, model_ii_alpha)
        with pytest.raises(RoutingError):
            scheme.node_of_address(object())

    def test_default_hop_limit_scales_with_n(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        scheme = build_scheme("full-table", graph, model_ii_alpha)
        assert scheme.hop_limit() >= 4 * 16

    def test_space_report_charges_every_node_once(self, model_ii_alpha):
        graph = gnp_random_graph(16, seed=0)
        report = build_scheme("full-table", graph, model_ii_alpha).space_report()
        assert sorted(entry.node for entry in report.per_node) == list(
            graph.nodes
        )
