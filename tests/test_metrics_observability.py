"""Tests for metrics-layer observability: cache counters, timestamps.

Covers the ``cached_distance_matrix`` shim over the shared
:class:`~repro.graphs.context.GraphContext` (legacy hit/miss counters,
identity with the context's matrix, store-level eviction), the registry
counters fed by ``summarize``, and the repaired ``mean_time_to_delivery``
computed from record timestamps instead of the ``mean_latency`` alias.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.graphs import (
    clear_context_cache,
    get_context,
    gnp_random_graph,
    path_graph,
)
from repro.graphs.context import context_cache_size
from repro.models import Knowledge, Labeling, RoutingModel
from repro.core import build_scheme
from repro.observability import MetricsRegistry, set_registry
from repro.simulator import (
    DeliveryRecord,
    EventDrivenSimulator,
    RetryPolicy,
    cached_distance_matrix,
    flapping_links,
    summarize,
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def clear_cache():
    clear_context_cache()
    yield
    clear_context_cache()


def _cache_count(registry, op):
    return registry.counter("repro_distance_cache_total", op=op).value


class TestDistanceCacheCounters:
    def test_miss_then_hit(self, registry, clear_cache):
        graph = path_graph(8)
        first = cached_distance_matrix(graph)
        assert _cache_count(registry, "miss") == 1
        assert _cache_count(registry, "hit") == 0
        second = cached_distance_matrix(graph)
        assert second is first
        assert _cache_count(registry, "hit") == 1
        assert _cache_count(registry, "miss") == 1

    def test_shim_returns_the_context_matrix(self, registry, clear_cache):
        """Unified caches: simulator and context hold the same ndarray."""
        graph = gnp_random_graph(12, seed=4)
        via_shim = cached_distance_matrix(graph)
        via_context = get_context(graph).distances()
        assert via_shim is via_context

    def test_context_first_makes_the_shim_hit(self, registry, clear_cache):
        """Work done by a builder (via the context) is a shim hit — the
        exact cross-layer reuse the unification buys."""
        graph = gnp_random_graph(12, seed=5)
        get_context(graph).distances()
        cached_distance_matrix(graph)
        assert _cache_count(registry, "hit") == 1
        assert _cache_count(registry, "miss") == 0

    def test_store_eviction_recomputes_afresh(self, registry, clear_cache):
        """Evicted graphs recompute the same values, never a stale hit."""
        size = context_cache_size()
        # Hold strong references so no id is ever reused across graphs.
        graphs = [gnp_random_graph(10, seed=s) for s in range(size + 2)]
        matrices = [cached_distance_matrix(g) for g in graphs]
        evictions = registry.counter(
            "repro_graph_ctx_store_total", op="eviction"
        ).value
        assert evictions == 2
        # The newest graph still hits its live context.
        hits_before = _cache_count(registry, "hit")
        assert cached_distance_matrix(graphs[-1]) is matrices[-1]
        assert _cache_count(registry, "hit") == hits_before + 1
        # Re-querying an evicted graph recomputes the same values afresh.
        recomputed = cached_distance_matrix(graphs[0])
        assert recomputed is not matrices[0]
        np.testing.assert_array_equal(recomputed, matrices[0])
        assert _cache_count(registry, "miss") == size + 3


class TestSummarizeCounters:
    def test_registry_totals(self, registry, clear_cache):
        graph = path_graph(6)
        scheme = build_scheme(
            "full-table", graph, RoutingModel(Knowledge.II, Labeling.ALPHA)
        )
        from repro.simulator import Network

        network = Network(scheme, failed_links=[(3, 4)])
        records = [network.route(1, 6), network.route(1, 2)]
        summarize(records, graph)
        assert registry.counter("repro_messages_routed_total").value == 2
        assert registry.counter("repro_messages_delivered_total").value == 1
        assert (
            registry.counter("repro_drops_total", reason="LINK_DOWN").value
            == 1
        )


def _record(delivered, latency, injected_at=math.nan, completed_at=math.nan,
            retries=0):
    return DeliveryRecord(
        msg_id=0,
        source=1,
        destination=3,
        delivered=delivered,
        hops=2,
        path=(1, 2, 3),
        latency=latency,
        retries=retries,
        injected_at=injected_at,
        completed_at=completed_at,
    )


class TestMeanTimeToDelivery:
    def test_computed_from_timestamps(self, registry, clear_cache):
        graph = path_graph(4)
        records = [
            _record(True, latency=5.0, injected_at=10.0, completed_at=15.0,
                    retries=1),
            _record(True, latency=3.0, injected_at=0.0, completed_at=3.0),
        ]
        metrics = summarize(records, graph)
        assert metrics.mean_time_to_delivery == pytest.approx(4.0)
        assert metrics.mean_time_to_delivery == pytest.approx(
            metrics.mean_latency
        )

    def test_walker_records_fall_back_to_latency_alias(
        self, registry, clear_cache
    ):
        graph = path_graph(4)
        records = [_record(True, latency=0.0)]  # untimed walker record
        metrics = summarize(records, graph)
        assert metrics.mean_time_to_delivery == metrics.mean_latency == 0.0

    def test_includes_retry_backoff_in_event_runs(self, registry, clear_cache):
        """End to end: with retries the delivered time spans the backoff."""
        graph = gnp_random_graph(24, seed=2)
        scheme = build_scheme(
            "interval", graph, RoutingModel(Knowledge.II, Labeling.BETA)
        )
        schedule = flapping_links(
            graph, 30, period=8.0, duty=0.5, horizon=60.0, seed=5
        )
        sim = EventDrivenSimulator(
            scheme,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=2.0),
        )
        import random

        clock = random.Random(11)
        for _ in range(60):
            s, t = clock.sample(sorted(graph.nodes), 2)
            sim.inject(s, t, clock.uniform(0.0, 40.0))
        records = sim.run()
        retried = [r for r in records if r.delivered and r.retries > 0]
        assert retried, "expected at least one retried delivery"
        for record in retried:
            assert record.time_to_delivery == pytest.approx(record.latency)
            # a retried delivery must have waited through >= 1 backoff
            assert record.time_to_delivery > float(record.hops)
        metrics = summarize(records, graph)
        assert not math.isnan(metrics.mean_time_to_delivery)

    def test_record_time_to_delivery_property(self):
        record = _record(True, latency=7.0, injected_at=1.0, completed_at=8.0)
        assert record.time_to_delivery == pytest.approx(7.0)
        assert math.isnan(_record(True, latency=0.0).time_to_delivery)
