"""SchemeStore end-to-end: puts, snapshots, hot-swap, recovery, audit."""

from __future__ import annotations

import pytest

from repro.core import build_scheme, route_message, verify_scheme
from repro.core.persistence import pack_scheme, restore_scheme
from repro.errors import StoreError
from repro.observability.registry import MetricsRegistry
from repro.observability.tracer import RecordingTracer
from repro.store import (
    FaultyFilesystem,
    JOURNAL_NAME,
    LocalFilesystem,
    MemoryFilesystem,
    SchemeStore,
    SimulatedCrash,
    StoreFault,
    StoreFaultKind,
)


@pytest.fixture(scope="module")
def scheme(random_graph_32, model_ii_alpha):
    return build_scheme("full-table", random_graph_32, model_ii_alpha)


@pytest.fixture(scope="module")
def blob(scheme):
    return pack_scheme(scheme)


def open_store(fs, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("snapshot_every", 100)  # disable auto-compact
    return SchemeStore.open(fs, **kwargs)


class TestBasics:
    def test_open_empty(self):
        store = open_store(MemoryFilesystem())
        assert store.last_recovery.source == "empty"
        assert store.last_recovery.clean
        assert store.list() == []

    def test_put_get_roundtrip(self, blob):
        store = open_store(MemoryFilesystem())
        generation = store.put("ft", blob, manifest={"seed": 101})
        assert generation == 1
        entry = store.get("ft")
        assert entry.blob == blob
        assert entry.manifest == {"seed": 101}
        assert store.active_generation("ft") == 1

    def test_put_rejects_garbage_blob(self):
        store = open_store(MemoryFilesystem())
        with pytest.raises(StoreError, match="undecodable"):
            store.put("junk", b"not a packed scheme")
        assert store.list() == []

    def test_generations_are_monotone(self, blob):
        store = open_store(MemoryFilesystem())
        assert store.put("ft", blob) == 1
        assert store.put("ft", blob) == 2
        assert store.put("other", blob) == 1
        assert store.catalog.generations("ft") == [1, 2]
        # First put auto-activates; later puts do not steal the pointer.
        assert store.active_generation("ft") == 1

    def test_swap_and_validation(self, blob):
        store = open_store(MemoryFilesystem())
        store.put("ft", blob)
        store.put("ft", blob)
        store.swap("ft", 2)
        assert store.active_generation("ft") == 2
        with pytest.raises(StoreError, match="generation"):
            store.swap("ft", 9)

    def test_get_missing(self, blob):
        store = open_store(MemoryFilesystem())
        with pytest.raises(StoreError, match="no scheme"):
            store.get("nope")
        store.put("ft", blob)
        with pytest.raises(StoreError, match="generation"):
            store.get("ft", 5)


class TestDurability:
    def test_reopen_replays_journal(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        store.put("ft", blob)
        store.swap("ft", 2)
        reopened = open_store(fs)
        assert reopened.last_recovery.source == "journal"
        assert reopened.active_generation("ft") == 2
        assert reopened.get("ft").blob == blob

    def test_unsynced_put_does_not_survive_crash(self, blob):
        fs = MemoryFilesystem()
        store = open_store(
            FaultyFilesystem(
                fs, [StoreFault(kind=StoreFaultKind.LOST_FSYNC, op_index=0)]
            )
        )
        store.put("ft", blob)  # sync was a lie
        fs.crash()
        reopened = open_store(fs)
        assert reopened.list() == []

    def test_snapshot_after_threshold_and_reopen(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs, snapshot_every=2)
        store.put("ft", blob)
        store.put("ft", blob)  # triggers compact
        assert any(name.startswith("snapshot-") for name in fs.list())
        assert fs.read(JOURNAL_NAME) == b""
        reopened = open_store(fs)
        assert reopened.last_recovery.source == "snapshot"
        assert reopened.catalog.generations("ft") == [1, 2]
        assert reopened.get("ft").blob == blob

    def test_compact_prunes_old_snapshots(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs, keep_snapshots=2)
        store.put("ft", blob)
        for _ in range(4):
            store.compact()
        snapshots = [n for n in fs.list() if n.startswith("snapshot-")]
        assert len(snapshots) <= 2
        assert open_store(fs).get("ft").blob == blob

    def test_failed_journal_reset_is_harmless(self, blob):
        # Snapshot lands, journal reset fails: replay over the snapshot
        # must be idempotent.
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        faulty = FaultyFilesystem(
            fs, [StoreFault(kind=StoreFaultKind.RENAME_FAIL, op_index=1)]
        )
        store_f = open_store(faulty)
        store_f.compact()  # replace 0 = snapshot OK, replace 1 = reset fails
        assert fs.read(JOURNAL_NAME) != b""  # stale journal left behind
        reopened = open_store(fs)
        assert reopened.last_recovery.source == "snapshot+journal"
        assert reopened.catalog.generations("ft") == [1]
        assert reopened.get("ft").blob == blob

    def test_failed_snapshot_install_leaves_store_usable(self, blob):
        fs = MemoryFilesystem()
        faulty = FaultyFilesystem(
            fs, [StoreFault(kind=StoreFaultKind.RENAME_FAIL, op_index=0)]
        )
        store = open_store(faulty)
        store.put("ft", blob)
        with pytest.raises(StoreError, match="rename fail"):
            store.compact()
        reopened = open_store(fs)
        assert reopened.get("ft").blob == blob

    def test_torn_put_recovers_to_previous_state(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        faulty = FaultyFilesystem(
            fs,
            [StoreFault(kind=StoreFaultKind.TORN_WRITE, op_index=0,
                        fraction=0.6)],
        )
        store2 = open_store(faulty)
        with pytest.raises(SimulatedCrash):
            store2.put("ft", blob)
        fs.crash()
        reopened = open_store(fs)
        assert reopened.last_recovery.torn_tail_bytes > 0
        assert reopened.catalog.generations("ft") == [1]
        # Self-heal: the torn tail was compacted away, so appends are safe.
        reopened.put("ft", blob)
        assert reopened.verify()["ok"]


class TestHotSwap:
    def test_hot_swap_switches_active(self, blob):
        store = open_store(MemoryFilesystem())
        store.put("ft", blob)
        generation = store.hot_swap("ft", blob)
        assert generation == 2
        assert store.active_generation("ft") == 2

    def test_hot_swap_rejects_bad_candidate(self, blob):
        store = open_store(MemoryFilesystem())
        store.put("ft", blob)
        with pytest.raises(StoreError, match="failed verification"):
            store.hot_swap("ft", blob[:-7])
        assert store.active_generation("ft") == 1
        assert store.catalog.generations("ft") == [1]

    def test_hot_swap_emits_swap_span(self, blob):
        tracer = RecordingTracer()
        store = open_store(MemoryFilesystem(), tracer=tracer)
        store.hot_swap("ft", blob)
        assert [e.event for e in tracer.events if e.event == "swap"] == ["swap"]

    def test_hot_swap_read_back_comes_from_disk(self, blob):
        # A short write silently persists only a prefix of the PUT
        # record.  The in-memory catalog still holds the full blob, so
        # only a genuine disk read-back can notice — hot_swap must
        # refuse to activate and leave the old generation serving.
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)  # append 0: healthy baseline
        faulty = FaultyFilesystem(
            fs,
            [StoreFault(kind=StoreFaultKind.SHORT_WRITE, op_index=0,
                        fraction=0.5)],
        )
        store2 = open_store(faulty)
        with pytest.raises(StoreError, match="read-back"):
            store2.hot_swap("ft", blob)
        assert store2.active_generation("ft") == 1
        # Recovery over the damaged journal also serves generation 1.
        reopened = open_store(fs)
        assert reopened.active_generation("ft") == 1


class TestVerifyAndRot:
    def test_verify_clean(self, blob):
        store = open_store(MemoryFilesystem())
        store.put("ft", blob)
        report = store.verify()
        assert report["ok"] and report["problems"] == []

    def test_verify_detects_journal_bit_rot(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        fs.corrupt_bit(JOURNAL_NAME, 999)
        report = store.verify()
        assert not report["ok"]
        assert any("damage" in p or "missing" in p for p in report["problems"])

    def test_verify_detects_snapshot_bit_rot(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        target = store.compact()
        fs.corrupt_bit(target, 4321)
        report = store.verify()
        assert not report["ok"]

    def test_recover_after_rot_falls_back_and_degrades(self, blob):
        fs = MemoryFilesystem()
        store = open_store(fs)
        store.put("ft", blob)
        store.compact()          # snapshot holds generation 1
        store.put("ft", blob)    # generation 2 lives only in the journal
        fs.corrupt_bit(JOURNAL_NAME, 40)
        report = store.recover()
        assert report.quarantined
        # Generation 2's record was damaged: serve the last good snapshot.
        assert store.catalog.generations("ft") == [1]
        assert store.get("ft").blob == blob

    def test_metrics_updated(self, blob):
        registry = MetricsRegistry()
        fs = MemoryFilesystem()
        store = open_store(fs, registry=registry)
        store.put("ft", blob)
        prom = registry.to_prometheus()
        assert "repro_store_records_total" in prom
        assert "repro_store_recoveries_total" in prom
        assert "repro_store_journal_bits" in prom


class TestOnRealDisk:
    def test_stale_temp_files_are_hidden_and_swept(self, tmp_path, blob):
        root = tmp_path / "store"
        fs = LocalFilesystem(str(root))
        store = open_store(fs)
        store.put("ft", blob)
        target = store.compact()
        # A crash between mkstemp and os.replace leaves a scratch file.
        stale = root / (target + ".tmpdeadbeef")
        stale.write_bytes(b"half-written snapshot")
        assert stale.name not in fs.list()  # invisible to the store
        reopened = open_store(LocalFilesystem(str(root)))
        assert not stale.exists()  # swept on open
        assert reopened.get("ft").blob == blob

    def test_local_filesystem_roundtrip(self, tmp_path, blob, scheme,
                                        random_graph_32, model_ii_alpha):
        fs = LocalFilesystem(str(tmp_path / "store"))
        store = open_store(fs)
        store.put("ft", blob)
        store.compact()
        reopened = open_store(LocalFilesystem(str(tmp_path / "store")))
        recovered = reopened.get("ft").blob
        assert recovered == blob
        # The recovered scheme routes bit-exact: same path for every pair.
        restored = restore_scheme(
            recovered, random_graph_32, model_ii_alpha
        )
        report = verify_scheme(restored, sample_pairs=50, seed=5)
        assert report.ok()
        for source, destination in ((1, 9), (4, 30), (17, 2)):
            assert (
                route_message(restored, source, destination).path
                == route_message(scheme, source, destination).path
            )
