"""Tests for the canonical ``E(G)`` encoding (Definition 2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    LabeledGraph,
    complete_graph,
    decode_graph,
    edge_code_length,
    edge_index,
    encode_graph,
    gnp_random_graph,
    index_to_edge,
)
from repro.bitio import BitArray


class TestEdgeIndex:
    def test_first_edge(self):
        assert edge_index(1, 2, 5) == 0

    def test_last_edge(self):
        assert edge_index(4, 5, 5) == edge_code_length(5) - 1

    def test_order_is_lexicographic(self):
        n = 6
        pairs = [(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
        assert [edge_index(u, v, n) for u, v in pairs] == list(range(len(pairs)))

    def test_symmetric_in_arguments(self):
        assert edge_index(3, 5, 8) == edge_index(5, 3, 8)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_index(2, 2, 5)

    @given(st.integers(min_value=2, max_value=30), st.data())
    def test_index_round_trip(self, n, data):
        index = data.draw(
            st.integers(min_value=0, max_value=edge_code_length(n) - 1)
        )
        u, v = index_to_edge(index, n)
        assert edge_index(u, v, n) == index

    def test_index_to_edge_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            index_to_edge(edge_code_length(4), 4)


class TestGraphCodec:
    def test_code_length(self):
        assert len(encode_graph(LabeledGraph(5))) == edge_code_length(5)

    def test_empty_graph_all_zeros(self):
        assert encode_graph(LabeledGraph(5)).count(1) == 0

    def test_complete_graph_all_ones(self):
        assert encode_graph(complete_graph(5)).count(0) == 0

    def test_one_bit_per_edge(self):
        graph = LabeledGraph(4, [(1, 3), (2, 4)])
        code = encode_graph(graph)
        assert code.count(1) == 2
        assert code[edge_index(1, 3, 4)] == 1
        assert code[edge_index(2, 4, 4)] == 1

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(GraphError):
            decode_graph(BitArray.zeros(5), 5)

    @given(st.integers(min_value=1, max_value=40), st.integers())
    def test_round_trip_random_graphs(self, n, seed):
        graph = gnp_random_graph(n, seed=abs(seed) % (2**31))
        assert decode_graph(encode_graph(graph), n) == graph

    @given(st.integers(min_value=2, max_value=16), st.data())
    def test_every_bitstring_is_a_graph(self, n, data):
        """Definition 2: the correspondence is a bijection."""
        bits = BitArray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=1),
                    min_size=edge_code_length(n),
                    max_size=edge_code_length(n),
                )
            )
        )
        graph = decode_graph(bits, n)
        assert encode_graph(graph) == bits
