"""Tests for the Lemma 1–3 codecs (the proofs, executed)."""

from __future__ import annotations

import pytest

from repro.errors import CodecError
from repro.graphs import (
    LabeledGraph,
    complete_graph,
    edge_code_length,
    encode_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.incompressibility import (
    Lemma1Codec,
    Lemma2Codec,
    Lemma3Codec,
    cover_prefix_size,
    evaluate_codec,
    find_distant_pair,
    find_uncovered_witness,
)


def dense_dumbbell(cluster: int, bridge: int) -> LabeledGraph:
    """Two cliques joined by a path — distant pairs with high degrees."""
    n = 2 * cluster + bridge
    edges = []
    for u in range(1, cluster + 1):
        for v in range(u + 1, cluster + 1):
            edges.append((u, v))
    offset = cluster + bridge
    for u in range(offset + 1, n + 1):
        for v in range(u + 1, n + 1):
            edges.append((u, v))
    chain = [cluster] + list(range(cluster + 1, offset + 1)) + [offset + 1]
    edges += list(zip(chain, chain[1:]))
    return LabeledGraph(n, edges)


class TestLemma1:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_round_trip_random(self, seed):
        graph = gnp_random_graph(30, seed=seed)
        assert evaluate_codec(Lemma1Codec(), graph).round_trip_ok

    def test_round_trip_every_pinned_node(self):
        graph = gnp_random_graph(14, seed=3)
        for u in graph.nodes:
            assert evaluate_codec(Lemma1Codec(node=u), graph).round_trip_ok

    def test_random_graph_saves_almost_nothing(self):
        """Lemma 1: no compressible degree deviation on random graphs."""
        graph = gnp_random_graph(64, seed=5)
        report = evaluate_codec(Lemma1Codec(), graph)
        assert report.savings <= 3 * 64  # δ(n)-scale slack, ≪ the n-1 row

    def test_star_compresses_hard(self):
        """A maximally skewed degree is maximally compressible."""
        graph = star_graph(64)
        report = evaluate_codec(Lemma1Codec(node=1), graph)
        assert report.savings >= 40  # n - 1 literal bits vs ~2 log n header

    def test_empty_node_compresses(self):
        graph = LabeledGraph(20, [(u, v) for u in range(2, 21)
                                  for v in range(u + 1, 21)])
        report = evaluate_codec(Lemma1Codec(node=1), graph)
        assert report.savings > 0

    def test_picks_most_deviant_node(self):
        codec = Lemma1Codec()
        graph = star_graph(20)
        assert codec._pick_node(graph) == 1

    def test_rejects_single_node(self):
        with pytest.raises(CodecError):
            Lemma1Codec().encode(LabeledGraph(1))

    def test_encoding_is_self_contained(self):
        """Decode uses only the bits and n."""
        graph = gnp_random_graph(22, seed=9)
        codec = Lemma1Codec()
        bits = codec.encode(graph)
        assert Lemma1Codec().decode(bits, 22) == graph


class TestLemma2:
    def test_refuses_on_random_graphs(self):
        """Lemma 2 made executable: random graphs give the codec no hook."""
        for seed in range(4):
            graph = gnp_random_graph(48, seed=seed)
            assert find_distant_pair(graph) is None
            with pytest.raises(CodecError):
                Lemma2Codec().encode(graph)

    def test_round_trip_on_path(self):
        graph = path_graph(12)
        assert evaluate_codec(Lemma2Codec(), graph).round_trip_ok

    def test_round_trip_on_dumbbell(self):
        graph = dense_dumbbell(cluster=10, bridge=3)
        assert evaluate_codec(Lemma2Codec(), graph).round_trip_ok

    def test_dumbbell_compresses_by_degree(self):
        """The saving is the witness's degree minus the 2 log n header."""
        graph = dense_dumbbell(cluster=12, bridge=3)
        pair = find_distant_pair(graph)
        assert pair is not None
        report = evaluate_codec(Lemma2Codec(), graph)
        u, v = pair
        overhead = Lemma2Codec().overhead_bits(graph.n)
        assert report.savings == graph.degree(u) - overhead

    def test_explicit_pair_respected(self):
        graph = path_graph(8)
        codec = Lemma2Codec(pair=(1, 5))
        assert evaluate_codec(codec, graph).round_trip_ok

    def test_explicit_close_pair_rejected(self):
        graph = path_graph(8)
        with pytest.raises(CodecError):
            Lemma2Codec(pair=(1, 2)).encode(graph)

    def test_savings_positive_for_dense_witness(self):
        graph = dense_dumbbell(cluster=14, bridge=3)
        assert Lemma2Codec().savings(graph) > 0


class TestLemma3:
    def test_no_witness_on_random_graphs(self):
        """Lemma 3 on instances: every node is covered via its least prefix."""
        for seed in range(3):
            graph = gnp_random_graph(64, seed=seed)
            assert find_uncovered_witness(graph) is None

    def test_witness_on_sparse_graph(self):
        # A long cycle: node 1's least neighbours never cover the far side.
        from repro.graphs import cycle_graph

        graph = cycle_graph(64)
        witness = find_uncovered_witness(graph)
        assert witness is not None

    def test_round_trip_with_witness(self):
        from repro.graphs import cycle_graph

        graph = cycle_graph(40)
        assert evaluate_codec(Lemma3Codec(), graph).round_trip_ok

    def test_refuses_without_witness(self):
        graph = gnp_random_graph(48, seed=1)
        with pytest.raises(CodecError):
            Lemma3Codec().encode(graph)

    def test_prefix_size_formula(self):
        assert cover_prefix_size(64, c=3.0) == 36
        assert cover_prefix_size(2, c=3.0) == 6

    def test_rejects_covered_witness(self):
        graph = gnp_random_graph(32, seed=2)
        with pytest.raises(CodecError):
            Lemma3Codec(witness=(1, graph.non_neighbors(1)[0])).encode(graph)

    def test_rejects_self_witness(self):
        from repro.graphs import cycle_graph

        with pytest.raises(CodecError):
            Lemma3Codec(witness=(1, 1)).encode(cycle_graph(12))

    def test_savings_account_for_prefix(self):
        from repro.graphs import cycle_graph

        graph = cycle_graph(50)
        codec = Lemma3Codec()
        witness = find_uncovered_witness(graph)
        u, _ = witness
        report = evaluate_codec(codec, graph)
        assert report.savings == codec.expected_savings(50, graph.degree(u))


class TestReports:
    def test_report_fields(self):
        graph = gnp_random_graph(20, seed=4)
        report = evaluate_codec(Lemma1Codec(), graph)
        assert report.n == 20
        assert report.baseline_bits == edge_code_length(20)
        assert report.encoded_bits == report.baseline_bits - report.savings

    def test_codec_names_distinct(self):
        names = {Lemma1Codec.name, Lemma2Codec.name, Lemma3Codec.name}
        assert len(names) == 3
