"""Tests for the G_B size variants and the full-information verifier."""

from __future__ import annotations

import pytest

from repro.core import (
    FullInformationScheme,
    verify_full_information_resilience,
    verify_scheme,
)
from repro.errors import GraphError, RoutingError
from repro.graphs import gnp_random_graph, lower_bound_graph_variant
from repro.lowerbounds import ExplicitLowerBoundScheme, recover_outer_assignment
from repro.models import Knowledge, Labeling, RoutingModel


class TestVariantFamily:
    @pytest.mark.parametrize("n", [12, 13, 14, 22, 23, 24])
    def test_any_n_builds_and_routes(self, n, model_ii_alpha):
        """'For n = 3k−1 or 3k−2 we can use G_B dropping v_k and v_{k−1}'."""
        scheme = ExplicitLowerBoundScheme.for_any_n(n, model_ii_alpha)
        assert scheme.graph.n == n
        report = verify_scheme(scheme)
        assert report.ok()
        assert report.max_stretch == 1.0

    @pytest.mark.parametrize("n", [13, 14])
    def test_dropped_inner_layer_sizes(self, n, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.for_any_n(n, model_ii_alpha)
        k = (n + 2) // 3
        assert scheme.k == k
        assert len(scheme.inner_nodes) == n - 2 * k

    def test_variant_generator_structure(self):
        graph, k, inner_count = lower_bound_graph_variant(17)
        assert graph.n == 17
        assert k == 6 and inner_count == 5
        # inner nodes see every middle node
        for inner in range(1, inner_count + 1):
            assert graph.degree(inner) == k
        # outer nodes are pendants
        for outer in range(inner_count + k + 1, 18):
            assert graph.degree(outer) == 1

    def test_variant_rejects_tiny(self):
        with pytest.raises(GraphError):
            lower_bound_graph_variant(3)

    @pytest.mark.parametrize("n", [13, 14, 15])
    def test_permutation_still_recoverable(self, n, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.for_any_n(n, model_ii_alpha)
        recovered = recover_outer_assignment(scheme, 1)
        assert len(recovered) == scheme.k
        assert sorted(recovered) == list(
            range(n - scheme.k + 1, n + 1)
        )

    @pytest.mark.parametrize("n", [13, 14])
    def test_variant_round_trips(self, n, model_ii_alpha):
        scheme = ExplicitLowerBoundScheme.for_any_n(n, model_ii_alpha)
        for u in scheme.graph.nodes:
            decoded = scheme.decode_function(u, scheme.encode_function(u))
            for w in scheme.graph.nodes:
                if w != u:
                    assert (
                        decoded.next_hop(w).next_node
                        == scheme.function(u).next_hop(w).next_node
                    )


class TestFullInformationResilienceVerifier:
    def test_random_graph_rich_in_alternatives(self, model_ii_alpha):
        graph = gnp_random_graph(32, seed=4)
        scheme = FullInformationScheme(graph, model_ii_alpha)
        pairs, reroutes = verify_full_information_resilience(
            scheme, sample_nodes=8, seed=1
        )
        assert pairs == 8 * 31
        # On G(n, 1/2) most pairs have many shortest options.
        assert reroutes > pairs

    def test_rejects_non_full_information(self, model_ii_alpha):
        from repro.core import build_scheme

        graph = gnp_random_graph(24, seed=3)
        scheme = build_scheme("thm1-two-level", graph, model_ii_alpha)
        with pytest.raises(RoutingError):
            verify_full_information_resilience(scheme, sample_nodes=2)

    def test_tree_has_no_alternatives(self, model_ii_alpha):
        """On a tree every shortest path is unique: zero reroutes, yet the
        verifier passes (single options are acceptable)."""
        from repro.graphs import path_graph

        scheme = FullInformationScheme(path_graph(8), model_ii_alpha)
        pairs, reroutes = verify_full_information_resilience(scheme)
        assert reroutes == 0
        assert pairs == 8 * 7
