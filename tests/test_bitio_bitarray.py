"""Unit tests for :class:`repro.bitio.BitArray`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitio import BitArray
from repro.errors import BitstreamError


class TestConstruction:
    def test_empty(self):
        bits = BitArray()
        assert len(bits) == 0
        assert bits.to01() == ""

    def test_from_iterable(self):
        bits = BitArray([1, 0, 1, 1])
        assert bits.to01() == "1011"

    def test_rejects_non_bits(self):
        with pytest.raises(BitstreamError):
            BitArray([0, 2, 1])

    def test_from01(self):
        assert BitArray.from01("10110").to01() == "10110"

    def test_from01_rejects_garbage(self):
        with pytest.raises(BitstreamError):
            BitArray.from01("10x1")

    def test_from_int_exact_width(self):
        assert BitArray.from_int(5, 3).to01() == "101"

    def test_from_int_zero_padding(self):
        assert BitArray.from_int(5, 6).to01() == "000101"

    def test_from_int_rejects_overflow(self):
        with pytest.raises(BitstreamError):
            BitArray.from_int(8, 3)

    def test_from_int_rejects_negative(self):
        with pytest.raises(BitstreamError):
            BitArray.from_int(-1, 4)

    def test_zeros(self):
        bits = BitArray.zeros(10)
        assert len(bits) == 10
        assert bits.count(1) == 0
        assert bits.count(0) == 10


class TestAccess:
    def test_indexing(self):
        bits = BitArray.from01("1001")
        assert [bits[i] for i in range(4)] == [1, 0, 0, 1]

    def test_negative_indexing(self):
        bits = BitArray.from01("1001")
        assert bits[-1] == 1
        assert bits[-3] == 0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BitArray.from01("10")[2]

    def test_slicing(self):
        bits = BitArray.from01("110010")
        assert bits[1:4].to01() == "100"

    def test_iteration(self):
        assert list(BitArray.from01("101")) == [1, 0, 1]

    def test_to_int(self):
        assert BitArray.from01("1101").to_int() == 13

    def test_to_int_empty(self):
        assert BitArray().to_int() == 0

    def test_count(self):
        bits = BitArray.from01("1101001")
        assert bits.count(1) == 4
        assert bits.count(0) == 3

    def test_to_bytes_padding(self):
        bits = BitArray.from01("1" * 9)
        raw = bits.to_bytes()
        assert len(raw) == 2
        assert raw[0] == 0xFF
        assert raw[1] == 0x80


class TestOperators:
    def test_concatenation(self):
        left = BitArray.from01("101")
        right = BitArray.from01("01")
        assert (left + right).to01() == "10101"

    def test_concatenation_byte_aligned(self):
        left = BitArray.from01("10110100")
        right = BitArray.from01("111")
        assert (left + right).to01() == "10110100111"

    def test_equality(self):
        assert BitArray.from01("101") == BitArray([1, 0, 1])
        assert BitArray.from01("101") != BitArray.from01("1010")

    def test_equality_ignores_padding_difference(self):
        a = BitArray.from01("1")
        b = BitArray.from01("10")
        assert a != b

    def test_hashable(self):
        seen = {BitArray.from01("101"), BitArray.from01("101")}
        assert len(seen) == 1

    def test_repr_short(self):
        assert "101" in repr(BitArray.from01("101"))


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_to01_round_trip(self, bits):
        array = BitArray(bits)
        assert BitArray.from01(array.to01()) == array

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_int_round_trip(self, value):
        width = max(value.bit_length(), 1)
        assert BitArray.from_int(value, width).to_int() == value

    @given(
        st.lists(st.integers(min_value=0, max_value=1), max_size=64),
        st.lists(st.integers(min_value=0, max_value=1), max_size=64),
    )
    def test_concatenation_matches_lists(self, left, right):
        combined = BitArray(left) + BitArray(right)
        assert list(combined) == left + right

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=100))
    def test_count_consistency(self, bits):
        array = BitArray(bits)
        assert array.count(1) + array.count(0) == len(array)
