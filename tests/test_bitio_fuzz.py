"""Fuzz/robustness tests: malformed bit streams must fail loudly.

Every decoder in the library raises :class:`BitstreamError` /
:class:`CodecError` on truncated or corrupted inputs rather than returning
garbage — these tests hammer that contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitArray, BitReader, BitWriter
from repro.errors import BitstreamError, CodecError, ReproError
from repro.graphs import gnp_random_graph


random_bits = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


class TestTruncation:
    @given(st.integers(min_value=0, max_value=300))
    def test_truncated_unary_raises(self, value):
        writer = BitWriter()
        writer.write_unary(value)
        full = writer.getvalue()
        truncated = full[: len(full) - 1]
        reader = BitReader(truncated)
        with pytest.raises(BitstreamError):
            reader.read_unary()

    @given(random_bits)
    def test_truncated_hat_raises(self, bits):
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_hat(payload)
        full = writer.getvalue()
        reader = BitReader(full[: len(full) - 1])
        with pytest.raises(BitstreamError):
            reader.read_hat()

    @given(st.lists(st.integers(min_value=0, max_value=1),
                    min_size=1, max_size=64))
    def test_truncated_prime_raises(self, bits):
        payload = BitArray(bits)
        writer = BitWriter()
        writer.write_prime(payload)
        full = writer.getvalue()
        reader = BitReader(full[: len(full) - 1])
        with pytest.raises(BitstreamError):
            reader.read_prime()

    def test_non_canonical_prime_rejected(self):
        # Length field "01" (leading zero) is non-canonical for length 1.
        writer = BitWriter()
        writer.write_unary(2)          # claims a 2-bit length field
        writer.write_uint(0b01, 2)     # "01" = 1, but 1 needs one bit
        writer.write_bit(1)            # the payload
        reader = BitReader(writer.getvalue())
        with pytest.raises(BitstreamError):
            reader.read_prime()


class TestForeignBytes:
    @given(st.binary(max_size=40))
    @settings(max_examples=60)
    def test_scheme_blob_never_crashes_unguarded(self, data):
        """Random bytes either parse (vanishingly unlikely) or raise the
        library's own error — never an unhandled exception."""
        from repro.core import unpack_blob

        try:
            unpack_blob(data)
        except ReproError:
            pass

    @given(st.binary(min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_two_level_decode_rejects_random_bits(self, data):
        """Arbitrary bits fed to the Theorem 1 decoder raise or decode —
        and anything that decodes must index real neighbours."""
        from repro.core.two_level import decode_two_level_function

        graph = gnp_random_graph(16, seed=0)
        bits = BitArray(
            (byte >> (7 - i)) & 1 for byte in data for i in range(8)
        )
        try:
            function = decode_two_level_function(
                1, 16, graph.neighbors(1), bits
            )
        except (ReproError, IndexError):
            return
        for w in graph.non_neighbors(1):
            assert function.intermediate_for(w) in graph.neighbors(1)


class TestGraphDecoderGuards:
    @given(st.integers(min_value=2, max_value=16), st.integers(min_value=0, max_value=200))
    def test_wrong_length_rejected(self, n, extra):
        from repro.errors import GraphError
        from repro.graphs import decode_graph, edge_code_length

        wrong = edge_code_length(n) + 1 + extra
        with pytest.raises(GraphError):
            decode_graph(BitArray.zeros(wrong), n)

    def test_codec_decode_of_foreign_stream(self):
        from repro.incompressibility import Lemma1Codec

        with pytest.raises(ReproError):
            Lemma1Codec().decode(BitArray.zeros(10), 12)
