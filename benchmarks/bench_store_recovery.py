"""Experiment STORE — crash-safe durable store: detection and recovery.

A routing scheme that survives in memory but not on disk is one power
cut away from a cold rebuild.  This bench drives the :mod:`repro.store`
subsystem through its failure envelope and quantifies three things:

* **Detection rate** — flip single bits of a populated journal
  (exhaustive when the journal is small, a seeded 8 192-position sample
  otherwise) and run the scanner; count the flips that surface as
  damage (a quarantined record, a torn tail, or a record that no longer
  replays).  Every record is CRC-16 framed, so the acceptance criterion
  pins the rate at exactly 100%: no single-bit flip may install
  silently.
* **Recovery success across crash points** — a seeded sweep truncates
  the journal after every write-prefix length drawn from a seeded grid
  (a crash can stop a write wherever it likes), plus torn-write and
  lost-fsync faults injected through the seeded
  :class:`~repro.store.FaultyFilesystem` shim.  Every crash point must
  recover to an internally consistent catalog, and the recovered active
  scheme must route **bit-exact**: the same path as the pristine scheme
  for every sampled pair.  Acceptance: 100% recovery success.
* **Journal vs snapshot** — bytes on disk and recovery time for the
  same catalog held as a replayed journal vs a compacted snapshot,
  quantifying what compaction buys on the recovery path.

The run writes ``BENCH_store.json`` (schema v2) with the rates, the
crash-point sweep, and the journal/snapshot accounting, for CI to
validate and archive.

Run ``python benchmarks/bench_store_recovery.py --smoke`` for a quick
self-checking pass; ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme, route_message
from repro.core.persistence import pack_scheme, restore_scheme
from repro.errors import StoreError
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    BenchMetric,
    BenchResult,
    BetterDirection,
    RunManifest,
    write_bench_result,
)
from repro.observability.registry import MetricsRegistry
from repro.store import (
    JOURNAL_NAME,
    FaultyFilesystem,
    MemoryFilesystem,
    RecoveryManager,
    SchemeStore,
    SimulatedCrash,
    StoreFault,
    StoreFaultKind,
    scan_journal,
)

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)

N = 32
PUTS = 4
CRASH_POINTS = 64
DETECTION_FLIPS = 8192
FAULT_SEEDS = 24
ROUTE_PAIRS = 40
SMOKE_N = 16
SMOKE_PUTS = 2
SMOKE_CRASH_POINTS = 12
SMOKE_FAULT_SEEDS = 6

# The acceptance criteria: CRC framing catches every single-bit flip,
# and every crash point recovers to a consistent, bit-exact catalog.
DETECTION_FLOOR = 1.0
RECOVERY_FLOOR = 1.0

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_store.json"
)


def _build_schemes(n, puts):
    """``puts`` distinct full-table schemes over G(n, 1/2) graphs."""
    schemes = []
    for seed in range(puts):
        graph = gnp_random_graph(n, seed=100 + seed)
        schemes.append((graph, build_scheme("full-table", graph, II_ALPHA)))
    return schemes


def _populate(fs, schemes):
    """A store holding every scheme, latest generation active."""
    store = SchemeStore.open(
        fs, registry=MetricsRegistry(), snapshot_every=1000
    )
    for index, (_, scheme) in enumerate(schemes):
        store.hot_swap("ft", pack_scheme(scheme), manifest={"seed": index})
    return store


def _routes_bit_exact(blob, graph, scheme, pairs):
    """The recovered blob routes the same path as the pristine scheme."""
    restored = restore_scheme(blob, graph, II_ALPHA)
    for source, destination in pairs:
        if (
            route_message(restored, source, destination).path
            != route_message(scheme, source, destination).path
        ):
            return False
    return True


def _detection_sweep(journal, max_flips=DETECTION_FLIPS):
    """Flip single journal bits; count the flips surfacing as damage.

    Exhaustive over every bit when the journal is small enough,
    otherwise a seeded sample of ``max_flips`` distinct positions —
    each scan is O(journal), so the exhaustive product is quadratic.
    """
    baseline = scan_journal(journal)
    total_bits = 8 * len(journal)
    if total_bits <= max_flips:
        positions = range(total_bits)
        mode = "exhaustive"
    else:
        positions = random.Random(29).sample(range(total_bits), max_flips)
        mode = "sampled"
    attempts = 0
    detected = 0
    for position in positions:
        mutated = bytearray(journal)
        mutated[position // 8] ^= 1 << (7 - position % 8)
        scan = scan_journal(bytes(mutated))
        attempts += 1
        damage_surfaced = (
            scan.quarantined
            or scan.torn_tail_bytes
            or len(scan.records) < len(baseline.records)
        )
        if damage_surfaced:
            detected += 1
    return attempts, detected, mode


def _crash_point_sweep(journal, schemes, pairs, crash_points):
    """Truncate the journal on a seeded grid of byte prefixes; recover."""
    rng = random.Random(17)
    cuts = sorted(
        {rng.randrange(len(journal) + 1) for _ in range(crash_points)}
        | {0, len(journal)}
    )
    successes = 0
    durations = []
    for cut in cuts:
        fs = MemoryFilesystem()
        fs.replace(JOURNAL_NAME, journal[:cut])
        started = time.perf_counter()
        catalog, report = RecoveryManager(
            fs, registry=MetricsRegistry()
        ).recover()
        durations.append(time.perf_counter() - started)
        ok = catalog.is_consistent()
        # Every surviving generation must route bit-exact against the
        # scheme that produced it (generation k came from schemes[k-1]).
        for generation in catalog.generations("ft") if ok else []:
            graph, scheme = schemes[generation - 1]
            entry = catalog.get("ft", generation)
            if not _routes_bit_exact(entry.blob, graph, scheme, pairs):
                ok = False
                break
        successes += bool(ok)
    return {
        "crash_points": len(cuts),
        "successes": successes,
        "rate": successes / len(cuts),
        "mean_recovery_s": sum(durations) / len(durations),
        "max_recovery_s": max(durations),
    }


def _fault_injection_sweep(schemes, pairs, fault_seeds):
    """Seeded torn-write / lost-fsync faults through the live store."""
    outcomes = {"injected": 0, "recovered": 0}
    for seed in range(fault_seeds):
        rng = random.Random(1000 + seed)
        inner = MemoryFilesystem()
        kind = (
            StoreFaultKind.TORN_WRITE
            if seed % 2 == 0
            else StoreFaultKind.LOST_FSYNC
        )
        fault = StoreFault(
            kind=kind,
            op_index=rng.randrange(len(schemes)),
            fraction=rng.random() * 0.9,
        )
        faulty = FaultyFilesystem(inner, [fault])
        store = SchemeStore.open(
            faulty, registry=MetricsRegistry(), snapshot_every=1000
        )
        survived = 0
        try:
            for index, (_, scheme) in enumerate(schemes):
                store.put("ft", pack_scheme(scheme), manifest={"seed": index})
                survived = index + 1
        except (SimulatedCrash, StoreError):
            pass
        inner.crash()  # power loss: only synced bytes survive
        outcomes["injected"] += 1
        recovered = SchemeStore.open(inner, registry=MetricsRegistry())
        ok = recovered.catalog.is_consistent()
        generations = (
            recovered.catalog.generations("ft")
            if "ft" in recovered.catalog.names()
            else []
        )
        # A lost fsync may legitimately lose the unsynced tail; what it
        # must never do is serve a damaged blob as if it were good.
        for generation in generations if ok else []:
            graph, scheme = schemes[generation - 1]
            entry = recovered.catalog.get("ft", generation)
            if not _routes_bit_exact(entry.blob, graph, scheme, pairs):
                ok = False
                break
        if ok and len(generations) <= survived:
            outcomes["recovered"] += 1
    outcomes["rate"] = outcomes["recovered"] / outcomes["injected"]
    return outcomes


def _journal_vs_snapshot(fs, store):
    """Disk bytes and recovery time, journal-replay vs compacted."""
    journal_bytes = len(fs.read(JOURNAL_NAME))
    started = time.perf_counter()
    RecoveryManager(fs, registry=MetricsRegistry()).recover()
    journal_recovery_s = time.perf_counter() - started

    target = store.compact()
    snapshot_bytes = len(fs.read(target))
    started = time.perf_counter()
    _, report = RecoveryManager(fs, registry=MetricsRegistry()).recover()
    snapshot_recovery_s = time.perf_counter() - started
    assert report.source == "snapshot"
    return {
        "journal_bytes": journal_bytes,
        "snapshot_bytes": snapshot_bytes,
        "journal_bits": 8 * journal_bytes,
        "snapshot_bits": 8 * snapshot_bytes,
        "journal_recovery_s": journal_recovery_s,
        "snapshot_recovery_s": snapshot_recovery_s,
    }


def measure(n=N, puts=PUTS, crash_points=CRASH_POINTS,
            fault_seeds=FAULT_SEEDS):
    """Detection, the crash-point sweep, and the snapshot accounting."""
    schemes = _build_schemes(n, puts)
    fs = MemoryFilesystem()
    store = _populate(fs, schemes)
    journal = fs.read(JOURNAL_NAME)
    pair_rng = random.Random(3)
    nodes = list(schemes[0][0].nodes)
    pairs = [tuple(pair_rng.sample(nodes, 2)) for _ in range(ROUTE_PAIRS)]

    attempts, detected, mode = _detection_sweep(journal)
    crash_sweep = _crash_point_sweep(journal, schemes, pairs, crash_points)
    faults = _fault_injection_sweep(schemes, pairs, fault_seeds)
    disk = _journal_vs_snapshot(fs, store)
    return {
        "workload": {
            "n": n,
            "puts": puts,
            "scheme": "full-table",
            "crash_points": crash_sweep["crash_points"],
            "fault_seeds": fault_seeds,
            "route_pairs": ROUTE_PAIRS,
            "journal_bytes": len(journal),
        },
        "detection": {
            "attempts": attempts,
            "detected": detected,
            "mode": mode,
            "rate": detected / attempts if attempts else 0.0,
        },
        "crash_sweep": crash_sweep,
        "fault_injection": faults,
        "disk": disk,
    }


def check(result) -> None:
    """The acceptance assertions over one measurement."""
    detection = result["detection"]
    assert detection["rate"] >= DETECTION_FLOOR, (
        f"only {detection['detected']}/{detection['attempts']} single-bit "
        "journal flips surfaced as damage"
    )
    crash = result["crash_sweep"]
    assert crash["rate"] >= RECOVERY_FLOOR, (
        f"only {crash['successes']}/{crash['crash_points']} crash points "
        "recovered to a consistent, bit-exact catalog"
    )
    faults = result["fault_injection"]
    assert faults["rate"] >= RECOVERY_FLOOR, (
        f"only {faults['recovered']}/{faults['injected']} injected "
        "torn-write/lost-fsync runs recovered cleanly"
    )
    disk = result["disk"]
    # Both layouts must hold the full catalog; sizes are reported, not
    # gated — a snapshot only wins once the journal accumulates
    # superseded records, not on a freshly-compacted history.
    assert disk["journal_bytes"] > 0 and disk["snapshot_bytes"] > 0


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:store_recovery",
        seed=17,
        scheme=workload["scheme"],
        n=workload["n"],
        params=workload,
    )
    higher = BetterDirection.HIGHER
    metrics = {
        # Both rates are exhaustive/seeded enumerations over CRC-framed
        # records, so they gate with zero slack.
        "detection_rate": BenchMetric(
            result["detection"]["rate"], higher, tolerance=0.0
        ),
        "crash_recovery_rate": BenchMetric(
            result["crash_sweep"]["rate"], higher, tolerance=0.0
        ),
        "fault_recovery_rate": BenchMetric(
            result["fault_injection"]["rate"], higher, tolerance=0.0
        ),
        "mean_recovery_s": BenchMetric(result["crash_sweep"]["mean_recovery_s"]),
        "journal_bits": BenchMetric(result["disk"]["journal_bits"]),
        "snapshot_bits": BenchMetric(result["disk"]["snapshot_bits"]),
    }
    return BenchResult(
        bench="store_recovery",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    workload = result["workload"]
    detection = result["detection"]
    crash = result["crash_sweep"]
    faults = result["fault_injection"]
    disk = result["disk"]
    return "\n".join([
        f"Durable store on G({workload['n']}, 1/2) full-table schemes, "
        f"{workload['puts']} generations journaled "
        f"({workload['journal_bytes']} bytes)",
        "",
        f"  single-bit-flip detection ({detection['mode']} over the "
        "journal's bits):",
        f"    {detection['rate']:7.2%} "
        f"({detection['detected']}/{detection['attempts']})",
        "",
        f"  crash-point sweep ({crash['crash_points']} seeded journal "
        "prefixes):",
        f"    {crash['rate']:7.2%} recovered consistent + routing "
        f"bit-exact ({crash['successes']}/{crash['crash_points']}), "
        f"mean recovery {1e3 * crash['mean_recovery_s']:.2f} ms",
        "",
        f"  live fault injection ({faults['injected']} seeded "
        "torn-write/lost-fsync runs):",
        f"    {faults['rate']:7.2%} recovered "
        f"({faults['recovered']}/{faults['injected']})",
        "",
        "  journal vs snapshot for the same catalog:",
        f"    journal  {disk['journal_bytes']:7d} bytes, "
        f"recovery {1e3 * disk['journal_recovery_s']:.2f} ms",
        f"    snapshot {disk['snapshot_bytes']:7d} bytes, "
        f"recovery {1e3 * disk['snapshot_recovery_s']:.2f} ms",
    ])


def test_store_recovery(benchmark, write_result):
    result = benchmark.pedantic(
        measure, rounds=1, iterations=1,
        kwargs={"n": SMOKE_N, "puts": SMOKE_PUTS,
                "crash_points": SMOKE_CRASH_POINTS,
                "fault_seeds": SMOKE_FAULT_SEEDS},
    )
    write_result("store_recovery", _format(result))
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    started = time.perf_counter()
    result = measure(
        n=SMOKE_N if smoke else N,
        puts=SMOKE_PUTS if smoke else PUTS,
        crash_points=SMOKE_CRASH_POINTS if smoke else CRASH_POINTS,
        fault_seeds=SMOKE_FAULT_SEEDS if smoke else FAULT_SEEDS,
    )
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\nresults written to {output}")
    check(result)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
