"""Experiment T1-UB-IIγ — Theorem 2: O(n log² n) bits with rich labels.

Reproduces the ``avg-upper`` II × γ cell of Table 1: when nodes may be
arbitrarily relabelled (and label bits are charged), shortest-path routing
costs Θ(n log² n) in total — label bits dominate, routing functions are one
bit.
"""

from __future__ import annotations

import math

from repro.analysis import best_law, fit_power_law, mean_total_bits, run_size_sweep
from repro.core import NeighborLabelScheme
from repro.graphs import gnp_random_graph

NS = (64, 96, 128, 192, 256, 384)
SEEDS = (0, 1, 2)


def _measure(ii_gamma):
    return run_size_sweep(
        "thm2-neighbor-labels", ii_gamma, ns=NS, seeds=SEEDS, verify_pairs=200
    )


def test_thm2_total_size_is_n_polylog(benchmark, ii_gamma, write_result):
    points = benchmark.pedantic(_measure, args=(ii_gamma,), rounds=1, iterations=1)
    means = mean_total_bits(points)
    fits = best_law(
        list(means), list(means.values()),
        candidates=["n", "n log n", "n log^2 n", "n^2"],
    )
    power = fit_power_law(list(means), list(means.values()))
    lines = ["Theorem 2 (neighbour labels), model II ∧ γ, G(n, 1/2), 3 seeds", ""]
    for n, mean in means.items():
        lines.append(
            f"  n={n:4d}  mean total bits = {mean:10.0f}  "
            f"T/(n log² n) = {mean / (n * math.log2(n) ** 2):.3f}"
        )
    routing_bits = sum(p.routing_bits for p in points if p.n == NS[-1]) / len(SEEDS)
    lines += [
        "",
        f"  best-fit law  : {fits[0].law} (constant {fits[0].constant:.2f}, "
        f"rel-RMS {fits[0].relative_rms_error:.3f})",
        f"  power-law fit : n^{power.exponent:.3f}",
        f"  routing bits at n={NS[-1]}: {routing_bits:.0f} (one bit per node — O(1))",
        "  paper row: average case upper bound, II with γ — O(n log² n)",
    ]
    write_result("thm2_neighbor_labels", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    # log n vs log² n are hard to separate over one decade of n; the O-claim
    # is the bound itself plus decisively sub-quadratic growth.
    assert fits[0].law in ("n log n", "n log^2 n")
    assert power.exponent < 1.5  # decisively sub-quadratic
    for n, mean in means.items():
        assert mean <= 2.0 * n * math.log2(n) ** 2  # the O(n log² n) budget
    assert routing_bits == NS[-1]
    assert all(p.verified_max_stretch <= 1.0 for p in points)


def test_thm2_build_speed(benchmark, ii_gamma):
    graph = gnp_random_graph(128, seed=7)
    benchmark(NeighborLabelScheme, graph, ii_gamma)
