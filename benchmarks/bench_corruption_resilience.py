"""Experiment CORRUPTION — integrity framing vs table corruption.

A routing table is just bits in a node's memory, and bits rot.  This
bench quantifies what the charged CRC/parity framing layer
(:mod:`repro.integrity`) buys when packed routing functions are mutated:

* **Detection rate** — for every framing policy, flip each single bit of
  every node's framed encoding and attempt a decode; count how many
  mutations are caught (``IntegrityError`` or a structural decode
  failure).  CRC-8/CRC-16 detect *all* single-bit flips by construction
  (their generator polynomials have more than one term), parity likewise
  detects every odd-weight error; the acceptance criterion pins the
  framed detection rate at >= 99%.  The unframed baseline is reported to
  show the gap integrity framing closes.
* **End-to-end resilience** — the event engine runs the same workload
  while a seeded :func:`~repro.simulator.chaos.table_corruption`
  schedule damages tables mid-run, sweeping corruption intensity per
  policy.  With framing, damage is detected at decode time, the node is
  quarantined, retries bounce around it, and the self-healer rebuilds
  the table after the repair delay; without framing, surviving mutations
  silently misroute.
* **Charged overhead** — the framed space reports carry the framing cost
  as an explicit additive ``integrity_bits`` line, asserted to equal
  exactly ``n * policy.overhead_bits``.

The run writes ``BENCH_corruption.json`` with the detection rates, the
sweep, and the overhead accounting, for CI to validate and archive.

Run ``python benchmarks/bench_corruption_resilience.py --smoke`` for a
quick self-checking pass; ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme
from repro.errors import IntegrityError, ReproError
from repro.graphs import gnp_random_graph
from repro.integrity import FramingPolicy, IntegrityWrapper
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    BenchMetric,
    BenchResult,
    BetterDirection,
    RunManifest,
    write_bench_result,
)
from repro.simulator import (
    EventDrivenSimulator,
    MutationKind,
    RetryPolicy,
    TableMutation,
    summarize,
    table_corruption,
    uniform_pairs,
)

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)

N = 40
MESSAGES = 250
HORIZON = 60.0
CORRUPTION_LEVELS = (0, 4, 10, 16)
REPAIR_DELAY = 8.0
SMOKE_N = 24
SMOKE_MESSAGES = 120
SMOKE_CORRUPTION_LEVELS = (0, 4, 8)

POLICIES = (
    FramingPolicy.NONE,
    FramingPolicy.PARITY,
    FramingPolicy.CRC8,
    FramingPolicy.CRC16,
)
# The acceptance criterion: framed single-bit-flip detection rate.
DETECTION_FLOOR = 0.99

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_corruption.json"
)


def _wrap(scheme, policy):
    if policy is FramingPolicy.NONE:
        return scheme
    return IntegrityWrapper(scheme, policy)


def _detection_rate(scheme, policy, graph):
    """Exhaustively flip every single bit of every node's framed table."""
    wrapped = _wrap(scheme, policy)
    attempts = 0
    detected = 0
    for u in graph.nodes:
        framed = wrapped.encode_function(u)
        for position in range(len(framed)):
            mutated = TableMutation(
                MutationKind.BIT_FLIP, offsets=(position,)
            ).apply(framed)
            attempts += 1
            try:
                wrapped.decode_function(u, mutated)
            except (IntegrityError, ReproError, KeyError, IndexError,
                    TypeError, ValueError):
                detected += 1
    return attempts, detected


def _run_sweep_cell(scheme, graph, schedule, pairs, times):
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=4, base_delay=1.0),
        retry_seed=11,
        repair_delay=REPAIR_DELAY,
    )
    for (source, destination), at_time in zip(pairs, times):
        sim.inject(source, destination, at_time)
    metrics = summarize(sim.run(), graph)
    return metrics, sim.network.corruption_summary()


def measure(n=N, messages=MESSAGES, levels=CORRUPTION_LEVELS):
    """Detection rates, the corruption sweep, and the overhead accounting."""
    graph = gnp_random_graph(n, seed=83)
    base = build_scheme("full-table", graph, II_ALPHA)
    pairs = uniform_pairs(graph, messages, seed=1)
    clock = random.Random(5)
    times = [clock.uniform(0.0, HORIZON * 0.8) for _ in pairs]

    detection = {}
    overhead = {}
    for policy in POLICIES:
        attempts, detected = _detection_rate(base, policy, graph)
        detection[policy.value] = {
            "attempts": attempts,
            "detected": detected,
            "rate": detected / attempts if attempts else 0.0,
        }
        report = _wrap(base, policy).space_report()
        overhead[policy.value] = {
            "integrity_bits": report.integrity_bits,
            "expected": graph.n * policy.overhead_bits,
            "total_bits": report.total_bits,
        }

    sweep = []
    for level in levels:
        schedule = (
            table_corruption(
                graph, level, horizon=HORIZON, seed=level + 1,
                kinds=(MutationKind.BIT_FLIP, MutationKind.BURST,
                       MutationKind.TRUNCATE),
            )
            if level
            else table_corruption(graph, 0, horizon=HORIZON)
        )
        row = {}
        for policy in POLICIES:
            metrics, lifecycle = _run_sweep_cell(
                _wrap(base, policy), graph, schedule, pairs, times
            )
            row[policy.value] = {
                "delivered_fraction": metrics.delivered_fraction,
                "mean_retries": metrics.mean_retries,
                **lifecycle,
            }
        sweep.append({"corrupted_tables": level, "by_policy": row})
    return {
        "workload": {
            "n": n,
            "messages": messages,
            "horizon": HORIZON,
            "repair_delay": REPAIR_DELAY,
            "scheme": "full-table",
            "corruption_levels": list(levels),
        },
        "detection": detection,
        "overhead": overhead,
        "sweep": sweep,
    }


def check(result) -> None:
    """The acceptance assertions over one measurement."""
    for policy in POLICIES:
        if policy is FramingPolicy.NONE:
            continue
        rate = result["detection"][policy.value]["rate"]
        assert rate >= DETECTION_FLOOR, (
            f"{policy.value} detected only {rate:.2%} of single-bit flips"
        )
        cell = result["overhead"][policy.value]
        assert cell["integrity_bits"] == cell["expected"], (
            f"{policy.value} charged {cell['integrity_bits']} integrity "
            f"bits, expected {cell['expected']}"
        )
    assert result["overhead"][FramingPolicy.NONE.value]["integrity_bits"] == 0
    for row in result["sweep"]:
        unframed = row["by_policy"][FramingPolicy.NONE.value]
        for policy in POLICIES:
            cell = row["by_policy"][policy.value]
            # Every scheduled corruption is accounted for: detected,
            # undetected, or never exercised before the run drained.
            assert cell["detected"] + cell["undetected"] <= cell["injected"]
            if policy in (FramingPolicy.CRC8, FramingPolicy.CRC16):
                # A CRC never lets a garbage function install silently:
                # its polynomial catches all flips/bursts <= its width.
                assert cell["undetected"] == 0
            elif policy is FramingPolicy.PARITY:
                # One parity bit misses even-weight damage (e.g. an
                # 8-bit burst) but can never do worse than no framing.
                assert cell["undetected"] <= unframed["undetected"]


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:corruption_resilience",
        seed=83,
        scheme=workload["scheme"],
        n=workload["n"],
        params=workload,
        graph=gnp_random_graph(workload["n"], seed=83),
    )
    higher = BetterDirection.HIGHER
    # Detection rates are exhaustive enumerations over deterministic
    # tables, so they gate with zero slack; end-to-end delivery under
    # the heaviest corruption level gets a little room for behavioural
    # drift in the seeded schedules.
    metrics = {
        "detection_rate_parity": BenchMetric(
            result["detection"][FramingPolicy.PARITY.value]["rate"],
            higher, tolerance=0.0,
        ),
        "detection_rate_crc8": BenchMetric(
            result["detection"][FramingPolicy.CRC8.value]["rate"],
            higher, tolerance=0.0,
        ),
        "detection_rate_crc16": BenchMetric(
            result["detection"][FramingPolicy.CRC16.value]["rate"],
            higher, tolerance=0.0,
        ),
        "detection_rate_unframed": BenchMetric(
            result["detection"][FramingPolicy.NONE.value]["rate"]
        ),
        "delivered_fraction_crc16_worst": BenchMetric(
            result["sweep"][-1]["by_policy"][FramingPolicy.CRC16.value][
                "delivered_fraction"
            ],
            higher, tolerance=0.05,
        ),
    }
    return BenchResult(
        bench="corruption_resilience",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    workload = result["workload"]
    lines = [
        f"Table corruption on G({workload['n']}, 1/2), "
        f"{workload['messages']} messages over {workload['horizon']:g} "
        f"time units, self-heal after {workload['repair_delay']:g}",
        "",
        "  single-bit-flip detection (exhaustive over every table bit):",
    ]
    for policy in POLICIES:
        cell = result["detection"][policy.value]
        bits = result["overhead"][policy.value]["integrity_bits"]
        lines.append(
            f"    {policy.value:>6s}: {cell['rate']:7.2%} "
            f"({cell['detected']}/{cell['attempts']}), "
            f"{bits} integrity bits charged"
        )
    lines += ["", "  delivery under corruption churn (with retry + self-heal):"]
    names = [policy.value for policy in POLICIES]
    lines.append(
        "    corrupted tables   " + "   ".join(f"{nm:>8s}" for nm in names)
    )
    for row in result["sweep"]:
        cells = "   ".join(
            f"{row['by_policy'][nm]['delivered_fraction']:8.3f}"
            for nm in names
        )
        lines.append(f"    {row['corrupted_tables']:16d}   {cells}")
    undetected = sum(
        row["by_policy"][FramingPolicy.NONE.value]["undetected"]
        for row in result["sweep"]
    )
    leaked = sum(
        row["by_policy"][FramingPolicy.PARITY.value]["undetected"]
        for row in result["sweep"]
    )
    lines += [
        "",
        f"  unframed runs installed {undetected} silently corrupted",
        f"  functions across the sweep (parity still missed {leaked}:",
        "  even-weight bursts are invisible to one parity bit); the CRC",
        "  policies detected every exercised corruption, quarantined the",
        "  node, and the self-healer rebuilt its table.",
    ]
    return "\n".join(lines)


def test_corruption_resilience(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("corruption_resilience", _format(result))
    write_bench_result(_bench_result(result), DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    levels = SMOKE_CORRUPTION_LEVELS if smoke else CORRUPTION_LEVELS
    started = time.perf_counter()
    result = measure(n, messages, levels)
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\nresults written to {output}")
    check(result)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
