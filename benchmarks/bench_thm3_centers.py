"""Experiment T1-S1.5 — Theorem 3: stretch 1.5 in O(n log n) total bits.

The first point of the space/stretch trade-off (Corollary 1.3): allowing
stretch 1.5 — the only possible value strictly between 1 and 2 on
diameter-2 graphs — drops the average-case total from Θ(n²) to O(n log n).
"""

from __future__ import annotations

import math

from repro.analysis import best_law, fit_power_law, mean_total_bits, run_size_sweep
from repro.core import CenterScheme
from repro.graphs import gnp_random_graph

NS = (64, 96, 128, 192, 256, 384)
SEEDS = (0, 1, 2)


def _measure(ii_alpha):
    return run_size_sweep(
        "thm3-centers", ii_alpha, ns=NS, seeds=SEEDS, verify_pairs=300
    )


def test_thm3_size_and_stretch(benchmark, ii_alpha, write_result):
    points = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    means = mean_total_bits(points)
    fits = best_law(
        list(means), list(means.values()),
        candidates=["n", "n log log n", "n log n", "n log^2 n", "n^2"],
    )
    power = fit_power_law(list(means), list(means.values()))
    worst_stretch = max(p.verified_max_stretch for p in points)
    lines = ["Theorem 3 (routing centres), model II, G(n, 1/2), 3 seeds", ""]
    for n, mean in means.items():
        lines.append(
            f"  n={n:4d}  mean total bits = {mean:9.0f}  "
            f"T/(n log n) = {mean / (n * math.log2(n)):.2f}"
        )
    lines += [
        "",
        f"  best-fit law  : {fits[0].law} (constant {fits[0].constant:.2f})",
        f"  power-law fit : n^{power.exponent:.3f}",
        f"  verified max stretch : {worst_stretch} (paper: 1.5)",
        "  paper constant: < (6c+20) n log n = 38 n log n with c = 3",
        "  paper row: Corollary 1.3 — O(n log n) for 1 < s < 2 in model II",
    ]
    write_result("thm3_centers", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law in ("n log n", "n log^2 n")  # n log n up to small-n noise
    assert power.exponent < 1.5
    assert worst_stretch <= 1.5
    for n, mean in means.items():
        assert mean <= 38 * n * math.log2(n)


def test_thm3_build_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(128, seed=7)
    benchmark(CenterScheme, graph, ii_alpha)
