"""Shared infrastructure for the reproduction benches.

Every bench (a) times the operation under ``pytest-benchmark`` and
(b) measures the paper's quantity (bits, stretch, recovered structure),
asserts the claimed *shape*, and appends a human-readable block to
``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md can quote it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.models import Knowledge, Labeling, RoutingModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write (overwrite) one bench's result block and echo it."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n[{name}]\n{text}")

    return _write


@pytest.fixture(scope="session")
def ii_alpha():
    return RoutingModel(Knowledge.II, Labeling.ALPHA)


@pytest.fixture(scope="session")
def ii_gamma():
    return RoutingModel(Knowledge.II, Labeling.GAMMA)


@pytest.fixture(scope="session")
def ii_beta():
    return RoutingModel(Knowledge.II, Labeling.BETA)


@pytest.fixture(scope="session")
def ib_alpha():
    return RoutingModel(Knowledge.IB, Labeling.ALPHA)


@pytest.fixture(scope="session")
def ia_alpha():
    return RoutingModel(Knowledge.IA, Labeling.ALPHA)
