"""Experiment T1-S2 — Theorem 4: stretch 2 in n log log n + 6n total bits."""

from __future__ import annotations

import math

from repro.analysis import best_law, mean_total_bits, run_size_sweep
from repro.core import HubScheme
from repro.graphs import gnp_random_graph

NS = (64, 96, 128, 192, 256, 384)
SEEDS = (0, 1, 2)


def _measure(ii_alpha):
    return run_size_sweep(
        "thm4-hub", ii_alpha, ns=NS, seeds=SEEDS, verify_pairs=300
    )


def test_thm4_size_and_stretch(benchmark, ii_alpha, write_result):
    points = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    means = mean_total_bits(points)
    fits = best_law(
        list(means), list(means.values()),
        candidates=["n", "n log log n", "n log n", "n^2"],
    )
    worst_stretch = max(p.verified_max_stretch for p in points)
    lines = ["Theorem 4 (hub scheme), model II, G(n, 1/2), 3 seeds", ""]
    for n, mean in means.items():
        loglog = math.log2(math.log2(n))
        lines.append(
            f"  n={n:4d}  mean total bits = {mean:8.0f}  "
            f"T/(n loglog n) = {mean / (n * loglog):.2f}  "
            f"budget n·loglog n + 6n = {n * loglog + 6 * n:.0f}"
        )
    lines += [
        "",
        f"  best-fit law : {fits[0].law} (constant {fits[0].constant:.2f})",
        f"  verified max stretch : {worst_stretch} (paper: 2)",
        "  paper row: Corollary 1.4 — O(n log log n) for s = 2 in model II",
    ]
    write_result("thm4_hub", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law in ("n log log n", "n")
    assert worst_stretch <= 2.0
    for n, mean in means.items():
        # gamma codes double the loglog term; 6n covers hub + slack.
        assert mean <= n * 2 * math.log2(math.log2(n)) + 6 * n + n


def test_thm4_build_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(128, seed=7)
    benchmark(HubScheme, graph, ii_alpha)
