"""Experiment TABLE1 — the whole of Table 1, measured.

Assembles every cell this reproduction measures into the paper's own
layout: worst-case lower bounds (Theorems 8/9), average-case upper bounds
(Theorems 1/2 and the IA full-table baseline), and average-case lower
bounds (Theorems 6/7/8 ledgers).  The rendered grid is the repository's
headline artefact (quoted in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random

from repro.analysis import (
    Table1Entry,
    best_law,
    format_table1,
    mean_total_bits,
    run_size_sweep,
)
from repro.core import FullTableScheme
from repro.graphs import PortAssignment, gnp_random_graph
from repro.lowerbounds import (
    ExplicitLowerBoundScheme,
    run_theorem8_experiment,
    theorem7_ledger,
)
from repro.models import Knowledge, Labeling, RoutingModel

NS = (64, 96, 128, 192)
SEEDS = (0, 1)


def _fit(scheme_name, model, candidates, verify_pairs=150):
    points = run_size_sweep(
        scheme_name, model, ns=NS, seeds=SEEDS, verify_pairs=verify_pairs
    )
    means = mean_total_bits(points)
    fits = best_law(list(means), list(means.values()), candidates=candidates)
    return fits[0]


def _measure(ia_alpha, ib_alpha, ii_alpha, ii_gamma):
    entries = []

    # -- average case, upper bounds ----------------------------------------
    fit = _fit("full-table", ia_alpha, ["n^2", "n^2 log n", "n^3"])
    entries.append(Table1Entry(
        "avg-upper", Knowledge.IA, Labeling.ALPHA,
        "O(n² log n)", f"{fit.constant:.2f}·{fit.law} (measured)",
    ))
    fit = _fit("thm1-two-level", ib_alpha, ["n", "n log n", "n^2", "n^2 log n"])
    entries.append(Table1Entry(
        "avg-upper", Knowledge.IB, Labeling.ALPHA,
        "O(n²)", f"{fit.constant:.2f}·{fit.law} (measured)",
    ))
    fit = _fit("thm1-two-level", ii_alpha, ["n", "n log n", "n^2", "n^2 log n"])
    entries.append(Table1Entry(
        "avg-upper", Knowledge.II, Labeling.ALPHA,
        "O(n²)", f"{fit.constant:.2f}·{fit.law} (measured)",
    ))
    fit = _fit("thm2-neighbor-labels", ii_gamma,
               ["n", "n log n", "n log^2 n", "n^2"])
    entries.append(Table1Entry(
        "avg-upper", Knowledge.II, Labeling.GAMMA,
        "O(n log² n)", f"{fit.constant:.2f}·{fit.law} (measured)",
    ))

    # -- average case, lower bounds ----------------------------------------
    thm8_totals = {}
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 61)
        thm8_totals[n] = run_theorem8_experiment(
            graph, ia_alpha, seed=n
        ).total_permutation_bits
    fit8 = best_law(list(thm8_totals), list(thm8_totals.values()),
                    candidates=["n^2", "n^2 log n"])[0]
    entries.append(Table1Entry(
        "avg-lower", Knowledge.IA, Labeling.ALPHA,
        "Ω(n² log n)", f"{fit8.constant:.2f}·{fit8.law} forced (measured)",
    ))

    thm7_totals = {}
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 67)
        ports = PortAssignment.shuffled(graph, random.Random(n))
        scheme = FullTableScheme(graph, ia_alpha, ports=ports)
        thm7_totals[n] = sum(
            theorem7_ledger(scheme, u).implied_function_bound
            for u in graph.nodes
        )
    fit7 = best_law(list(thm7_totals), list(thm7_totals.values()),
                    candidates=["n log n", "n^2"])[0]
    entries.append(Table1Entry(
        "avg-lower", Knowledge.IB, Labeling.GAMMA,
        "Ω(n²)", f"≥ {fit7.constant:.2f}·{fit7.law} implied (Claim 3)",
    ))
    entries.append(Table1Entry(
        "avg-lower", Knowledge.II, Labeling.ALPHA,
        "Ω(n²)", "≥ (n/2 − O(log n))·n via Thm 6 codec (measured)",
    ))

    # -- worst case, lower bounds -------------------------------------------
    thm9_totals = {}
    for k in (16, 24, 32, 48):
        scheme = ExplicitLowerBoundScheme.from_parameters(k, ii_alpha)
        thm9_totals[3 * k] = scheme.space_report().total_bits
    fit9 = best_law(list(thm9_totals), list(thm9_totals.values()),
                    candidates=["n^2", "n^2 log n"])[0]
    entries.append(Table1Entry(
        "worst-lower", Knowledge.II, Labeling.ALPHA,
        "Ω(n² log n)", f"{fit9.constant:.4f}·{fit9.law} on G_B (measured)",
    ))
    return entries


def test_table1_reproduction(benchmark, ia_alpha, ib_alpha, ii_alpha, ii_gamma,
                             write_result):
    entries = benchmark.pedantic(
        _measure, args=(ia_alpha, ib_alpha, ii_alpha, ii_gamma),
        rounds=1, iterations=1,
    )
    text = format_table1(entries)
    write_result("table1_summary", text)
    by_cell = {e.key: e for e in entries}
    # Upper bounds land on the paper's laws.
    assert "n^2" in by_cell[("avg-upper", Knowledge.II, Labeling.ALPHA)].measured
    assert "log" in by_cell[("avg-upper", Knowledge.II, Labeling.GAMMA)].measured
    # Lower bounds: adversarial/forced bits grow with the paper's laws.
    assert "n^2 log n" in by_cell[
        ("avg-lower", Knowledge.IA, Labeling.ALPHA)
    ].measured
    assert "n^2 log n" in by_cell[
        ("worst-lower", Knowledge.II, Labeling.ALPHA)
    ].measured
    assert len(entries) == 8
