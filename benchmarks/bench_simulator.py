"""Experiment SIM — simulator throughput and full-information resilience.

The paper defines full-information schemes so that "alternative, shortest,
paths [can] be taken whenever an outgoing link is down".  This bench fails
an increasing number of links and compares delivery rates of the
full-information scheme against the single-path Theorem 1 scheme, plus raw
routing throughput of the two execution engines.
"""

from __future__ import annotations

from repro.core import build_scheme
from repro.graphs import gnp_random_graph
from repro.simulator import (
    EventDrivenSimulator,
    Network,
    sample_link_failures,
    summarize,
)

N = 64
FAILURE_COUNTS = (0, 50, 100, 200, 400)


def _measure(ii_alpha):
    graph = gnp_random_graph(N, seed=83)
    pairs = [(u, w) for u in range(1, 17) for w in range(17, 65)]
    full_info = build_scheme("full-information", graph, ii_alpha)
    single = build_scheme("thm1-two-level", graph, ii_alpha)
    rows = []
    for count in FAILURE_COUNTS:
        failures = sample_link_failures(graph, count, seed=count)
        metrics_full = summarize(
            [Network(full_info, failures).route(u, w) for u, w in pairs], graph
        )
        metrics_single = summarize(
            [Network(single, failures).route(u, w) for u, w in pairs], graph
        )
        rows.append((count, metrics_full, metrics_single))
    return graph, rows


def test_full_information_resilience(benchmark, ii_alpha, write_result):
    graph, rows = benchmark.pedantic(
        _measure, args=(ii_alpha,), rounds=1, iterations=1
    )
    lines = [
        f"Failure resilience on G({N}, 1/2) ({graph.edge_count} links), "
        f"768 messages per point",
        "",
        "  failed links   delivered full-info   delivered single-path (Thm 1)",
    ]
    for count, metrics_full, metrics_single in rows:
        lines.append(
            f"  {count:12d}   {metrics_full.delivered_fraction:19.3f}   "
            f"{metrics_single.delivered_fraction:29.3f}"
        )
    lines += [
        "",
        "  full-information re-routes over alternative shortest edges and",
        "  dominates the single-path scheme at every failure level (§1).",
    ]
    write_result("simulator_resilience", "\n".join(lines))
    for count, metrics_full, metrics_single in rows:
        assert metrics_full.delivered_fraction >= metrics_single.delivered_fraction
        if count == 0:
            assert metrics_full.delivered_fraction == 1.0
        if metrics_full.delivered:
            assert metrics_full.max_stretch == 1.0  # still shortest paths


def test_walker_throughput(benchmark, ii_alpha):
    graph = gnp_random_graph(N, seed=83)
    network = Network(build_scheme("thm1-two-level", graph, ii_alpha))
    pairs = [(u, w) for u in range(1, 9) for w in range(33, 65)]
    benchmark(lambda: [network.route(u, w) for u, w in pairs])


def test_event_engine_throughput(benchmark, ii_alpha):
    graph = gnp_random_graph(N, seed=83)
    scheme = build_scheme("thm4-hub", graph, ii_alpha)

    def run():
        sim = EventDrivenSimulator(scheme)
        for i in range(100):
            sim.inject(1 + i % 32, 33 + i % 32, at_time=float(i) * 0.1)
        return sim.run()

    records = benchmark(run)
    assert all(r.delivered for r in records)
