"""Experiment BOOT — what table size costs at install time (extension).

Routing tables have to be shipped to their nodes before any message can be
routed.  This bench disseminates every scheme's serialised functions from a
coordinator over a BFS tree (store-and-forward, 10 kbit per time unit) and
tabulates control-plane traffic and boot makespan — turning Table 1's bit
counts into seconds.
"""

from __future__ import annotations

from repro.core import build_scheme
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import simulate_dissemination

N = 96
MENU = (
    ("full-information", Labeling.ALPHA),
    ("full-table", Labeling.ALPHA),
    ("thm1-two-level", Labeling.ALPHA),
    ("thm3-centers", Labeling.ALPHA),
    ("thm4-hub", Labeling.ALPHA),
    ("thm5-probe", Labeling.ALPHA),
)


def _measure():
    graph = gnp_random_graph(N, seed=19)
    results = []
    for name, labeling in MENU:
        model = RoutingModel(Knowledge.II, labeling)
        scheme = build_scheme(name, graph, model)
        results.append(simulate_dissemination(scheme))
    return results


def test_bootstrap_costs(benchmark, write_result):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        f"Bootstrap cost on G({N}, 1/2): BFS-tree dissemination at "
        f"10 kbit/tick",
        "",
        f"  {'scheme':18s} {'payload bits':>13s} {'bit-hops':>10s} "
        f"{'makespan':>9s} {'mean install':>13s}",
    ]
    for result in results:
        lines.append(
            f"  {result.scheme:18s} {result.total_payload_bits:>13d} "
            f"{result.total_bit_hops:>10d} {result.makespan:>9.2f} "
            f"{result.mean_install_time:>13.2f}"
        )
    lines += [
        "",
        "  the Θ(n³) scheme takes two orders of magnitude more control",
        "  traffic to install than Theorem 1; Theorems 4/5 boot instantly.",
    ]
    write_result("bootstrap", "\n".join(lines))
    by_name = {result.scheme: result for result in results}
    assert (
        by_name["full-information"].total_bit_hops
        > 10 * by_name["thm1-two-level"].total_bit_hops
    )
    assert (
        by_name["thm1-two-level"].makespan
        <= by_name["full-table"].makespan
    )
    assert by_name["thm5-probe"].makespan <= by_name["thm4-hub"].makespan + 1


def test_dissemination_speed(benchmark):
    graph = gnp_random_graph(N, seed=19)
    model = RoutingModel(Knowledge.II, Labeling.ALPHA)
    scheme = build_scheme("thm1-two-level", graph, model)
    benchmark(simulate_dissemination, scheme)
