"""Experiment CHURN — convergence under live topology mutations.

A routing table is correct only for the topology it was computed on.
This bench drives the event engine while a seeded
:func:`~repro.simulator.churn.random_churn` schedule rewires the graph
mid-run, and measures what the incremental-repair path buys:

* **Convergence correctness** — after the last mutation's repair
  finishes, *probe* messages injected post-convergence must behave as if
  the scheme had been built on the final topology from scratch: 100%
  delivered, zero stale-table hop decisions, zero routing loops, and
  stretch exactly 1.0 against the post-churn distance matrix.
* **Incremental vs full rebuild** — each churn rate runs twice, once
  with selective repair (only the tables the mutations dirtied are
  re-encoded) and once with the rebuild-everything control arm.  At low
  churn the incremental arm must rewrite *strictly* fewer bits; it may
  never rewrite more.
* **Convergence latency and staleness** — per-mutation convergence
  times and the count of deliveries that routed on not-yet-repaired
  tables (stale deliveries: still delivered, possibly detoured).

The run writes ``BENCH_churn.json`` with the sweep for CI to validate
and archive.

Run ``python benchmarks/bench_churn_convergence.py --smoke`` for a quick
self-checking pass; ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme
from repro.graphs import get_context, gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    BenchMetric,
    BenchResult,
    BetterDirection,
    RunManifest,
    write_bench_result,
)
from repro.simulator import (
    DropReason,
    EventDrivenSimulator,
    RetryPolicy,
    random_churn,
    summarize,
    uniform_pairs,
)

IA_ALPHA = RoutingModel(Knowledge.IA, Labeling.ALPHA)

N = 128
MESSAGES = 300
HORIZON = 60.0
CHURN_EVENTS = (2, 6, 12)
REPAIR_DELAY = 5.0
PROBES = 150
# Probes go in well after the last possible repair finished (instant
# installs: convergence lands at mutation time + REPAIR_DELAY).
PROBE_AT = HORIZON + 3 * REPAIR_DELAY
SMOKE_N = 32
SMOKE_MESSAGES = 120
SMOKE_CHURN_EVENTS = (2, 5)
SMOKE_PROBES = 60

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_churn.json"
)


def _run_cell(scheme, schedule, pairs, times, probes, probe_times,
              incremental):
    """One engine run; returns (pre-probe metrics, probe metrics, churn)."""
    sim = EventDrivenSimulator(
        scheme,
        retry_policy=RetryPolicy(max_attempts=4, base_delay=1.0),
        retry_seed=11,
        churn_schedule=schedule,
        churn_repair_delay=REPAIR_DELAY,
        incremental_repair=incremental,
    )
    for (source, destination), at_time in zip(pairs, times):
        sim.inject(source, destination, at_time)
    for (source, destination), at_time in zip(probes, probe_times):
        sim.inject(source, destination, at_time)
    records = sim.run()
    during = [r for r in records if r.injected_at < PROBE_AT]
    after = [r for r in records if r.injected_at >= PROBE_AT]
    final = sim.network.live_graph
    return summarize(during, final), summarize(after, final), sim.churn_summary()


def _loops(metrics) -> int:
    return metrics.drop_reasons.get(DropReason.ROUTING_LOOP, 0)


def _cell_dict(metrics, probe_metrics, churn) -> dict:
    times = churn["convergence_times"]
    return {
        "delivered_fraction": metrics.delivered_fraction,
        "stale_deliveries": metrics.stale_deliveries,
        "routing_loops": _loops(metrics),
        "probe_delivered_fraction": probe_metrics.delivered_fraction,
        "probe_stale_deliveries": probe_metrics.stale_deliveries,
        "probe_routing_loops": _loops(probe_metrics),
        "probe_max_stretch": probe_metrics.max_stretch,
        "converged": churn["converged"],
        "mean_convergence_time": (
            sum(times) / len(times) if times else 0.0
        ),
        "max_convergence_time": max(times) if times else 0.0,
        "mutations": churn["mutations"],
        "repairs": churn["repairs"],
        "tables_rebuilt": churn["tables_rebuilt"],
        "tables_reused": churn["tables_reused"],
        "bits_rewritten": churn["bits_rewritten"],
        "bits_full": churn["bits_full"],
    }


def measure(n=N, messages=MESSAGES, events_levels=CHURN_EVENTS,
            probes=PROBES):
    """Sweep churn rates; each rate runs incremental and full-rebuild."""
    graph = gnp_random_graph(n, seed=83)
    ctx = get_context(graph)
    scheme = build_scheme("full-table", graph, IA_ALPHA, ctx=ctx)
    pairs = uniform_pairs(graph, messages, seed=1)
    clock = random.Random(5)
    times = [clock.uniform(0.0, HORIZON * 0.8) for _ in pairs]

    sweep = []
    for events in events_levels:
        schedule = random_churn(
            graph, events, horizon=HORIZON, seed=events + 1
        )
        # Probe endpoints must be live in the final topology (a node
        # that left keeps its label but has no links).
        final = schedule.final_graph(graph)
        live = [u for u in final.nodes if final.degree(u) > 0]
        probe_rng = random.Random(13)
        probe_pairs = [tuple(probe_rng.sample(live, 2)) for _ in range(probes)]
        probe_times = [
            probe_rng.uniform(PROBE_AT, PROBE_AT + 10.0) for _ in probe_pairs
        ]
        row = {}
        for mode, incremental in (("incremental", True), ("full", False)):
            metrics, probe_metrics, churn = _run_cell(
                scheme, schedule, pairs, times, probe_pairs, probe_times,
                incremental,
            )
            row[mode] = _cell_dict(metrics, probe_metrics, churn)
        sweep.append({"churn_events": events, "by_mode": row})
    return {
        "workload": {
            "n": n,
            "messages": messages,
            "probes": probes,
            "horizon": HORIZON,
            "repair_delay": REPAIR_DELAY,
            "probe_at": PROBE_AT,
            "scheme": "full-table",
            "churn_events": list(events_levels),
        },
        "sweep": sweep,
    }


def check(result) -> None:
    """The acceptance assertions over one measurement."""
    lowest = min(row["churn_events"] for row in result["sweep"])
    for row in result["sweep"]:
        events = row["churn_events"]
        for mode, cell in row["by_mode"].items():
            tag = f"{events} events, {mode}"
            # Every repair converged before the run drained.
            assert cell["converged"], f"{tag}: did not converge"
            # Post-convergence traffic is indistinguishable from a
            # freshly built scheme on the final topology.
            assert cell["probe_delivered_fraction"] == 1.0, (
                f"{tag}: probes delivered only "
                f"{cell['probe_delivered_fraction']:.2%}"
            )
            assert cell["probe_stale_deliveries"] == 0, (
                f"{tag}: {cell['probe_stale_deliveries']} probes routed "
                f"on stale tables after convergence"
            )
            assert cell["probe_routing_loops"] == 0, (
                f"{tag}: {cell['probe_routing_loops']} probe routing loops"
            )
            assert cell["probe_max_stretch"] == 1.0, (
                f"{tag}: probe stretch {cell['probe_max_stretch']} on the "
                f"post-churn metric"
            )
        incremental = row["by_mode"]["incremental"]
        full = row["by_mode"]["full"]
        # The control arm rebuilds everything, every repair.
        assert full["tables_reused"] == 0
        assert full["bits_rewritten"] == full["bits_full"]
        # Selective repair never rewrites more than a full rebuild...
        assert incremental["bits_rewritten"] <= incremental["bits_full"], (
            f"{events} events: incremental rewrote "
            f"{incremental['bits_rewritten']} of "
            f"{incremental['bits_full']} full-rebuild bits"
        )
        # ...and at the lowest churn rate it is strictly cheaper.
        if events == lowest:
            assert incremental["bits_rewritten"] < incremental["bits_full"], (
                f"{events} events: incremental repair saved nothing "
                f"({incremental['bits_rewritten']} bits)"
            )
            assert incremental["tables_reused"] > 0


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:churn_convergence",
        seed=83,
        scheme=workload["scheme"],
        n=workload["n"],
        params=workload,
        graph=gnp_random_graph(workload["n"], seed=83),
    )
    lowest = min(result["sweep"], key=lambda row: row["churn_events"])
    incremental = lowest["by_mode"]["incremental"]
    probe_min = min(
        cell["probe_delivered_fraction"]
        for row in result["sweep"]
        for cell in row["by_mode"].values()
    )
    metrics = {
        # Post-convergence correctness is all-or-nothing: gate exactly.
        "probe_delivered_fraction_min": BenchMetric(
            probe_min, BetterDirection.HIGHER, tolerance=0.0
        ),
        # The headline saving: fraction of the full-rebuild bits the
        # incremental arm rewrote at the lowest churn rate.
        "incremental_rewrite_fraction_low_churn": BenchMetric(
            incremental["bits_rewritten"] / incremental["bits_full"],
            BetterDirection.LOWER,
            tolerance=0.10,
        ),
        "max_convergence_time_low_churn": BenchMetric(
            incremental["max_convergence_time"], unit="sim-time"
        ),
    }
    return BenchResult(
        bench="churn_convergence",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    workload = result["workload"]
    lines = [
        f"Live topology churn on G({workload['n']}, 1/2), "
        f"{workload['messages']} messages over {workload['horizon']:g} "
        f"time units, repair {workload['repair_delay']:g} after each "
        f"mutation, {workload['probes']} post-convergence probes",
        "",
        "   events   mode           delivered   stale   conv(mean/max)"
        "   bits rewritten",
    ]
    for row in result["sweep"]:
        for mode in ("incremental", "full"):
            cell = row["by_mode"][mode]
            lines.append(
                f"   {row['churn_events']:6d}   {mode:<12s}"
                f"   {cell['delivered_fraction']:9.3f}"
                f"   {cell['stale_deliveries']:5d}"
                f"   {cell['mean_convergence_time']:6.2f}/"
                f"{cell['max_convergence_time']:<6.2f}"
                f"   {cell['bits_rewritten']:8d} / {cell['bits_full']}"
            )
    probe_total = sum(
        cell["probe_delivered_fraction"]
        for row in result["sweep"]
        for cell in row["by_mode"].values()
    )
    cells = sum(len(row["by_mode"]) for row in result["sweep"])
    lines += [
        "",
        f"  post-convergence probes delivered {probe_total / cells:.1%}",
        "  across every cell with zero stale hops, zero loops, and",
        "  stretch 1.0 on the post-churn metric; selective repair",
        "  rewrote strictly fewer bits than the full-rebuild control",
        "  arm at low churn.",
    ]
    return "\n".join(lines)


def test_churn_convergence(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("churn_convergence", _format(result))
    write_bench_result(_bench_result(result), DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    levels = SMOKE_CHURN_EVENTS if smoke else CHURN_EVENTS
    probes = SMOKE_PROBES if smoke else PROBES
    started = time.perf_counter()
    result = measure(n, messages, levels, probes)
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\nresults written to {output}")
    check(result)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
