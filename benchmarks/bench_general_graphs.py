"""Experiment GENERAL — beyond the paper's graph class (extension).

The Theorem 1–5 constructions require the diameter-2 structure of random
graphs; on sparse topologies they refuse.  This bench measures what the
library offers there instead — interval routing (related work [1]) and the
tree-cover scheme — against the always-universal full table, on connected
sparse ``G(n, 3 ln n / n)`` samples.
"""

from __future__ import annotations

import math

from repro.core import build_scheme, verify_scheme
from repro.errors import SchemeBuildError
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel

NS = (48, 96, 192)


def _sparse_graph(n: int, seed: int):
    p = min(3.0 * math.log(n) / n, 0.5)
    for attempt in range(30):
        graph = gnp_random_graph(n, p=p, seed=seed + 1000 * attempt)
        if graph.is_connected():
            return graph
    raise SchemeBuildError(f"no connected sparse sample at n={n}")


def _measure():
    ii_gamma = RoutingModel(Knowledge.II, Labeling.GAMMA)
    ii_beta = RoutingModel(Knowledge.II, Labeling.BETA)
    ia_alpha = RoutingModel(Knowledge.IA, Labeling.ALPHA)
    ii_alpha = RoutingModel(Knowledge.II, Labeling.ALPHA)
    rows = []
    for n in NS:
        graph = _sparse_graph(n, seed=n)
        # The paper's compact scheme must refuse here (diameter > 2).
        refused = False
        try:
            build_scheme("thm1-two-level", graph, ii_alpha)
        except SchemeBuildError:
            refused = True
        entries = {}
        for name, model, params in (
            ("full-table", ia_alpha, {}),
            ("interval", ii_beta, {}),
            ("tree-cover", ii_gamma, {"num_trees": 4}),
        ):
            scheme = build_scheme(name, graph, model, **params)
            report = verify_scheme(scheme, sample_pairs=300, seed=n)
            assert report.all_delivered
            entries[name] = (
                scheme.space_report().total_bits,
                report.max_stretch,
                report.mean_stretch,
            )
        rows.append((n, graph, refused, entries))
    return rows


def test_general_graph_menu(benchmark, write_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        "Routing on sparse general graphs G(n, 3 ln n / n) — extension",
        "",
        "  Theorem 1 refuses (diameter > 2); the general-purpose schemes:",
        "",
        "          scheme        total bits   max stretch   mean stretch",
    ]
    for n, graph, refused, entries in rows:
        lines.append(f"  n={n:4d}  ({graph.edge_count} edges, "
                     f"thm1 refused: {refused})")
        for name, (bits, max_stretch, mean_stretch) in entries.items():
            lines.append(
                f"          {name:12s} {bits:10d}   {max_stretch:11.2f}   "
                f"{mean_stretch:12.2f}"
            )
    lines += [
        "",
        "  full-table: exact but Θ(n² log n); interval: one tree, cheap but",
        "  stretched; tree-cover: a few trees recover most of the stretch.",
    ]
    write_result("general_graphs", "\n".join(lines))
    for n, _, refused, entries in rows:
        assert refused
        assert entries["full-table"][1] == 1.0
        assert entries["tree-cover"][1] <= entries["interval"][1] + 1e-9
        assert entries["tree-cover"][0] < entries["full-table"][0] * 2


def test_tree_cover_build_speed(benchmark):
    graph = _sparse_graph(96, seed=96)
    ii_gamma = RoutingModel(Knowledge.II, Labeling.GAMMA)
    benchmark(build_scheme, "tree-cover", graph, ii_gamma, num_trees=4)
