"""Experiment T1-LB-IIα — Theorem 6: the Ω(n²) average-case lower bound.

Runs the proof's codec on certified random graphs: the graph is encoded
through one node's routing function, round-tripped, and the measured ledger
instantiates ``|F(u)| ≥ deleted − overhead − δ(n) ≈ n/2 − o(n)`` per node.
"""

from __future__ import annotations

import math

from repro.core import TwoLevelScheme
from repro.graphs import gnp_random_graph
from repro.incompressibility import Theorem6Codec, evaluate_codec

NS = (64, 128, 256)


def _measure(ii_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 17)
        scheme = TwoLevelScheme(graph, ii_alpha)
        sample = [1, n // 2, n]
        ledgers = []
        for u in sample:
            codec = Theorem6Codec(scheme, u)
            report = evaluate_codec(codec, graph)
            assert report.round_trip_ok
            ledgers.append(codec.accounting(graph))
        rows.append((n, ledgers))
    return rows


def test_thm6_lower_bound_ledger(benchmark, ii_alpha, write_result):
    rows = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    lines = [
        "Theorem 6 codec (graph described via F(u)), model II ∧ α",
        "",
        "  per node: |F(u)| ≥ deleted − overhead − δ(n); deleted ≈ n/2",
        "",
    ]
    for n, ledgers in rows:
        for ledger in ledgers:
            lines.append(
                f"  n={n:4d}  |F(u)|={ledger['function_bits']:5d}  "
                f"deleted={ledger['deleted_bits']:4d}  "
                f"overhead={ledger['overhead_bits']:3d}  "
                f"implied ≥ {ledger['implied_function_bound']:4d}"
            )
    lines += [
        "",
        "  round trip: graph reconstructed exactly from u, row(u), F(u), rest",
        "  paper row: average case lower bound, II with α — Ω(n²) total",
    ]
    write_result("thm6_codec", "\n".join(lines))
    for n, ledgers in rows:
        for ledger in ledgers:
            assert ledger["function_bits"] >= ledger["implied_function_bound"]
            assert ledger["deleted_bits"] >= n / 2 - 2 * math.sqrt(n * math.log2(n))
            assert ledger["overhead_bits"] <= 8 * math.log2(n)
    # The implied bound grows linearly: Ω(n) per node ⇒ Ω(n²) total.
    small = sum(l["implied_function_bound"] for l in rows[0][1]) / 3
    large = sum(l["implied_function_bound"] for l in rows[-1][1]) / 3
    assert large >= 3.0 * small


def test_thm6_codec_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(96, seed=13)
    scheme = TwoLevelScheme(graph, ii_alpha)
    codec = Theorem6Codec(scheme, 5)
    benchmark(codec.encode, graph)
