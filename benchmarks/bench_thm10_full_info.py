"""Experiment T10 — full-information routing: Θ(n³), lower bound n³/4.

Measures the real serialised size of the full-information scheme (upper
bound) and runs the Theorem 10 codec whose ledger instantiates
``|F(u)| ≥ n²/4 − o(n²)`` per node.
"""

from __future__ import annotations

from repro.analysis import best_law, fit_power_law
from repro.core import FullInformationScheme
from repro.graphs import gnp_random_graph
from repro.incompressibility import Theorem10Codec, evaluate_codec

NS = (32, 48, 64, 96)


def _measure(ii_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 41)
        scheme = FullInformationScheme(graph, ii_alpha)
        total = scheme.space_report().total_bits
        codec = Theorem10Codec(scheme, 1)
        report = evaluate_codec(codec, graph)
        assert report.round_trip_ok
        rows.append((n, total, codec.accounting(graph)))
    return rows


def test_thm10_cubic_size_and_bound(benchmark, ii_alpha, write_result):
    rows = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    ns = [n for n, _, _ in rows]
    totals = [total for _, total, _ in rows]
    fits = best_law(ns, totals, candidates=["n^2", "n^2 log n", "n^3"])
    power = fit_power_law(ns, totals)
    lines = [
        "Theorem 10 (full-information routing), model α",
        "",
    ]
    for n, total, ledger in rows:
        lines.append(
            f"  n={n:3d}  total = {total:9d} bits  T/n³ = {total / n**3:.3f}  "
            f"|F(1)| = {ledger['function_bits']:6d} ≥ implied "
            f"{ledger['implied_function_bound']:6d}  (n²/4 = {n * n // 4})"
        )
    lines += [
        "",
        f"  best-fit law : {fits[0].law} (constant {fits[0].constant:.3f})",
        f"  power-law fit: n^{power.exponent:.3f}",
        "  codec round trip: E(G) reconstructed from u, row(u), F(u), rest",
        "  paper row: Θ(n³) for full information shortest path in model α",
    ]
    write_result("thm10_full_info", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law == "n^3"
    assert 2.7 <= power.exponent <= 3.3
    for n, _, ledger in rows:
        assert ledger["function_bits"] >= ledger["implied_function_bound"]
        assert ledger["implied_function_bound"] >= 0.6 * n * n / 4


def test_thm10_build_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(64, seed=41)
    benchmark(FullInformationScheme, graph, ii_alpha)
