"""Experiment ALMOST-ALL — how many sampled graphs are 'Kolmogorov random'?

The paper's bounds hold for ``c log n``-random graphs, "a fraction of at
least 1 − 1/n^c of all graphs".  We cannot test Kolmogorov randomness
directly, but we can test the three structural consequences the proofs
actually use (Lemmas 1–3): this bench samples many G(n, 1/2) instances per
``n`` and reports the fraction passing certification — which should rise
towards 1 as ``n`` grows, mirroring the paper's counting bound.
"""

from __future__ import annotations

from repro.graphs import certify_random_graph, gnp_random_graph
from repro.kolmogorov import delta_random_fraction

NS = (16, 24, 32, 48, 64, 96)
SAMPLES = 40


def _measure():
    rows = []
    for n in NS:
        passed = 0
        diameter_failures = 0
        for i in range(SAMPLES):
            graph = gnp_random_graph(n, seed=n * 10_000 + i)
            certificate = certify_random_graph(graph)
            if certificate.certified:
                passed += 1
            elif not certificate.diameter_two:
                diameter_failures += 1
        rows.append((n, passed / SAMPLES, diameter_failures))
    return rows


def test_certification_rate_rises_with_n(benchmark, write_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        f"Certification rate of G(n, 1/2) samples ({SAMPLES} seeds per n)",
        "",
        "          certified   diameter>2 failures   paper's 1 - 1/n^3",
    ]
    for n, rate, diam_failures in rows:
        lines.append(
            f"  n={n:4d}  {rate:9.2%}   {diam_failures:19d}   "
            f"{delta_random_fraction(n, 3.0):17.6f}"
        )
    lines += [
        "",
        "  small samples occasionally miss diameter 2; from n ≈ 48 on,",
        "  effectively every sample satisfies all three lemmas — 'almost",
        "  all graphs' made operational.",
    ]
    write_result("certification", "\n".join(lines))
    rates = [rate for _, rate, _ in rows]
    # Monotone-ish rise and saturation at 100%.
    assert rates[-1] == 1.0
    assert rates[-2] == 1.0
    assert rates[0] <= rates[-1]


def test_certification_speed(benchmark):
    graph = gnp_random_graph(64, seed=123)
    benchmark(certify_random_graph, graph)
