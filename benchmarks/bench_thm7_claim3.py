"""Experiment T1-LB-IA/IB — Theorem 7: Ω(n²) when neighbours are unknown.

Claim 3 executed: each node's interconnection pattern is reconstructed from
its routing function plus ``Σ ⌈log z_i⌉ ≤ n/2 + o(n)`` choice bits, so the
function itself must carry ``≈ d(u) − O(log n)`` bits of the pattern.
"""

from __future__ import annotations

import random

from repro.core import FullTableScheme
from repro.graphs import PortAssignment, gnp_random_graph
from repro.lowerbounds import encode_neighbor_choices, theorem7_ledger

NS = (64, 128, 256)


def _measure(ia_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 23)
        ports = PortAssignment.shuffled(graph, random.Random(n))
        scheme = FullTableScheme(graph, ia_alpha, ports=ports)
        ledgers = [theorem7_ledger(scheme, u) for u in graph.nodes]
        rows.append((n, ledgers))
    return rows


def test_thm7_claim3_ledger(benchmark, ia_alpha, write_result):
    rows = benchmark.pedantic(_measure, args=(ia_alpha,), rounds=1, iterations=1)
    lines = [
        "Theorem 7 / Claim 3 (pattern from routing function), models IA ∨ IB",
        "",
        "  per node: choice bits ≤ Claim 2 budget (n-1) - d(u);",
        "  implied |F(u)| ≥ (n-1) - choices - O(log n) ≈ d(u) ≈ n/2",
        "",
    ]
    for n, ledgers in rows:
        mean_choice = sum(l.choice_bits for l in ledgers) / n
        mean_bound = sum(l.implied_function_bound for l in ledgers) / n
        total_bound = sum(l.implied_function_bound for l in ledgers)
        lines.append(
            f"  n={n:4d}  mean choice bits = {mean_choice:6.1f}  "
            f"mean implied |F(u)| ≥ {mean_bound:7.1f}  "
            f"total ≥ {total_bound:9d}  (n²/16 = {n * n // 16})"
        )
    lines += [
        "",
        "  every node: Claim 2 verified, pattern reconstructed exactly",
        "  paper row: average case lower bound, IA/IB — Ω(n²) total",
    ]
    write_result("thm7_claim3", "\n".join(lines))
    for n, ledgers in rows:
        assert all(l.choice_bits <= l.claim2_budget for l in ledgers)
        total_bound = sum(l.implied_function_bound for l in ledgers)
        assert total_bound >= n * n / 16  # comfortably n²/32 and beyond


def test_thm7_choice_encoding_speed(benchmark, ia_alpha):
    graph = gnp_random_graph(96, seed=3)
    scheme = FullTableScheme(graph, ia_alpha)
    benchmark(encode_neighbor_choices, scheme, 1)
