"""Experiment CTX — end-to-end speedup from the shared GraphContext.

PR acceptance criterion: a build → verify → simulate pipeline on one
graph must compute the all-pairs distance matrix exactly **once**.
Before the context layer every consumer derived it independently — the
builder, the verifier, and the metrics summary each paid the ``O(n·m)``
BFS sweep on the *same* immutable graph.

This bench times the identical pipeline — build an interval scheme,
verify it twice (two independent sampled audits), route a message
workload and summarize the records — in two configurations:

* ``shared``   — the post-refactor default: one :class:`GraphContext`
                 per graph, the first consumer computes the matrix and
                 every later stage reads the same memoised copy;
* ``isolated`` — the pre-refactor equivalent: the context is
                 ``invalidate()``-ed between stages, so each audit and
                 the metrics summary recompute their derivations.

Both runs are counter-audited through the process registry
(``repro_graph_ctx_total{kind="distances"}``): the shared pipeline must
show exactly one distance miss and at least two hits, the isolated one
a miss per consuming stage.  The run writes ``BENCH_context.json`` with the
timings, the speedup ratio, and the counter evidence, for CI to
validate and archive.

Run ``python benchmarks/bench_context_reuse.py --smoke`` for a quick
self-checking pass (counters only — small graphs drown the wall-time
delta in noise); ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme, verify_scheme
from repro.graphs import clear_context_cache, gnp_random_graph
from repro.graphs.context import CTX_COUNTER
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    BenchMetric,
    BenchResult,
    BetterDirection,
    MetricsRegistry,
    RunManifest,
    set_registry,
    write_bench_result,
)
from repro.simulator import Network, summarize

II_BETA = RoutingModel(Knowledge.II, Labeling.BETA)

N = 256
VERIFY_PAIRS = 300
MESSAGES = 200
REPS = 7
SMOKE_N = 48
SMOKE_VERIFY_PAIRS = 60
SMOKE_MESSAGES = 40
SMOKE_REPS = 3
# Full runs must show a real end-to-end win; two extra O(n·m) sweeps at
# n = 256 clear this floor comfortably.
SPEEDUP_FLOOR = 1.05

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_context.json"
)


def _distance_counts(registry):
    return {
        op: int(registry.counter(CTX_COUNTER, kind="distances", op=op).value)
        for op in ("hit", "miss")
    }


def _run_pipeline(n, verify_pairs, messages, shared):
    """One timed build → verify → simulate pass; returns (seconds, counts)."""
    graph = gnp_random_graph(n, seed=131)
    pairs = random.Random(37).sample(
        [(s, t) for s in graph.nodes for t in graph.nodes if s != t], messages
    )
    clear_context_cache()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        start = time.perf_counter()
        scheme = build_scheme("interval", graph, II_BETA)
        for audit_seed in (7, 11):
            if not shared:
                scheme.ctx.invalidate()
            result = verify_scheme(
                scheme, sample_pairs=verify_pairs, seed=audit_seed
            )
            assert result.ok()
        if not shared:
            scheme.ctx.invalidate()
        network = Network(scheme)
        records = [network.route(s, t) for s, t in pairs]
        metrics = summarize(records, graph)
        elapsed = time.perf_counter() - start
    finally:
        set_registry(previous)
    assert metrics.delivered == len(records)
    return elapsed, _distance_counts(registry)


def measure(n=N, verify_pairs=VERIFY_PAIRS, messages=MESSAGES, reps=REPS):
    """Interleaved best-of-``reps`` timings for the two pipeline modes."""
    timings = {"shared": [], "isolated": []}
    counts = {}
    for _ in range(reps):
        for mode, shared in (("shared", True), ("isolated", False)):
            elapsed, distance_counts = _run_pipeline(
                n, verify_pairs, messages, shared
            )
            timings[mode].append(elapsed)
            counts[mode] = distance_counts
    best = {mode: min(values) for mode, values in timings.items()}
    return {
        "workload": {
            "n": n,
            "verify_pairs": verify_pairs,
            "messages": messages,
            "reps": reps,
        },
        "best_seconds": best,
        "all_seconds": timings,
        "speedup_ratio": best["isolated"] / best["shared"],
        "distance_computes": {
            mode: c["miss"] for mode, c in counts.items()
        },
        "distance_cache_hits": {
            mode: c["hit"] for mode, c in counts.items()
        },
    }


def check(result, smoke=False) -> None:
    computes = result["distance_computes"]
    hits = result["distance_cache_hits"]
    assert computes["shared"] == 1, (
        f"shared pipeline computed the distance matrix "
        f"{computes['shared']} times; the context must make it exactly one"
    )
    assert hits["shared"] >= 2, (
        f"shared pipeline shows {hits['shared']} distance cache hits; "
        f"the second audit and summarize must reuse the first's matrix"
    )
    assert computes["isolated"] >= 3, (
        f"isolated baseline computed only {computes['isolated']} times; "
        f"the invalidate() fences are not isolating the stages"
    )
    if not smoke:
        ratio = result["speedup_ratio"]
        assert ratio >= SPEEDUP_FLOOR, (
            f"shared pipeline is only {ratio:.3f}x faster than the "
            f"isolated baseline, floor {SPEEDUP_FLOOR:.2f}x"
        )


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:context_reuse",
        seed=131,
        scheme="interval",
        n=workload["n"],
        params=workload,
        graph=gnp_random_graph(workload["n"], seed=131),
    )
    metrics = {
        "speedup_ratio": BenchMetric(
            result["speedup_ratio"], BetterDirection.HIGHER, tolerance=0.10
        ),
        # The counter evidence is exact, so it gates with zero slack.
        "distance_computes_shared": BenchMetric(
            float(result["distance_computes"]["shared"]),
            BetterDirection.LOWER,
            tolerance=0.0,
        ),
        "best_seconds_shared": BenchMetric(
            result["best_seconds"]["shared"], unit="s"
        ),
        "best_seconds_isolated": BenchMetric(
            result["best_seconds"]["isolated"], unit="s"
        ),
    }
    return BenchResult(
        bench="context_reuse",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    work = result["workload"]
    best = result["best_seconds"]
    lines = [
        f"GraphContext reuse on a build→verify→simulate pipeline: "
        f"G({work['n']}, 1/2), 2x{work['verify_pairs']} verified pairs, "
        f"{work['messages']} routed messages, best of {work['reps']}",
        "",
        f"  shared context             {best['shared'] * 1e3:9.2f} ms"
        f"   ({result['distance_computes']['shared']} distance compute, "
        f"{result['distance_cache_hits']['shared']} hits)",
        f"  invalidated between stages {best['isolated'] * 1e3:9.2f} ms"
        f"   ({result['distance_computes']['isolated']} distance computes)",
        f"  speedup                    {result['speedup_ratio']:9.3f}x",
        "",
        "  every layer reads the one memoised matrix; the baseline is",
        "  what the pre-context stack paid by deriving per consumer.",
    ]
    return "\n".join(lines)


def test_context_reuse(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("context_reuse", _format(result))
    write_bench_result(_bench_result(result), DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    started = time.perf_counter()
    if smoke:
        result = measure(SMOKE_N, SMOKE_VERIFY_PAIRS, SMOKE_MESSAGES, SMOKE_REPS)
    else:
        result = measure()
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\ntimings written to {output}")
    check(result, smoke=smoke)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
