"""Experiments ABL-COVER and ABL-SPLIT — the design-choice ablations.

* ABL-COVER — Theorem 1/3 take the *least* ``(c+3) log n`` neighbours as
  the covering sequence; a greedy max-coverage variant buys shorter
  sequences at the cost of storing their identities.
* ABL-SPLIT — Theorem 1 moves destinations to the binary table once the
  uncovered remainder drops below a threshold: ``n / log log n`` in the 6n
  analysis, ``n / log n`` in the refined 3n remark.
"""

from __future__ import annotations

from repro.core import TwoLevelScheme, verify_scheme
from repro.graphs import gnp_random_graph

NS = (64, 128, 256)


def _measure_covering(ii_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 71)
        least = TwoLevelScheme(graph, ii_alpha, strategy="least")
        greedy = TwoLevelScheme(graph, ii_alpha, strategy="greedy")
        for scheme in (least, greedy):
            assert verify_scheme(scheme, sample_pairs=150, seed=n).ok()
        rows.append(
            (
                n,
                sum(len(least.covering_sequence_of(u)) for u in graph.nodes) / n,
                sum(len(greedy.covering_sequence_of(u)) for u in graph.nodes) / n,
                least.space_report().total_bits,
                greedy.space_report().total_bits,
            )
        )
    return rows


def _measure_split(ii_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 73)
        log_rule = TwoLevelScheme(graph, ii_alpha, split_rule="log")
        loglog_rule = TwoLevelScheme(graph, ii_alpha, split_rule="loglog")
        rows.append(
            (
                n,
                max(len(log_rule.encode_function(u)) for u in graph.nodes),
                max(len(loglog_rule.encode_function(u)) for u in graph.nodes),
            )
        )
    return rows


def test_ablation_covering_strategy(benchmark, ii_alpha, write_result):
    rows = benchmark.pedantic(_measure_covering, args=(ii_alpha,),
                              rounds=1, iterations=1)
    lines = [
        "Ablation ABL-COVER: least-neighbour vs greedy covering sequences",
        "",
        "          mean |cover| least   greedy     total bits least   greedy",
    ]
    for n, mean_least, mean_greedy, bits_least, bits_greedy in rows:
        lines.append(
            f"  n={n:4d}  {mean_least:18.1f}  {mean_greedy:7.1f}  "
            f"{bits_least:17d}  {bits_greedy:7d}"
        )
    lines += [
        "",
        "  greedy shortens the sequence but must store its identities;",
        "  the paper's 'least' choice keeps the encoding self-describing.",
    ]
    write_result("ablation_covering", "\n".join(lines))
    for _, mean_least, mean_greedy, _, _ in rows:
        assert mean_greedy <= mean_least


def test_ablation_split_threshold(benchmark, ii_alpha, write_result):
    rows = benchmark.pedantic(_measure_split, args=(ii_alpha,),
                              rounds=1, iterations=1)
    lines = [
        "Ablation ABL-SPLIT: unary/binary split threshold in Theorem 1",
        "",
        "          worst bits/node  n/log n rule   n/loglog n rule   budgets 3n | 6n",
    ]
    for n, worst_log, worst_loglog in rows:
        lines.append(
            f"  n={n:4d}  {worst_log:23d}  {worst_loglog:14d}   "
            f"{3 * n:5d} | {6 * n}"
        )
    lines += [
        "",
        "  both stay within their analysed budgets; the refined n/log n rule",
        "  realises the paper's 'slightly more precise counting ... 3n'.",
    ]
    write_result("ablation_split", "\n".join(lines))
    for n, worst_log, worst_loglog in rows:
        assert worst_log <= 3 * n
        assert worst_loglog <= 6 * n
