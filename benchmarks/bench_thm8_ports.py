"""Experiment T1-LB-IAα — Theorem 8: Ω(n² log n) under fixed adversarial ports.

The adversary wires random port permutations; the bench measures the
Lehmer-coded size of the permutations a shortest-path scheme must contain,
recovers each permutation from real routing tables, and contrasts with
model IB where re-assignment makes the cost vanish.
"""

from __future__ import annotations

import math

from repro.analysis import best_law
from repro.graphs import gnp_random_graph
from repro.lowerbounds import run_theorem8_experiment

NS = (48, 64, 96, 128, 192)


def _measure(ia_alpha):
    results = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 29)
        results.append(run_theorem8_experiment(graph, ia_alpha, seed=n))
    return results


def test_thm8_port_permutation_cost(benchmark, ia_alpha, write_result):
    results = benchmark.pedantic(_measure, args=(ia_alpha,), rounds=1, iterations=1)
    ns = [r.n for r in results]
    totals = [r.total_permutation_bits for r in results]
    fits = best_law(ns, totals, candidates=["n log n", "n^2", "n^2 log n", "n^3"])
    lines = [
        "Theorem 8 (adversarial ports), model IA ∧ α, G(n, 1/2)",
        "",
        "  forced permutation bits per graph (Lehmer-coded, minimal):",
        "",
    ]
    for r in results:
        half = (r.n / 2) * math.log2(r.n / 2)
        lines.append(
            f"  n={r.n:4d}  total = {r.total_permutation_bits:9d} bits  "
            f"per node = {r.mean_node_bits:7.1f}  "
            f"(n/2)log(n/2) = {half:7.1f}  recovered: {r.recovered_all}"
        )
    lines += [
        "",
        f"  best-fit law : {fits[0].law} (constant {fits[0].constant:.3f})",
        "  under IB the same information costs 0 bits (identity re-assignment)",
        "  paper row: average case lower bound, IA ∧ α — Ω(n² log n)",
    ]
    write_result("thm8_ports", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law == "n^2 log n"
    assert all(r.recovered_all for r in results)
    for r in results:
        assert r.mean_node_bits >= 0.5 * (r.n / 2) * math.log2(r.n / 2)


def test_thm8_experiment_speed(benchmark, ia_alpha):
    graph = gnp_random_graph(64, seed=31)
    benchmark(run_theorem8_experiment, graph, ia_alpha, 1)
