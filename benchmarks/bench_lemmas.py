"""Experiment LEMMAS — the structural backbone (Lemmas 1–3, Claim 1).

Sweeps ``n`` and measures, over seeded G(n, 1/2):

* the worst degree deviation against Lemma 1's ``√((δ+log n) n)`` scale;
* the diameter (Lemma 2 says exactly 2);
* the worst least-neighbour cover prefix against Lemma 3's ``(c+3) log n``;
* Claim 1's per-step coverage ratio (≥ 1/3 while the remainder is large).
"""

from __future__ import annotations

import math

from repro.graphs import (
    claim1_remainders,
    cover_prefix_length,
    degree_statistics,
    diameter,
    gnp_random_graph,
)

NS = (64, 128, 256, 512)


def _measure():
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 3)
        stats = degree_statistics(graph)
        diam = diameter(graph)
        worst_prefix = max(cover_prefix_length(graph, u) for u in graph.nodes)
        worst_ratio = 1.0
        threshold = n / math.log2(math.log2(n))
        for u in (1, n // 2, n):
            remainders = claim1_remainders(graph, u)
            for before, after in zip(remainders, remainders[1:]):
                if before > threshold:
                    worst_ratio = min(worst_ratio, (before - after) / before)
        rows.append((n, stats, diam, worst_prefix, worst_ratio))
    return rows


def test_lemmas_hold_across_sizes(benchmark, write_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        "Lemmas 1-3 and Claim 1 on G(n, 1/2) (one certified sample per n)",
        "",
        "          degree dev   L1 scale   diam   cover prefix   (c+3)log n   "
        "worst step ratio",
    ]
    for n, stats, diam, worst_prefix, worst_ratio in rows:
        lines.append(
            f"  n={n:4d}  {stats.max_deviation:8d}  {stats.lemma1_bound:9.1f}  "
            f"{diam:5d}  {worst_prefix:12d}  {6 * math.log2(n):10.1f}  "
            f"{worst_ratio:.3f}"
        )
    lines += [
        "",
        "  paper: Lemma 1 band, Lemma 2 diameter 2, Lemma 3 O(log n) cover,",
        "         Claim 1 ratio ≥ 1/3 while remainder > n/loglog n",
    ]
    write_result("lemmas", "\n".join(lines))
    for n, stats, diam, worst_prefix, worst_ratio in rows:
        assert stats.within_band
        assert diam == 2
        assert worst_prefix <= 6 * math.log2(n)
        assert worst_ratio >= 1.0 / 3.0


def test_diameter_check_speed(benchmark):
    graph = gnp_random_graph(512, seed=5)
    benchmark(diameter, graph)


def test_cover_prefix_speed(benchmark):
    graph = gnp_random_graph(256, seed=5)
    benchmark(cover_prefix_length, graph, 1)
