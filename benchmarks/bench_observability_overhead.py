"""Experiment OBS — observability overhead of the hop-level tracer.

PR acceptance criterion: a chaos run with tracing *disabled* must stay
within 5% of the pre-instrumentation wall time.  The instrumentation was
designed so that a disabled tracer is structurally free: ``_live_tracer``
collapses ``None`` and ``NullTracer`` to ``None`` at construction, so the
hot routing loops pay exactly one ``is None`` test per emission site —
the same shape as the pre-PR code.

This bench measures three configurations of the identical chaos workload
(flapping links, retry/backoff, event-driven simulator):

* ``untraced``      — ``tracer=None``, the pre-PR-equivalent baseline,
* ``null-tracer``   — ``tracer=NULL_TRACER``; must match ``untraced``
                      to within the 5% budget (both take the disabled
                      path, so any gap is measurement noise), and
* ``recording``     — a live ``RecordingTracer`` capturing every span,
                      reported for context (tracing is opt-in, so its
                      overhead is informational, not budgeted).

Each configuration is timed over several alternating repetitions (best
of k, interleaved to decorrelate from machine drift) and the run writes
``BENCH_observability.json`` with the timings, the overhead ratios, and
the span count of the traced run, for CI to validate and archive.

Run ``python benchmarks/bench_observability_overhead.py --smoke`` for a
quick self-checking pass; ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

from repro.core import build_scheme
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import NULL_TRACER, RecordingTracer
from repro.simulator import EventDrivenSimulator, RetryPolicy, flapping_links

II_BETA = RoutingModel(Knowledge.II, Labeling.BETA)

N = 48
MESSAGES = 400
HORIZON = 60.0
FLAPPING = 120
REPS = 5
SMOKE_N = 24
SMOKE_MESSAGES = 120
SMOKE_REPS = 3
# The acceptance budget, plus slack for timer noise on short smoke runs.
OVERHEAD_BUDGET = 1.05
SMOKE_BUDGET = 1.25

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_observability.json"
)


def _build_workload(n, messages):
    graph = gnp_random_graph(n, seed=83)
    scheme = build_scheme("interval", graph, II_BETA)
    schedule = flapping_links(
        graph, FLAPPING if n == N else FLAPPING // 3,
        period=8.0, duty=0.5, horizon=HORIZON, seed=17,
    )
    clock = random.Random(29)
    nodes = sorted(graph.nodes)
    injections = [
        (*clock.sample(nodes, 2), clock.uniform(0.0, HORIZON * 0.75))
        for _ in range(messages)
    ]
    return scheme, schedule, injections


def _run_once(scheme, schedule, injections, tracer):
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=3),
        retry_seed=11,
        tracer=tracer,
    )
    for source, destination, at_time in injections:
        sim.inject(source, destination, at_time)
    start = time.perf_counter()
    records = sim.run()
    return time.perf_counter() - start, records


def measure(n=N, messages=MESSAGES, reps=REPS):
    """Interleaved best-of-``reps`` timings for the three tracer modes."""
    scheme, schedule, injections = _build_workload(n, messages)
    timings = {"untraced": [], "null-tracer": [], "recording": []}
    span_count = 0
    baseline_records = None
    for _ in range(reps):
        elapsed, records = _run_once(scheme, schedule, injections, None)
        timings["untraced"].append(elapsed)
        baseline_records = records
        elapsed, records = _run_once(
            scheme, schedule, injections, NULL_TRACER
        )
        timings["null-tracer"].append(elapsed)
        assert records == baseline_records
        tracer = RecordingTracer()
        elapsed, records = _run_once(scheme, schedule, injections, tracer)
        timings["recording"].append(elapsed)
        assert records == baseline_records
        span_count = len(tracer.events)
    best = {mode: min(values) for mode, values in timings.items()}
    return {
        "workload": {
            "n": n,
            "messages": messages,
            "flapping_links": FLAPPING if n == N else FLAPPING // 3,
            "reps": reps,
        },
        "best_seconds": best,
        "all_seconds": timings,
        "disabled_overhead_ratio": best["null-tracer"] / best["untraced"],
        "recording_overhead_ratio": best["recording"] / best["untraced"],
        "trace_events": span_count,
        "delivered": sum(1 for r in baseline_records if r.delivered),
        "records": len(baseline_records),
    }


def check(result, budget=OVERHEAD_BUDGET) -> None:
    ratio = result["disabled_overhead_ratio"]
    assert ratio <= budget, (
        f"disabled tracing cost {ratio:.3f}x baseline, budget {budget:.2f}x"
    )
    assert result["trace_events"] > result["records"]


def _format(result) -> str:
    work = result["workload"]
    best = result["best_seconds"]
    lines = [
        f"Tracer overhead on a chaos run: G({work['n']}, 1/2), "
        f"{work['messages']} messages, {work['flapping_links']} flapping "
        f"links, retry/backoff, best of {work['reps']}",
        "",
        f"  untraced (tracer=None)     {best['untraced'] * 1e3:9.2f} ms",
        f"  disabled (NULL_TRACER)     {best['null-tracer'] * 1e3:9.2f} ms"
        f"   ({result['disabled_overhead_ratio']:.3f}x)",
        f"  recording tracer           {best['recording'] * 1e3:9.2f} ms"
        f"   ({result['recording_overhead_ratio']:.3f}x, "
        f"{result['trace_events']} spans)",
        "",
        "  the disabled path is a single `is None` test per emission",
        "  site, so it stays within the 5% acceptance budget of the",
        "  pre-instrumentation loop.",
    ]
    return "\n".join(lines)


def _write_json(result, path) -> None:
    path = pathlib.Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")


def test_observability_overhead(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("observability_overhead", _format(result))
    _write_json(result, DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    reps = SMOKE_REPS if smoke else REPS
    result = measure(n, messages, reps)
    print(_format(result))
    _write_json(result, output)
    print(f"\ntimings written to {output}")
    check(result, SMOKE_BUDGET if smoke else OVERHEAD_BUDGET)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
