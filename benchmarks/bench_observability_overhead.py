"""Experiment OBS — observability overhead of the hop-level tracer.

PR acceptance criterion: a chaos run with tracing *disabled* must stay
within 5% of the pre-instrumentation wall time, and a **1%-sampled**
live tracer must stay within the same 5% budget at 10× the message
count.  The instrumentation was designed so that a disabled tracer is
structurally free: ``_live_tracer`` collapses ``None`` and
``NullTracer`` to ``None`` at construction, so the hot routing loops
pay exactly one ``is None`` test per emission site — the same shape as
the pre-PR code.

This bench measures two workloads:

**Chaos workload** (flapping links, retry/backoff) at the base message
count, in three tracer configurations:

* ``untraced``      — ``tracer=None``, the pre-PR-equivalent baseline,
* ``null-tracer``   — ``tracer=NULL_TRACER``; must match ``untraced``
                      to within the 5% budget (both take the disabled
                      path, so any gap is measurement noise), and
* ``recording``     — a live ``RecordingTracer`` capturing every span,
                      reported for context (tracing is opt-in, so its
                      overhead is informational, not budgeted).

**Steady-state workload** at 10× the message count with a realistic
(low) fault rate, timed untraced vs. a 1%-``SamplingTracer``.  The
sampler's keep decision is made once per message (``Tracer.wants``), so
the engine skips span calls entirely for the suppressed 99%; anomalous
messages (retries, drops, stale deliveries) are promoted and retained
at 100% regardless of the rate.  The bench cross-checks retention
against a full recording of the identical workload.

Each configuration is timed over several alternating repetitions (best
of k, interleaved to decorrelate from machine drift) and the run writes
``BENCH_observability.json`` — a schema-versioned ``BenchResult`` with
direction-annotated metrics and the embedded run manifest — for CI to
validate, regression-gate, and archive.

Run ``python benchmarks/bench_observability_overhead.py --smoke`` for a
quick self-checking pass; ``--output PATH`` overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme
from repro.graphs import gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    NULL_TRACER,
    BenchMetric,
    BenchResult,
    BetterDirection,
    RecordingTracer,
    RunManifest,
    SamplingTracer,
    write_bench_result,
)
from repro.simulator import EventDrivenSimulator, RetryPolicy, flapping_links

II_BETA = RoutingModel(Knowledge.II, Labeling.BETA)

N = 48
MESSAGES = 400
HORIZON = 60.0
FLAPPING = 120
REPS = 5
# The sampled configuration: 10x the messages, a realistic steady-state
# fault rate (sampling exists for scale, where anomalies are the
# exception), and the default 1% keep rate.
SAMPLED_MESSAGES = 10 * MESSAGES
SAMPLED_FLAPPING = 12
SAMPLE_RATE = 0.01
SAMPLE_SEED = 7
SAMPLED_REPS = 7
SMOKE_N = 24
SMOKE_MESSAGES = 120
SMOKE_REPS = 5
# The acceptance budget, plus slack for timer noise on short smoke runs.
OVERHEAD_BUDGET = 1.05
SMOKE_BUDGET = 1.25

GRAPH_SEED = 83

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_observability.json"
)


def _build_workload(n, messages, flapping=None):
    graph = gnp_random_graph(n, seed=GRAPH_SEED)
    scheme = build_scheme("interval", graph, II_BETA)
    if flapping is None:
        flapping = FLAPPING if n == N else FLAPPING // 3
    schedule = flapping_links(
        graph, flapping, period=8.0, duty=0.5, horizon=HORIZON, seed=17,
    )
    clock = random.Random(29)
    nodes = sorted(graph.nodes)
    injections = [
        (*clock.sample(nodes, 2), clock.uniform(0.0, HORIZON * 0.75))
        for _ in range(messages)
    ]
    return scheme, schedule, injections


def _run_once(scheme, schedule, injections, tracer):
    sim = EventDrivenSimulator(
        scheme,
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=3),
        retry_seed=11,
        tracer=tracer,
    )
    for source, destination, at_time in injections:
        sim.inject(source, destination, at_time)
    start = time.perf_counter()
    records = sim.run()
    return time.perf_counter() - start, records


def _anomalous_ids(events):
    """Message ids that retried, dropped, or were delivered stale."""
    anomalous = set()
    for event in events:
        if event.event in ("retry", "drop") or (
            event.event == "deliver" and event.detail == "stale"
        ):
            anomalous.add(event.msg_id)
    return anomalous


def _measure_sampled(n, messages, reps):
    """Untraced vs 1%-sampled timings on the steady-state 10x workload."""
    # The full-size graph dilutes 12 flapping links to a steady-state
    # anomaly rate (~2% of messages); the smaller smoke graph keeps the
    # same absolute count so some anomalies still occur to retain.
    flapping = SAMPLED_FLAPPING
    scheme, schedule, injections = _build_workload(n, messages, flapping)
    timings = {"untraced": [], "sampled": []}
    sampler = None
    baseline_records = None
    for _ in range(reps):
        elapsed, records = _run_once(scheme, schedule, injections, None)
        timings["untraced"].append(elapsed)
        baseline_records = records
        sampler = SamplingTracer(
            RecordingTracer(), rate=SAMPLE_RATE, seed=SAMPLE_SEED
        )
        elapsed, records = _run_once(scheme, schedule, injections, sampler)
        timings["sampled"].append(elapsed)
        assert records == baseline_records
    sampler.close()
    # Retention ground truth: a full recording of the identical workload.
    full = RecordingTracer()
    _run_once(scheme, schedule, injections, full)
    anomalous = _anomalous_ids(full.events)
    retained_ids = {
        event.msg_id
        for event in sampler._sink.events
        if event.msg_id is not None
    }
    retained = anomalous & retained_ids
    best = {mode: min(values) for mode, values in timings.items()}
    tallies = sampler.summary()
    return {
        "best_seconds": best,
        "all_seconds": timings,
        "overhead_ratio": best["sampled"] / best["untraced"],
        "flapping_links": flapping,
        "messages": messages,
        "rate": SAMPLE_RATE,
        "seed": SAMPLE_SEED,
        "reps": reps,
        "kept_sampled": tallies["kept_sampled"],
        "promoted": tallies["promoted"],
        "sink_events": len(sampler._sink.events),
        "anomalous_messages": len(anomalous),
        "anomalous_retained": len(retained),
        "anomaly_retention": (
            len(retained) / len(anomalous) if anomalous else 1.0
        ),
    }


def measure(n=N, messages=MESSAGES, reps=REPS, sampled_reps=None):
    """Interleaved best-of-``reps`` timings for every tracer mode."""
    scheme, schedule, injections = _build_workload(n, messages)
    timings = {"untraced": [], "null-tracer": [], "recording": []}
    span_count = 0
    baseline_records = None
    for _ in range(reps):
        elapsed, records = _run_once(scheme, schedule, injections, None)
        timings["untraced"].append(elapsed)
        baseline_records = records
        elapsed, records = _run_once(
            scheme, schedule, injections, NULL_TRACER
        )
        timings["null-tracer"].append(elapsed)
        assert records == baseline_records
        tracer = RecordingTracer()
        elapsed, records = _run_once(scheme, schedule, injections, tracer)
        timings["recording"].append(elapsed)
        assert records == baseline_records
        span_count = len(tracer.events)
    best = {mode: min(values) for mode, values in timings.items()}
    sampled = _measure_sampled(
        n,
        10 * messages,
        sampled_reps if sampled_reps is not None else max(reps, SAMPLED_REPS),
    )
    return {
        "workload": {
            "n": n,
            "messages": messages,
            "flapping_links": FLAPPING if n == N else FLAPPING // 3,
            "reps": reps,
            "sampled_messages": sampled["messages"],
            "sampled_flapping_links": sampled["flapping_links"],
            "sample_rate": sampled["rate"],
            "sample_seed": sampled["seed"],
        },
        "best_seconds": best,
        "all_seconds": timings,
        "disabled_overhead_ratio": best["null-tracer"] / best["untraced"],
        "recording_overhead_ratio": best["recording"] / best["untraced"],
        "sampled_overhead_ratio": sampled["overhead_ratio"],
        "trace_events": span_count,
        "delivered": sum(1 for r in baseline_records if r.delivered),
        "records": len(baseline_records),
        "sampled": sampled,
    }


def check(result, budget=OVERHEAD_BUDGET) -> None:
    ratio = result["disabled_overhead_ratio"]
    assert ratio <= budget, (
        f"disabled tracing cost {ratio:.3f}x baseline, budget {budget:.2f}x"
    )
    sampled_ratio = result["sampled_overhead_ratio"]
    assert sampled_ratio <= budget, (
        f"1%-sampled tracing cost {sampled_ratio:.3f}x baseline at 10x "
        f"messages, budget {budget:.2f}x"
    )
    sampled = result["sampled"]
    assert sampled["anomalous_messages"] > 0, (
        "sampled workload produced no anomalies; retention is vacuous"
    )
    assert sampled["anomaly_retention"] == 1.0, (
        f"sampler retained only {sampled['anomalous_retained']} of "
        f"{sampled['anomalous_messages']} anomalous messages"
    )
    assert result["trace_events"] > result["records"]


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:observability_overhead",
        seed=GRAPH_SEED,
        scheme="interval",
        n=workload["n"],
        params=workload,
        graph=gnp_random_graph(workload["n"], seed=GRAPH_SEED),
    )
    lower = BetterDirection.LOWER
    # Overhead ratios gate at a 15% relative tolerance: they are small
    # quotients of ~200ms timings, so CI noise runs hotter than the 10%
    # default.  The hard acceptance budget lives in check(), not here.
    metrics = {
        "disabled_overhead_ratio": BenchMetric(
            result["disabled_overhead_ratio"], lower, tolerance=0.15
        ),
        "sampled_overhead_ratio": BenchMetric(
            result["sampled_overhead_ratio"], lower, tolerance=0.15
        ),
        "recording_overhead_ratio": BenchMetric(
            result["recording_overhead_ratio"]
        ),
        "anomaly_retention": BenchMetric(
            result["sampled"]["anomaly_retention"],
            BetterDirection.HIGHER,
            tolerance=0.0,
        ),
        "trace_events": BenchMetric(float(result["trace_events"])),
    }
    return BenchResult(
        bench="observability_overhead",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    work = result["workload"]
    best = result["best_seconds"]
    sampled = result["sampled"]
    sampled_best = sampled["best_seconds"]
    lines = [
        f"Tracer overhead on a chaos run: G({work['n']}, 1/2), "
        f"{work['messages']} messages, {work['flapping_links']} flapping "
        f"links, retry/backoff, best of {work['reps']}",
        "",
        f"  untraced (tracer=None)     {best['untraced'] * 1e3:9.2f} ms",
        f"  disabled (NULL_TRACER)     {best['null-tracer'] * 1e3:9.2f} ms"
        f"   ({result['disabled_overhead_ratio']:.3f}x)",
        f"  recording tracer           {best['recording'] * 1e3:9.2f} ms"
        f"   ({result['recording_overhead_ratio']:.3f}x, "
        f"{result['trace_events']} spans)",
        "",
        f"Sampled tracing at 10x scale: {sampled['messages']} messages, "
        f"{sampled['flapping_links']} flapping links, "
        f"rate {sampled['rate']:.0%}, best of {sampled['reps']}",
        "",
        f"  untraced                   {sampled_best['untraced'] * 1e3:9.2f}"
        f" ms",
        f"  1%-sampled tracer          {sampled_best['sampled'] * 1e3:9.2f}"
        f" ms   ({sampled['overhead_ratio']:.3f}x, "
        f"{sampled['sink_events']} spans kept)",
        f"  anomaly retention          {sampled['anomaly_retention']:9.0%}"
        f"   ({sampled['anomalous_retained']}/"
        f"{sampled['anomalous_messages']} promoted or kept)",
        "",
        "  the disabled path is a single `is None` test per emission",
        "  site and the sampler's keep decision is one `wants()` call",
        "  per message, so both stay within the 5% acceptance budget.",
    ]
    return "\n".join(lines)


def test_observability_overhead(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("observability_overhead", _format(result))
    write_bench_result(_bench_result(result), DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    reps = SMOKE_REPS if smoke else REPS
    started = time.perf_counter()
    result = measure(n, messages, reps, sampled_reps=reps if smoke else None)
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\ntimings written to {output}")
    check(result, SMOKE_BUDGET if smoke else OVERHEAD_BUDGET)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
