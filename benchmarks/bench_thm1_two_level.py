"""Experiment T1-UB-IB/II — Theorem 1: shortest path in O(n²) bits (Table 1).

Paper claims reproduced here:

* per-node routing functions fit in 6n bits (3n with the refined split);
* the complete scheme occupies Θ(n²) bits on average over graphs —
  the ``avg-upper`` IB/II × α cells of Table 1;
* the scheme routes on shortest paths (stretch 1).
"""

from __future__ import annotations

from repro.analysis import best_law, fit_power_law, mean_total_bits, run_size_sweep
from repro.core import TwoLevelScheme
from repro.graphs import gnp_random_graph

NS = (64, 96, 128, 192, 256)
SEEDS = (0, 1, 2)


def _measure(ii_alpha):
    return run_size_sweep(
        "thm1-two-level", ii_alpha, ns=NS, seeds=SEEDS, verify_pairs=200
    )


def test_thm1_total_size_is_quadratic(benchmark, ii_alpha, write_result):
    points = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    means = mean_total_bits(points)
    fits = best_law(list(means), list(means.values()),
                    candidates=["n", "n log n", "n^2", "n^2 log n", "n^3"])
    power = fit_power_law(list(means), list(means.values()))
    worst_per_node = max(p.max_node_bits / p.n for p in points)
    lines = ["Theorem 1 (two-level scheme), model II ∧ α, G(n, 1/2), 3 seeds", ""]
    lines += [f"  n={n:4d}  mean total bits = {mean:12.0f}  T/n² = {mean / n / n:.3f}"
              for n, mean in means.items()]
    lines += [
        "",
        f"  best-fit law  : {fits[0].law} (constant {fits[0].constant:.2f}, "
        f"rel-RMS {fits[0].relative_rms_error:.3f})",
        f"  power-law fit : n^{power.exponent:.3f} (R² {power.r_squared:.4f})",
        f"  worst bits/node ÷ n : {worst_per_node:.2f}  (paper: ≤ 6; refined ≤ 3)",
        f"  verified stretch    : {max(p.verified_max_stretch for p in points):.1f}"
        " (paper: 1)",
        "  paper row: average case upper bound, IB/II with α — O(n²)",
    ]
    write_result("thm1_two_level", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    benchmark.extra_info["constant"] = round(fits[0].constant, 3)
    assert fits[0].law == "n^2"
    assert worst_per_node <= 3.0
    assert all(p.verified_max_stretch <= 1.0 for p in points)


def test_thm1_build_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(128, seed=7)
    benchmark(TwoLevelScheme, graph, ii_alpha)


def test_thm1_encode_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(128, seed=7)
    scheme = TwoLevelScheme(graph, ii_alpha)
    benchmark(lambda: [scheme.encode_function(u) for u in graph.nodes])
