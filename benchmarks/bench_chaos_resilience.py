"""Experiment CHAOS — resilience under dynamic churn, with recovery.

The paper's full-information schemes exist so that "alternative, shortest,
paths [can] be taken whenever an outgoing link is down".  The static
resilience bench (``bench_simulator.py``) freezes a failure set before the
run; this bench exercises the claim under *churn*: a flapping-link fault
schedule evolves while messages are in flight, and the three scheme
families are compared at increasing churn intensity:

* full-information (all shortest-path edges stored — reroutes in place),
* interval routing (single path along a spanning tree — fragile),
* the Theorem 4 hub scheme (single path through a hub — fragile),
* interval wrapped in the bounce-once ``DetourWrapper`` (recovers using
  only locally held information), and
* full-information with source-side retry/backoff (end-to-end recovery).

Asserted shape: full-information delivery dominates every single-path
scheme at every churn level; the detour wrapper strictly improves the
single-path scheme it wraps under churn, at a bounded stretch cost; retry
further lifts delivery.

Run ``python benchmarks/bench_chaos_resilience.py --smoke`` for a quick
(~30 s) self-checking sweep without pytest-benchmark.
"""

from __future__ import annotations

import random
import sys

from repro.core import DetourWrapper, build_scheme
from repro.graphs import get_context, gnp_random_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.simulator import (
    EventDrivenSimulator,
    RetryPolicy,
    flapping_links,
    summarize,
    uniform_pairs,
)

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)
II_BETA = RoutingModel(Knowledge.II, Labeling.BETA)

N = 48
MESSAGES = 300
HORIZON = 60.0
CHURN_LEVELS = (0, 100, 250, 400)
SMOKE_N = 32
SMOKE_MESSAGES = 150
SMOKE_CHURN_LEVELS = (0, 120, 240)


def _run_under_schedule(scheme, graph, schedule, pairs, times, retry=None):
    sim = EventDrivenSimulator(
        scheme, fault_schedule=schedule, retry_policy=retry, retry_seed=11
    )
    for (source, destination), at_time in zip(pairs, times):
        sim.inject(source, destination, at_time)
    return summarize(sim.run(), graph)


def measure(n=N, messages=MESSAGES, churn_levels=CHURN_LEVELS):
    """Sweep churn levels; returns (graph, schemes, rows).

    Each row is ``(churn, {name: RoutingMetrics})`` for one shared fault
    schedule, so every scheme sees the identical failure trajectory.
    """
    graph = gnp_random_graph(n, seed=83)
    # One shared context across the build->simulate sweep: distances, BFS
    # trees and port tables are derived once and reused by all three
    # builders and the metrics stretch computation.
    ctx = get_context(graph)
    full = build_scheme("full-information", graph, II_ALPHA, ctx=ctx)
    interval = build_scheme("interval", graph, II_BETA, ctx=ctx)
    hub = build_scheme("thm4-hub", graph, II_ALPHA, ctx=ctx)
    detour = DetourWrapper(interval)
    pairs = uniform_pairs(graph, messages, seed=1)
    clock = random.Random(5)
    times = [clock.uniform(0.0, HORIZON * 0.8) for _ in pairs]
    retry = RetryPolicy(max_attempts=4, base_delay=1.0)
    rows = []
    for churn in churn_levels:
        schedule = flapping_links(
            graph, churn, period=10.0, duty=0.5, horizon=HORIZON,
            seed=churn + 1,
        )
        row = {
            "full-information": _run_under_schedule(
                full, graph, schedule, pairs, times
            ),
            "interval": _run_under_schedule(
                interval, graph, schedule, pairs, times
            ),
            "thm4-hub": _run_under_schedule(
                hub, graph, schedule, pairs, times
            ),
            "detour(interval)": _run_under_schedule(
                detour, graph, schedule, pairs, times
            ),
            "full-info+retry": _run_under_schedule(
                full, graph, schedule, pairs, times, retry=retry
            ),
        }
        rows.append((churn, row))
    return graph, detour, rows


def check(detour, rows) -> None:
    """The paper-shaped assertions over one sweep."""
    for churn, row in rows:
        full = row["full-information"]
        # Full information dominates every single-path scheme.
        assert full.delivered_fraction >= row["interval"].delivered_fraction
        assert full.delivered_fraction >= row["thm4-hub"].delivered_fraction
        # Full-information routes it takes remain shortest paths.
        if full.delivered:
            assert full.max_stretch == 1.0
        # Source-side retry can only help end-to-end delivery.
        assert (
            row["full-info+retry"].delivered_fraction
            >= full.delivered_fraction
        )
        bounced = row["detour(interval)"]
        if churn == 0:
            assert bounced.delivered_fraction == 1.0
        else:
            # The bounce-once detour strictly improves its inner scheme...
            assert (
                bounced.delivered_fraction
                > row["interval"].delivered_fraction
            )
        # ...at a bounded extra stretch.
        if bounced.delivered:
            assert bounced.max_stretch <= detour.stretch_bound()


def _format(graph, rows, n, messages) -> str:
    names = list(rows[0][1])
    lines = [
        f"Delivery under flapping-link churn on G({n}, 1/2) "
        f"({graph.edge_count} links), {messages} messages over "
        f"{HORIZON:g} time units, 10-unit flap period at 50% duty",
        "",
        "  flapping links   " + "   ".join(f"{name:>16s}" for name in names),
    ]
    for churn, row in rows:
        cells = "   ".join(
            f"{row[name].delivered_fraction:16.3f}" for name in names
        )
        lines.append(f"  {churn:14d}   {cells}")
    lines += [
        "",
        "  retries per message (full-info+retry): "
        + ", ".join(
            f"{churn}: {row['full-info+retry'].mean_retries:.2f}"
            for churn, row in rows
        ),
        "",
        "  full-information dominates the single-path schemes at every",
        "  churn level (§1); the bounce-once DetourWrapper lifts interval",
        "  routing using only locally held liveness, and source-side",
        "  retry/backoff recovers most of the remaining loss.",
    ]
    return "\n".join(lines)


def test_chaos_resilience(benchmark, write_result):
    graph, detour, rows = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    write_result("chaos_resilience", _format(graph, rows, N, MESSAGES))
    check(detour, rows)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    levels = SMOKE_CHURN_LEVELS if smoke else CHURN_LEVELS
    graph, detour, rows = measure(n, messages, levels)
    print(_format(graph, rows, n, messages))
    check(detour, rows)
    print("\nassertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
