"""Experiment CONGESTION — the hidden price of the Theorem 4 hub (extension).

Theorem 4 compresses the network's tables to ``n log log n + 6n`` bits by
funnelling every non-local message through one hub.  With a queueing model
(each node forwards one message at a time) that funnel becomes a
bottleneck: this bench pushes identical uniform traffic through the
Theorem 1 and Theorem 4 schemes and compares latency tails and per-node
forwarding load — the space/congestion trade-off the paper's space/stretch
menu does not (and does not claim to) capture.
"""

from __future__ import annotations

import numpy as np

from repro.core import build_scheme
from repro.graphs import gnp_random_graph
from repro.simulator import EventDrivenSimulator
from repro.simulator.workloads import uniform_pairs

N = 64
MESSAGES = 400
SERVICE = 0.2


def _run(scheme, pairs):
    sim = EventDrivenSimulator(scheme, link_latency=1.0, node_service_time=SERVICE)
    for i, (source, dest) in enumerate(pairs):
        sim.inject(source, dest, at_time=i * 0.05)
    records = sim.run()
    latencies = [r.latency for r in records if r.delivered]
    counts = sim.forward_counts
    return {
        "delivered": sum(r.delivered for r in records),
        "mean": float(np.mean(latencies)),
        "p95": float(np.percentile(latencies, 95)),
        "max": float(np.max(latencies)),
        "hottest_node": max(counts, key=counts.get),
        "hottest_count": max(counts.values()),
        "total_forwards": sum(counts.values()),
    }


def _measure(ii_alpha):
    graph = gnp_random_graph(N, seed=77)
    pairs = uniform_pairs(graph, MESSAGES, seed=5)
    two_level = build_scheme("thm1-two-level", graph, ii_alpha)
    hub = build_scheme("thm4-hub", graph, ii_alpha)
    return (
        _run(two_level, pairs),
        _run(hub, pairs),
        two_level.space_report().total_bits,
        hub.space_report().total_bits,
        hub.hub,
    )


def test_hub_congestion_tradeoff(benchmark, ii_alpha, write_result):
    stats_tl, stats_hub, bits_tl, bits_hub, hub_node = benchmark.pedantic(
        _measure, args=(ii_alpha,), rounds=1, iterations=1
    )
    lines = [
        f"Queueing congestion, G({N}, 1/2), {MESSAGES} uniform messages, "
        f"service {SERVICE}/hop",
        "",
        f"{'':14s} {'space (bits)':>13s} {'mean lat':>9s} {'p95 lat':>9s} "
        f"{'max lat':>9s} {'hottest node forwards':>22s}",
        f"  Theorem 1    {bits_tl:>13d} {stats_tl['mean']:>9.2f} "
        f"{stats_tl['p95']:>9.2f} {stats_tl['max']:>9.2f} "
        f"{stats_tl['hottest_count']:>22d}",
        f"  Theorem 4    {bits_hub:>13d} {stats_hub['mean']:>9.2f} "
        f"{stats_hub['p95']:>9.2f} {stats_hub['max']:>9.2f} "
        f"{stats_hub['hottest_count']:>22d}  (node {hub_node})",
        "",
        "  the hub scheme's ~30x space saving concentrates forwarding on one",
        "  node, inflating the latency tail — compact tables are not free.",
    ]
    write_result("congestion", "\n".join(lines))
    assert stats_tl["delivered"] == MESSAGES
    assert stats_hub["delivered"] == MESSAGES
    assert bits_hub < bits_tl / 5
    assert stats_hub["hottest_count"] > 2 * stats_tl["hottest_count"]
    assert stats_hub["p95"] >= 2 * stats_tl["p95"]


def test_queueing_engine_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(N, seed=77)
    scheme = build_scheme("thm1-two-level", graph, ii_alpha)
    pairs = uniform_pairs(graph, 100, seed=5)

    def run():
        sim = EventDrivenSimulator(scheme, node_service_time=0.1)
        for i, (source, dest) in enumerate(pairs):
            sim.inject(source, dest, at_time=i * 0.1)
        return sim.run()

    records = benchmark(run)
    assert all(r.delivered for r in records)
