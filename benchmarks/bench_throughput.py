"""Experiment THROUGHPUT — batched routing kernel vs. the scalar loop.

PR acceptance criterion: on the deep workload (a 256-node path graph,
where uniform pairs average ~85 hops per message) the batched lane of
``BatchKernel`` must route at least **100x** the messages/sec of the
scalar per-message loop, untraced.  Both lanes are timed at the batch
boundary (:meth:`BatchKernel.drain`): the loop that decides and applies
hops, exactly the code the vectorisation replaced.  The scalar epilogue
that materialises one frozen ``DeliveryRecord`` per row is identical in
both modes — it is timed separately and reported as an end-to-end
ratio, so nothing is hidden, but it is not what the kernel parallelised.

The two lanes are the *same* kernel:

* ``scalar``  — ``batch=False``; every active row steps through
  ``_step_one``, the per-message walk that mirrors the event engine
  hop for hop.  This is the reference implementation whose record
  stream defines correctness.
* ``batched`` — ``batch=True``; in-flight messages advance a whole
  generation per step through precomputed next-hop gathers, and (with
  no faults, churn or tracer) the quiescent drain walks the entire
  cohort to completion in pure gather/scatter steps.

Every timed pass asserts the two lanes' record streams are
bit-identical before any throughput number is reported, and the
event-driven engine is run once on the identical workload as an
external cross-check (its per-message time lands next to the scalar
lane's — the scalar baseline is not a strawman).

The run writes ``BENCH_throughput.json`` — a schema-versioned
``BenchResult`` with direction-annotated metrics and the embedded run
manifest — for CI to validate, regression-gate, and archive.

Run ``python benchmarks/bench_throughput.py --smoke`` for a quick
self-checking pass (small graph; gates on record equality, not the
speedup floor, because sub-100ms timings run noisy); ``--output PATH``
overrides the JSON location.
"""

from __future__ import annotations

import pathlib
import random
import sys
import time

from repro.core import build_scheme
from repro.graphs import path_graph
from repro.models import Knowledge, Labeling, RoutingModel
from repro.observability import (
    BenchMetric,
    BenchResult,
    BetterDirection,
    RunManifest,
    write_bench_result,
)
from repro.simulator import BatchKernel, EventDrivenSimulator

II_ALPHA = RoutingModel(Knowledge.II, Labeling.ALPHA)

N = 256
MESSAGES = 16384
REPS = 8
# The scalar lane takes seconds per pass; two passes pin the baseline
# without doubling the bench runtime for noise the batch side owns.
SCALAR_REPS = 2
SMOKE_N = 32
SMOKE_MESSAGES = 2048
SMOKE_REPS = 3
SMOKE_SCALAR_REPS = 2
# The acceptance floor for the full workload; the smoke floor only has
# to catch a vectorisation that silently fell back to the slow lane.
SPEEDUP_FLOOR = 100.0
SMOKE_SPEEDUP_FLOOR = 3.0

INJECT_SEED = 29

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_throughput.json"
)


def _build_workload(n, messages):
    """A deep routing workload: uniform pairs on an n-node path graph.

    Injections all land at t=0 so the whole batch is one lockstep
    cohort — the shape the quiescent drain is built for.  The one-time
    next-hop matrix derivation is warmed here: it is scheme
    construction cost, paid identically by both lanes, not routing.
    """
    graph = path_graph(n)
    scheme = build_scheme("full-table", graph, II_ALPHA)
    scheme.ctx.next_hop_matrix(scheme)
    clock = random.Random(INJECT_SEED)
    nodes = sorted(graph.nodes)
    injections = [
        (*clock.sample(nodes, 2), 0.0) for _ in range(messages)
    ]
    return graph, scheme, injections


def _drain_once(scheme, injections, batch):
    """Time one kernel pass at the batch boundary (no record objects)."""
    kernel = BatchKernel(scheme, batch=batch)
    for source, destination, at_time in injections:
        kernel.inject(source, destination, at_time)
    start = time.perf_counter()
    finished = kernel.drain()
    return time.perf_counter() - start, finished


def _engine_once(scheme, injections):
    """The event-driven engine on the identical workload (cross-check)."""
    engine = EventDrivenSimulator(scheme)
    for source, destination, at_time in injections:
        engine.inject(source, destination, at_time)
    start = time.perf_counter()
    records = engine.run()
    return time.perf_counter() - start, records


def measure(n=N, messages=MESSAGES, reps=REPS, scalar_reps=SCALAR_REPS):
    """Best-of-``reps`` drain timings for both lanes, equality-checked."""
    graph, scheme, injections = _build_workload(n, messages)
    timings = {"batched": [], "scalar": []}
    reference = None
    materialize = None
    for rep in range(reps):
        elapsed, finished = _drain_once(scheme, injections, batch=True)
        timings["batched"].append(elapsed)
        start = time.perf_counter()
        records = finished.records()
        materialize = time.perf_counter() - start
        if reference is None:
            reference = records
        else:
            assert records == reference
        if rep < scalar_reps:
            elapsed, finished = _drain_once(
                scheme, injections, batch=False
            )
            timings["scalar"].append(elapsed)
            assert finished.records() == reference
    engine_seconds, engine_records = _engine_once(scheme, injections)
    key = lambda r: r.msg_id  # noqa: E731 - local sort key
    assert sorted(engine_records, key=key) == sorted(reference, key=key)
    best = {mode: min(values) for mode, values in timings.items()}
    speedup = best["scalar"] / best["batched"]
    hops = sum(record.hops for record in reference)
    return {
        "workload": {
            "n": n,
            "graph": "path",
            "scheme": "full-table",
            "messages": messages,
            "reps": reps,
            "scalar_reps": scalar_reps,
            "inject_seed": INJECT_SEED,
        },
        "best_seconds": best,
        "all_seconds": timings,
        "materialize_seconds": materialize,
        "engine_seconds": engine_seconds,
        "messages_per_sec_batched": messages / best["batched"],
        "messages_per_sec_scalar": messages / best["scalar"],
        "hops_per_sec_batched": hops / best["batched"],
        "speedup_ratio": speedup,
        "end_to_end_speedup": (best["scalar"] + materialize)
        / (best["batched"] + materialize),
        "engine_speedup": engine_seconds / (best["batched"] + materialize),
        "total_hops": hops,
        "delivered": sum(1 for r in reference if r.delivered),
        "records": len(reference),
    }


def check(result, floor=SPEEDUP_FLOOR) -> None:
    speedup = result["speedup_ratio"]
    assert speedup >= floor, (
        f"batched lane is only {speedup:.1f}x the scalar per-message "
        f"loop, acceptance floor {floor:.0f}x"
    )
    assert result["delivered"] == result["records"], (
        "a fault-free path workload must deliver every message"
    )


def _bench_result(result) -> BenchResult:
    """Wrap one measurement as a schema-versioned, gateable artifact."""
    workload = result["workload"]
    manifest = RunManifest.capture(
        "bench:throughput",
        seed=INJECT_SEED,
        scheme="full-table",
        n=workload["n"],
        params=workload,
        graph=path_graph(workload["n"]),
    )
    higher = BetterDirection.HIGHER
    # Throughput and its quotients gate at a 30% relative tolerance:
    # absolute rates track machine speed and the ratios divide two
    # noisy timings.  The hard acceptance floor lives in check().
    metrics = {
        "messages_per_sec_batched": BenchMetric(
            result["messages_per_sec_batched"], higher, tolerance=0.30
        ),
        "messages_per_sec_scalar": BenchMetric(
            result["messages_per_sec_scalar"], higher, tolerance=0.30
        ),
        "speedup_ratio": BenchMetric(
            result["speedup_ratio"], higher, tolerance=0.30
        ),
        "end_to_end_speedup": BenchMetric(
            result["end_to_end_speedup"], higher, tolerance=0.30
        ),
        "delivered": BenchMetric(
            float(result["delivered"]), higher, tolerance=0.0
        ),
    }
    return BenchResult(
        bench="throughput",
        manifest=manifest,
        workload=workload,
        metrics=metrics,
        extra={key: value for key, value in result.items()
               if key != "workload"},
    )


def _format(result) -> str:
    work = result["workload"]
    best = result["best_seconds"]
    mat = result["materialize_seconds"]
    lines = [
        f"Batched kernel throughput: path({work['n']}), "
        f"{work['scheme']}, {work['messages']} messages "
        f"({result['total_hops']} hops), untraced, "
        f"best of {work['reps']} (scalar: {work['scalar_reps']})",
        "",
        f"  scalar lane (per-message)  {best['scalar']:9.3f} s"
        f"   ({result['messages_per_sec_scalar']:12,.0f} msg/s)",
        f"  batched lane (drain)       {best['batched']:9.3f} s"
        f"   ({result['messages_per_sec_batched']:12,.0f} msg/s, "
        f"{result['hops_per_sec_batched']:,.0f} hops/s)",
        f"  record materialisation     {mat:9.3f} s   (shared epilogue)",
        f"  event-driven engine        {result['engine_seconds']:9.3f} s"
        f"   (external cross-check)",
        "",
        f"  speedup at the batch boundary   {result['speedup_ratio']:7.1f}x",
        f"  end to end (records included)   "
        f"{result['end_to_end_speedup']:7.1f}x",
        f"  vs. the event engine, end to end"
        f"{result['engine_speedup']:8.1f}x",
        "",
        "  every pass asserts the batched and scalar lanes emit",
        "  bit-identical DeliveryRecord streams before timing counts.",
    ]
    return "\n".join(lines)


def test_throughput(benchmark, write_result):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result("throughput", _format(result))
    write_bench_result(_bench_result(result), DEFAULT_OUTPUT)
    check(result)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in args
    output = DEFAULT_OUTPUT
    if "--output" in args:
        output = pathlib.Path(args[args.index("--output") + 1])
    n = SMOKE_N if smoke else N
    messages = SMOKE_MESSAGES if smoke else MESSAGES
    reps = SMOKE_REPS if smoke else REPS
    scalar_reps = SMOKE_SCALAR_REPS if smoke else SCALAR_REPS
    started = time.perf_counter()
    result = measure(n, messages, reps, scalar_reps)
    bench = _bench_result(result)
    bench.manifest = bench.manifest.completed(time.perf_counter() - started)
    print(_format(result))
    write_bench_result(bench, output)
    print(f"\ntimings written to {output}")
    check(result, SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR)
    print("assertions ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
