"""Experiment COR1 — Section 6's average computation, executed.

Corollary 1 averages T(G) over *all* labelled graphs: the compact scheme on
the ``1 − 1/n³`` random fraction, the trivial full-table bound on the
sliver.  :func:`repro.analysis.corollary1_average` performs exactly that
blend; this bench tabulates all five upper-bound items of the corollary
with their measured fallback fractions.
"""

from __future__ import annotations

import math

from repro.analysis import corollary1_average
from repro.models import Knowledge, Labeling, RoutingModel

N = 96
SAMPLES = 15

ITEMS = (
    # (corollary item, scheme, labeling, normaliser, label)
    ("1.1", "thm1-two-level", Labeling.ALPHA, lambda n: n * n, "n²"),
    ("1.2", "thm2-neighbor-labels", Labeling.GAMMA,
     lambda n: n * math.log2(n) ** 2, "n log² n"),
    ("1.3", "thm3-centers", Labeling.ALPHA,
     lambda n: n * math.log2(n), "n log n"),
    ("1.4", "thm4-hub", Labeling.ALPHA,
     lambda n: n * math.log2(math.log2(n)), "n loglog n"),
    ("1.5", "thm5-probe", Labeling.ALPHA, lambda n: n, "n"),
)


def _measure():
    rows = []
    for item, scheme, labeling, normaliser, label in ITEMS:
        model = RoutingModel(Knowledge.II, labeling)
        estimate = corollary1_average(scheme, model, n=N, samples=SAMPLES)
        rows.append((item, scheme, estimate, normaliser(N), label))
    return rows


def test_corollary1_all_items(benchmark, write_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        f"Corollary 1 (Section 6): uniform averages with trivial-bound "
        f"fallback, n={N}, {SAMPLES} samples",
        "",
        "  item  scheme                 mean T(G)    /law     fallbacks",
    ]
    for item, scheme, estimate, normal, label in rows:
        lines.append(
            f"  {item:4s}  {scheme:22s} {estimate.mean_total_bits:9.0f}  "
            f"{estimate.mean_total_bits / normal:6.2f}·{label:9s} "
            f"{estimate.fallback_count}/{estimate.samples}"
        )
    lines += [
        "",
        "  at this n no sample needed the fallback — the sliver the paper",
        "  charges the trivial bound to is empirically empty (cf. the",
        "  certification bench).",
    ]
    write_result("corollary1", "\n".join(lines))
    for item, scheme, estimate, normal, label in rows:
        assert estimate.fallback_fraction <= 0.1
        assert estimate.mean_total_bits <= 8 * normal
    # The menu ordering of Corollary 1 holds on averages too.
    means = [estimate.mean_total_bits for _, _, estimate, _, _ in rows]
    assert means == sorted(means, reverse=True)
