"""Experiment IVC — interval complexity on random graphs (related work [1]).

Reference [1] of the paper studies "the complexity of interval routing on
random graphs": how many cyclic label intervals per port does shortest-path
routing need?  This bench measures exactly that across topologies:

* cycles and chains — 1 interval per port (classical interval routing);
* grids — a small constant;
* G(n, 1/2) — fragmentation grows with n, and the interval encoding ends
  up *larger* than the plain port table it tried to compress.
"""

from __future__ import annotations

from repro.core import FullTableScheme, MultiIntervalScheme, verify_scheme
from repro.graphs import cycle_graph, gnp_random_graph, grid_graph
from repro.models import Knowledge, Labeling, RoutingModel

NS = (32, 64, 128)


def _measure(ia_alpha):
    rows = []
    for n in NS:
        graph = gnp_random_graph(n, seed=n + 13)
        scheme = MultiIntervalScheme(graph, ia_alpha)
        assert verify_scheme(scheme, sample_pairs=150, seed=n).ok()
        table = FullTableScheme(graph, ia_alpha)
        rows.append(
            (
                "random", n,
                scheme.max_intervals_per_port(),
                sum(scheme.interval_count(u) for u in graph.nodes) / n,
                scheme.space_report().total_bits,
                table.space_report().total_bits,
            )
        )
    for name, graph in (
        ("cycle", cycle_graph(128)),
        ("grid", grid_graph(8, 16)),
    ):
        scheme = MultiIntervalScheme(graph, ia_alpha)
        assert verify_scheme(scheme, sample_pairs=150, seed=1).ok()
        table = FullTableScheme(graph, ia_alpha)
        rows.append(
            (
                name, graph.n,
                scheme.max_intervals_per_port(),
                sum(scheme.interval_count(u) for u in graph.nodes) / graph.n,
                scheme.space_report().total_bits,
                table.space_report().total_bits,
            )
        )
    return rows


def test_interval_complexity(benchmark, ia_alpha, write_result):
    rows = benchmark.pedantic(_measure, args=(ia_alpha,), rounds=1, iterations=1)
    lines = [
        "Interval complexity of shortest-path routing (related work [1])",
        "",
        "  topology      n   max iv/port   mean iv/node   interval bits   "
        "table bits",
    ]
    for name, n, worst, mean_per_node, interval_bits, table_bits in rows:
        lines.append(
            f"  {name:9s} {n:4d}   {worst:11d}   {mean_per_node:12.1f}   "
            f"{interval_bits:13d}   {table_bits:10d}"
        )
    lines += [
        "",
        "  structured labels fuse into O(1) intervals per port; random",
        "  graphs fragment so badly the 'compressed' form overshoots the",
        "  plain table — [1]'s motivating observation.",
    ]
    write_result("interval_complexity", "\n".join(lines))
    by_name = {}
    for name, n, worst, mean_per_node, interval_bits, table_bits in rows:
        by_name.setdefault(name, []).append(
            (n, worst, interval_bits, table_bits)
        )
    assert all(worst == 1 for _, worst, _, _ in by_name["cycle"])
    random_rows = by_name["random"]
    worsts = [worst for _, worst, _, _ in random_rows]
    assert worsts == sorted(worsts)  # fragmentation grows with n
    for _, _, interval_bits, table_bits in random_rows:
        assert interval_bits > table_bits  # compaction fails on random


def test_interval_build_speed(benchmark, ia_alpha):
    graph = gnp_random_graph(64, seed=13)
    benchmark(MultiIntervalScheme, graph, ia_alpha)
