"""Experiment INTRO — the introduction's chain example, quantified.

"On a chain ... the routing function is much less complicated if we can
relabel the graph and number the nodes in increasing order along the
chain."  This bench measures the claim: scrambled chains under model α
need full tables, while under β the comparison scheme stores O(log n)
bits per node — the gap grows like ``n / log n``.
"""

from __future__ import annotations

import random

from repro.analysis import best_law
from repro.core import ChainComparisonScheme, FullTableScheme, verify_scheme
from repro.graphs import path_graph
from repro.models import Knowledge, Labeling, RoutingModel

NS = (32, 64, 128, 256, 512)


def _scrambled_chain(n: int, seed: int):
    mapping = list(range(1, n + 1))
    random.Random(seed).shuffle(mapping)
    return path_graph(n).relabel(dict(zip(range(1, n + 1), mapping)))


def _measure():
    alpha = RoutingModel(Knowledge.IA, Labeling.ALPHA)
    beta = RoutingModel(Knowledge.II, Labeling.BETA)
    rows = []
    for n in NS:
        graph = _scrambled_chain(n, seed=n)
        table = FullTableScheme(graph, alpha)
        chain = ChainComparisonScheme(graph, beta)
        for scheme in (table, chain):
            assert verify_scheme(scheme, sample_pairs=150, seed=n).ok()
        rows.append(
            (n, table.space_report().total_bits,
             chain.space_report().total_bits)
        )
    return rows


def test_intro_chain_relabeling_gap(benchmark, write_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    ns = [n for n, _, _ in rows]
    table_fit = best_law(ns, [t for _, t, _ in rows],
                         candidates=["n", "n log n", "n^2"])[0]
    chain_fit = best_law(ns, [c for _, _, c in rows],
                         candidates=["n", "n log n", "n^2"])[0]
    lines = [
        "Introduction example: scrambled chains, model α vs β",
        "",
        "          full table (α)   comparison after relabelling (β)   gap",
    ]
    for n, table_bits, chain_bits in rows:
        lines.append(
            f"  n={n:4d}  {table_bits:14d}   {chain_bits:32d}   "
            f"{table_bits / chain_bits:5.1f}x"
        )
    lines += [
        "",
        f"  full table grows as {table_fit.law}; the relabelled scheme as "
        f"{chain_fit.law}.",
        "  'the routing function is much less complicated if we can relabel'",
    ]
    write_result("intro_chain", "\n".join(lines))
    assert chain_fit.law in ("n", "n log n")
    for n, table_bits, chain_bits in rows:
        assert chain_bits < table_bits
    # The gap widens with n.
    first_gap = rows[0][1] / rows[0][2]
    last_gap = rows[-1][1] / rows[-1][2]
    assert last_gap > 1.5 * first_gap


def test_chain_build_speed(benchmark):
    graph = _scrambled_chain(256, seed=1)
    beta = RoutingModel(Knowledge.II, Labeling.BETA)
    benchmark(ChainComparisonScheme, graph, beta)
