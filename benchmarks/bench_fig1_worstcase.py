"""Experiment FIG1/T9 — Figure 1's family: worst-case Ω(n² log n) at stretch < 2.

For each k the bench builds ``G_B(k)`` under a random adversarial outer
relabelling, verifies the optimal scheme routes with stretch 1, measures
the inner tables (Lehmer-coded permutations, ``log₂ k!`` bits each),
*recovers the permutation from every inner node's table*, and confirms any
wrong-middle detour already costs stretch 2.
"""

from __future__ import annotations

import math
import random

from repro.analysis import best_law
from repro.bitio import log2_factorial
from repro.core import verify_scheme
from repro.lowerbounds import (
    ExplicitLowerBoundScheme,
    detour_stretch,
    recover_outer_assignment,
)

KS = (8, 16, 32, 64)


def _assignment(k: int, seed: int) -> list[int]:
    labels = list(range(2 * k + 1, 3 * k + 1))
    random.Random(seed).shuffle(labels)
    return labels


def _measure(ii_alpha):
    # The paper's n = 3k−1 / 3k−2 remark: the variant family must behave
    # identically (stretch 1, permutation recovery) at non-multiples of 3.
    for n in (23, 47):
        variant = ExplicitLowerBoundScheme.for_any_n(n, ii_alpha)
        assert verify_scheme(variant, sample_pairs=200, seed=n).ok()
        assert len(recover_outer_assignment(variant, 1)) == variant.k
    rows = []
    for k in KS:
        assignment = _assignment(k, k)
        scheme = ExplicitLowerBoundScheme.from_parameters(
            k, ii_alpha, outer_assignment=assignment
        )
        verification = verify_scheme(scheme, sample_pairs=400, seed=k)
        assert verification.ok()
        recovered = all(
            recover_outer_assignment(scheme, inner) == tuple(assignment)
            for inner in scheme.inner_nodes
        )
        inner_bits = sum(
            len(scheme.encode_function(u)) for u in scheme.inner_nodes
        )
        total_bits = scheme.space_report().total_bits
        rows.append((k, inner_bits, total_bits, recovered, detour_stretch(k)))
    return rows


def test_fig1_worst_case_family(benchmark, ii_alpha, write_result):
    rows = benchmark.pedantic(_measure, args=(ii_alpha,), rounds=1, iterations=1)
    ns = [3 * k for k, *_ in rows]
    totals = [total for _, _, total, _, _ in rows]
    fits = best_law(ns, totals, candidates=["n log n", "n^2", "n^2 log n"])
    lines = [
        "Theorem 9 / Figure 1 (explicit worst case), model α, stretch < 2",
        "",
        "  inner tables are the adversary's permutation: log₂ k! bits each",
        "",
    ]
    for k, inner_bits, total_bits, recovered, detour in rows:
        n = 3 * k
        lines.append(
            f"  n={n:4d} (k={k:3d})  inner bits = {inner_bits:7d}  "
            f"k·log₂k! = {k * log2_factorial(k):9.0f}  total = {total_bits:7d}  "
            f"(n²/9)log n = {(n * n / 9) * math.log2(n):9.0f}  "
            f"perm recovered: {recovered}  detour stretch: {detour}"
        )
    lines += [
        "",
        f"  best-fit law for total bits: {fits[0].law} "
        f"(constant {fits[0].constant:.4f})",
        "  paper row: worst case lower bound, α — Ω(n² log n), stretch < 2",
    ]
    write_result("fig1_worstcase", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law == "n^2 log n"
    for k, inner_bits, _, recovered, detour in rows:
        assert recovered
        assert detour >= 2.0
        assert inner_bits >= k * log2_factorial(k)


def test_fig1_build_speed(benchmark, ii_alpha):
    benchmark(ExplicitLowerBoundScheme.from_parameters, 32, ii_alpha)
