"""Experiment T1-Slog — Theorem 5: O(n) bits at stretch O(log n).

Also measures the probe walk itself through the simulator: every message
must finish within ``2(c+3) log n`` edge traversals (c = 3).
"""

from __future__ import annotations

import math

from repro.analysis import best_law, mean_total_bits, run_size_sweep
from repro.core import ProbeScheme, build_scheme
from repro.graphs import gnp_random_graph
from repro.simulator import Network, summarize

NS = (64, 96, 128, 192, 256, 384)
SEEDS = (0, 1, 2)


def _measure(ii_alpha):
    points = run_size_sweep(
        "thm5-probe", ii_alpha, ns=NS, seeds=SEEDS, verify_pairs=300
    )
    # Hop distribution on one larger instance.
    graph = gnp_random_graph(256, seed=9)
    network = Network(build_scheme("thm5-probe", graph, ii_alpha))
    records = [
        network.route(u, w) for u in range(1, 17) for w in range(17, 257)
    ]
    return points, summarize(records, graph)


def test_thm5_linear_size_log_stretch(benchmark, ii_alpha, write_result):
    points, metrics = benchmark.pedantic(
        _measure, args=(ii_alpha,), rounds=1, iterations=1
    )
    means = mean_total_bits(points)
    fits = best_law(
        list(means), list(means.values()),
        candidates=["n", "n log log n", "n log n"],
    )
    hop_budget = 2 * 6 * math.log2(256)
    lines = ["Theorem 5 (probe scheme), model II, G(n, 1/2), 3 seeds", ""]
    for n, mean in means.items():
        lines.append(f"  n={n:4d}  mean total bits = {mean:6.0f}  T/n = {mean / n:.2f}")
    lines += [
        "",
        f"  best-fit law : {fits[0].law} (constant {fits[0].constant:.2f})",
        f"  probe walk on n=256: mean hops {metrics.mean_hops:.2f}, "
        f"max stretch {metrics.max_stretch:.1f}, p95 {metrics.p95_stretch:.1f}",
        f"  hop budget 2(c+3) log n = {hop_budget:.0f} traversals (c = 3)",
        "  paper row: Corollary 1.5 — O(n) for s = 6 log n in model II",
    ]
    write_result("thm5_probe", "\n".join(lines))
    benchmark.extra_info["fit"] = fits[0].law
    assert fits[0].law == "n"
    assert metrics.delivered_fraction == 1.0
    assert metrics.max_stretch * 2 <= hop_budget


def test_thm5_probe_walk_speed(benchmark, ii_alpha):
    graph = gnp_random_graph(128, seed=7)
    network = Network(ProbeScheme(graph, ii_alpha))
    target = graph.non_neighbors(1)[-1]
    benchmark(network.route, 1, target)
