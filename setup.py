"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
enables ``pip install -e .`` on environments whose setuptools lacks PEP 660
editable-wheel support (e.g. offline boxes without the ``wheel`` package).
"""

from setuptools import setup

setup()
